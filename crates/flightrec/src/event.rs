//! The fixed-size event record and its binary encoding.
//!
//! An [`Event`] packs into four 64-bit words (timestamp, metadata,
//! two payload words); the ring prepends a sequence word, making each
//! slot five words (40 bytes). The metadata word keeps its low 24 bits
//! reserved-zero so decode can reject garbage — the proptest round-trip
//! and the torn-record hammer test both lean on that.

/// Number of distinct [`EventKind`] values (array sizes, validation).
pub const KIND_COUNT: usize = 13;

/// What an event records. The discriminant is the wire value; renames
/// are fine, renumbers are not (postmortems written by one build should
/// decode under the next).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum EventKind {
    /// A pipeline phase opened. `code` = phase id ([`phase_code`]),
    /// `a`/`b` unused.
    PhaseEnter = 0,
    /// A pipeline phase closed. Payload mirrors [`Self::PhaseEnter`].
    PhaseExit = 1,
    /// A partition buffer sealed a page to disk. `code` = partition
    /// (clamped to `u16`), `a` = pages so far, `b` = bytes in the page.
    Spill = 2,
    /// An output/partition buffer flushed. `code` = partition, `a` =
    /// flush count, `b` = bytes.
    Flush = 3,
    /// A degradation-ladder step. `code` = 0 recursive repartition,
    /// 1 block-NLJ fallback; `a` = recursion depth, `b` = fanout or
    /// chunk count.
    Degrade = 4,
    /// A fault was injected by the seeded plan. `code` = fault
    /// discriminant, `a` = page index, `b` unused.
    Fault = 5,
    /// An I/O retry after a transient fault. `code` = 0 read, 1 write;
    /// `a` = page index, `b` = attempt number.
    Retry = 6,
    /// A work-stealing attempt. `code` = 1 hit, 0 miss round; `a` =
    /// thief worker, `b` = victim worker (hit only).
    Steal = 7,
    /// A task ran on a pool worker (full mode). `code` = worker, `a` =
    /// task index, `b` unused.
    Task = 8,
    /// A group-prefetch batch boundary (full mode). `code` = 0
    /// partition stage, 1 build, 2 probe; `a` = batch ordinal, `b` =
    /// group size.
    Batch = 9,
    /// A memsim telemetry epoch flushed. `a` = epoch ordinal, `b` =
    /// simulated cycle now.
    MemEpoch = 10,
    /// A memory-grant change. `code` = operation ([`grant_op`]), `a` =
    /// full u64 query id (0 for standalone runs), `b` = bytes. The id
    /// rides in a payload word on purpose: `code` is only 16 bits and
    /// a long-running daemon's query ids overflow it, which would alias
    /// unrelated queries in postmortems.
    Grant = 11,
    /// Free-form marker (tests, external harnesses). `code`/`a`/`b`
    /// caller-defined.
    Mark = 12,
}

/// `code` values for [`EventKind::Grant`] events: what happened to the
/// grant. The query id itself travels in payload `a` (full u64).
pub mod grant_op {
    /// A run's whole memory budget was installed (disk grace path).
    pub const BUDGET: u16 = 0;
    /// An admission grant was acquired from the global budget.
    pub const ACQUIRE: u16 = 1;
    /// An admission grant was released back to the global budget.
    pub const RELEASE: u16 = 2;
    /// A live grant changed size (`b` = the new byte total). Shrinks
    /// come from pressure revocation, grows from between-phase
    /// re-absorption requests.
    pub const RESIZE: u16 = 3;
    /// Admission asked a running query to shed memory down to `b`
    /// bytes instead of making an arrival wait for a full release.
    pub const SHED: u16 = 4;
    /// The dynamic hybrid join evicted a victim partition to disk
    /// under pressure. Unlike the other ops, `a` = the partition and
    /// `b` = the bytes it held (the live budget at event time travels
    /// in the join report's `MemTransition` record).
    pub const SPILL_VICTIM: u16 = 5;
    /// The dynamic hybrid join pulled a spilled partition back into
    /// memory at a phase boundary. `a` = partition, `b` = bytes.
    pub const ABSORB: u16 = 6;
    /// A client-minted trace id was bound to a server query id:
    /// `a` = trace id, `b` = query id. Emitted once per traced query at
    /// admission — every other event keys by query id, so this single
    /// record is what lets a postmortem be joined back to the client's
    /// distributed trace.
    pub const TRACE: u16 = 7;
}

impl EventKind {
    /// All kinds, in discriminant order.
    pub const ALL: [EventKind; KIND_COUNT] = [
        EventKind::PhaseEnter,
        EventKind::PhaseExit,
        EventKind::Spill,
        EventKind::Flush,
        EventKind::Degrade,
        EventKind::Fault,
        EventKind::Retry,
        EventKind::Steal,
        EventKind::Task,
        EventKind::Batch,
        EventKind::MemEpoch,
        EventKind::Grant,
        EventKind::Mark,
    ];

    /// Wire value → kind; `None` for unknown bytes.
    pub fn from_u8(b: u8) -> Option<EventKind> {
        EventKind::ALL.get(b as usize).copied()
    }

    /// Stable snake-case name (postmortem JSON, RunReport section).
    pub fn name(self) -> &'static str {
        match self {
            EventKind::PhaseEnter => "phase_enter",
            EventKind::PhaseExit => "phase_exit",
            EventKind::Spill => "spill",
            EventKind::Flush => "flush",
            EventKind::Degrade => "degrade",
            EventKind::Fault => "fault",
            EventKind::Retry => "retry",
            EventKind::Steal => "steal",
            EventKind::Task => "task",
            EventKind::Batch => "batch",
            EventKind::MemEpoch => "mem_epoch",
            EventKind::Grant => "grant",
            EventKind::Mark => "mark",
        }
    }

    /// Name → kind (postmortem parsing).
    pub fn from_name(name: &str) -> Option<EventKind> {
        EventKind::ALL.into_iter().find(|k| k.name() == name)
    }

    /// One-character glyph for lane rendering (`phj blackbox`).
    pub fn glyph(self) -> char {
        match self {
            EventKind::PhaseEnter => '[',
            EventKind::PhaseExit => ']',
            EventKind::Spill => 's',
            EventKind::Flush => 'f',
            EventKind::Degrade => 'D',
            EventKind::Fault => 'F',
            EventKind::Retry => 'r',
            EventKind::Steal => 'w',
            EventKind::Task => 't',
            EventKind::Batch => '.',
            EventKind::MemEpoch => 'e',
            EventKind::Grant => 'G',
            EventKind::Mark => 'M',
        }
    }
}

/// One journal entry: what happened (`kind`, `code`), where (`tid`),
/// when (`ts_ns`, monotonic since recorder install), plus two payload
/// words whose meaning is per-kind (see [`EventKind`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Nanoseconds since the recorder's origin (monotonic clock).
    pub ts_ns: u64,
    /// What happened.
    pub kind: EventKind,
    /// Small per-kind discriminant (phase id, fault kind, worker…).
    pub code: u16,
    /// Recording thread (ring registration order, dense from 0).
    pub tid: u16,
    /// First payload word (per-kind meaning).
    pub a: u64,
    /// Second payload word (per-kind meaning).
    pub b: u64,
}

/// Bits 0..24 of the metadata word are reserved and must decode as
/// zero.
const META_RESERVED: u64 = (1 << 24) - 1;

impl Event {
    /// Pack into the four-word wire form `[ts, meta, a, b]`.
    pub fn encode(&self) -> [u64; 4] {
        let meta = ((self.kind as u64) << 56) | ((self.code as u64) << 40) | ((self.tid as u64) << 24);
        [self.ts_ns, meta, self.a, self.b]
    }

    /// Unpack the wire form; `None` if the kind byte is unknown or a
    /// reserved bit is set (a torn or foreign record).
    pub fn decode(words: [u64; 4]) -> Option<Event> {
        let meta = words[1];
        if meta & META_RESERVED != 0 {
            return None;
        }
        let kind = EventKind::from_u8((meta >> 56) as u8)?;
        Some(Event {
            ts_ns: words[0],
            kind,
            code: (meta >> 40) as u16,
            tid: (meta >> 24) as u16,
            a: words[2],
            b: words[3],
        })
    }
}

/// Known phase names, indexed by phase code. Code 0 is the catch-all
/// for names not in this table — renderers print `phase` for it.
/// Append-only: codes are written into postmortems on disk.
pub const PHASES: &[&str] = &[
    "phase",
    "run",
    "grace_join",
    "partition",
    "partition_pass",
    "pair",
    "build",
    "probe",
    "join",
    "join_pass",
    "hybrid_join",
    "hybrid_build_pass",
    "hybrid_probe_pass",
    "repartition",
    "nlj_fallback",
    "aggregate",
    "agg_morsel",
    "execute",
    "query",
    "queue_wait",
    "grant_wait",
    "serialize",
];

/// Phase name → code (0 when unknown: the generic `phase`).
pub fn phase_code(name: &str) -> u16 {
    PHASES.iter().position(|p| *p == name).unwrap_or(0) as u16
}

/// Phase code → name (`"phase"` when out of table).
pub fn phase_name(code: u16) -> &'static str {
    PHASES.get(code as usize).copied().unwrap_or("phase")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_round_trip_discriminants() {
        for (i, k) in EventKind::ALL.iter().enumerate() {
            assert_eq!(*k as usize, i);
            assert_eq!(EventKind::from_u8(i as u8), Some(*k));
            assert_eq!(EventKind::from_name(k.name()), Some(*k));
        }
        assert_eq!(EventKind::from_u8(KIND_COUNT as u8), None);
        assert_eq!(EventKind::from_name("nope"), None);
    }

    #[test]
    fn encode_decode_round_trips() {
        let ev = Event {
            ts_ns: 123_456_789,
            kind: EventKind::Fault,
            code: 4,
            tid: 3,
            a: u64::MAX,
            b: 0,
        };
        assert_eq!(Event::decode(ev.encode()), Some(ev));
    }

    #[test]
    fn decode_rejects_reserved_bits_and_unknown_kinds() {
        let ev = Event { ts_ns: 1, kind: EventKind::Mark, code: 0, tid: 0, a: 0, b: 0 };
        let mut words = ev.encode();
        words[1] |= 1; // reserved bit
        assert_eq!(Event::decode(words), None);
        let mut words = ev.encode();
        words[1] |= (KIND_COUNT as u64) << 56; // unknown kind byte
        assert_eq!(Event::decode(words), None);
    }

    #[test]
    fn phase_table_round_trips_and_defaults() {
        assert_eq!(phase_code("build"), 6);
        assert_eq!(phase_name(6), "build");
        assert_eq!(phase_code("definitely_not_a_phase"), 0);
        assert_eq!(phase_name(9999), "phase");
        for (i, p) in PHASES.iter().enumerate() {
            assert_eq!(phase_code(p) as usize, i, "duplicate phase name {p}");
        }
    }
}
