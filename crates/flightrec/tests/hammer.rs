//! Concurrency hammer for the flight-recorder rings: seeded writer
//! threads race cold readers, and every recovered record must be whole.
//!
//! Each writer owns one ring (the production arrangement — rings are
//! single-writer by construction) and stamps every event with a
//! self-checking payload: `b = a ^ SALT` with `a = (tid << 32) | i`.
//! Readers snapshot continuously while writers run; any torn record
//! would fail the payload check or break per-thread ordering. After the
//! writers quiesce, drop accounting must be exact: `written -
//! recovered == max(0, written - capacity)`.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use phj_flightrec::{Event, EventKind, ThreadRing};

const SALT: u64 = 0x9e37_79b9_7f4a_7c15;

fn checked_event(tid: u16, i: u64) -> Event {
    let a = ((tid as u64) << 32) | i;
    Event { ts_ns: i, kind: EventKind::Mark, code: tid, tid, a, b: a ^ SALT }
}

/// Every invariant a snapshot must satisfy, mid-run or quiescent.
fn check_snapshot(snap: &phj_flightrec::RingSnapshot, cap: usize) {
    assert!(snap.events.len() <= cap, "recovered more than capacity");
    assert!(snap.dropped() <= snap.written);
    let mut prev: Option<u64> = None;
    for ev in &snap.events {
        assert_eq!(ev.kind, EventKind::Mark);
        assert_eq!(ev.tid, snap.tid, "record from a foreign ring");
        assert_eq!(ev.code, snap.tid);
        assert_eq!(ev.b, ev.a ^ SALT, "torn record: payload halves disagree");
        assert_eq!((ev.a >> 32) as u16, snap.tid, "torn record: tid half mismatch");
        let i = ev.a & 0xffff_ffff;
        assert_eq!(ev.ts_ns, i, "torn record: timestamp from a different write");
        if let Some(p) = prev {
            assert!(i > p, "per-thread order violated: {i} after {p}");
        }
        prev = Some(i);
    }
}

#[test]
fn concurrent_writers_and_readers_never_tear() {
    // Three seeded geometries: tiny ring (constant wrapping), medium,
    // and one larger than the write count (no wrap at all).
    for (seed, cap, writes) in [(1u64, 32usize, 20_000u64), (2, 1024, 20_000), (3, 4096, 3_000)] {
        let writers = 4u16;
        let rings: Vec<Arc<ThreadRing>> =
            (0..writers).map(|tid| Arc::new(ThreadRing::new(tid, cap))).collect();
        let stop = Arc::new(AtomicBool::new(false));

        let reader_handles: Vec<_> = (0..2)
            .map(|r| {
                let rings = rings.clone();
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut snaps = 0u64;
                    while !stop.load(Ordering::Acquire) {
                        // Seeded skew: readers start on different rings.
                        for ring in rings.iter().cycle().skip(r + seed as usize).take(rings.len())
                        {
                            check_snapshot(&ring.snapshot(), cap);
                            snaps += 1;
                        }
                    }
                    snaps
                })
            })
            .collect();

        let writer_handles: Vec<_> = rings
            .iter()
            .map(|ring| {
                let ring = Arc::clone(ring);
                std::thread::spawn(move || {
                    let tid = ring.tid();
                    for i in 0..writes {
                        ring.record(&checked_event(tid, i));
                    }
                })
            })
            .collect();

        for h in writer_handles {
            h.join().unwrap();
        }
        stop.store(true, Ordering::Release);
        for h in reader_handles {
            let snaps = h.join().unwrap();
            assert!(snaps > 0, "reader never snapshotted");
        }

        // Quiescent: exact drop accounting and exact survivors.
        for ring in &rings {
            let snap = ring.snapshot();
            check_snapshot(&snap, cap);
            assert_eq!(snap.written, writes);
            let expect_recovered = (cap as u64).min(writes);
            assert_eq!(
                snap.events.len() as u64,
                expect_recovered,
                "seed {seed}: quiescent ring must hold exactly min(cap, writes)"
            );
            assert_eq!(snap.dropped(), writes - expect_recovered);
            let first = snap.events.first().unwrap().a & 0xffff_ffff;
            assert_eq!(first, writes - expect_recovered, "survivors are the newest events");
            let counts = ring.counts();
            assert_eq!(counts[EventKind::Mark as usize], writes, "totals survive wrap");
        }
    }
}

#[test]
fn global_recorder_survives_thread_churn() {
    // Rings must outlive their threads: spawn short-lived workers that
    // each record a burst, then snapshot after they are gone.
    let rec = phj_flightrec::install_with(phj_flightrec::Mode::Full, 256);
    let before: u64 = rec.summary().written();
    for round in 0..8u64 {
        let handles: Vec<_> = (0..4)
            .map(|w| {
                std::thread::spawn(move || {
                    for i in 0..50u64 {
                        phj_flightrec::event(EventKind::Task, w as u16, round * 50 + i, 0);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }
    let summary = rec.summary();
    assert_eq!(summary.written() - before, 8 * 4 * 50);
    assert_eq!(summary.counts[EventKind::Task as usize], 8 * 4 * 50);
    // Dead threads' rings are still snapshottable.
    assert!(summary.threads.len() >= 32, "one ring per short-lived thread");
    let timeline = rec.timeline();
    assert!(timeline.windows(2).all(|w| w[0].ts_ns <= w[1].ts_ns));
}
