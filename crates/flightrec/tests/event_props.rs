//! Property tests for the event wire format: encode/decode must
//! round-trip every representable event, and decode must be a partial
//! inverse of encode on arbitrary words.

use proptest::prelude::*;

use phj_flightrec::{phase_code, phase_name, Event, EventKind, KIND_COUNT, PHASES};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn encode_decode_round_trips(
        ts_ns in any::<u64>(),
        kind_ix in 0usize..KIND_COUNT,
        code in any::<u16>(),
        tid in any::<u16>(),
        a in any::<u64>(),
        b in any::<u64>(),
    ) {
        let ev = Event { ts_ns, kind: EventKind::ALL[kind_ix], code, tid, a, b };
        let words = ev.encode();
        prop_assert_eq!(Event::decode(words), Some(ev));
        // Encoding is canonical: decode→encode reproduces the words.
        prop_assert_eq!(Event::decode(words).unwrap().encode(), words);
    }

    #[test]
    fn decode_accepts_only_canonical_words(
        ts in any::<u64>(),
        meta in any::<u64>(),
        a in any::<u64>(),
        b in any::<u64>(),
    ) {
        // Arbitrary metadata words: decode must either reject, or
        // return an event that re-encodes to exactly the input —
        // i.e. garbage never silently normalizes.
        match Event::decode([ts, meta, a, b]) {
            Some(ev) => prop_assert_eq!(ev.encode(), [ts, meta, a, b]),
            None => {
                let reserved = meta & ((1u64 << 24) - 1);
                let kind = (meta >> 56) as u8;
                prop_assert!(
                    reserved != 0 || kind as usize >= KIND_COUNT,
                    "rejected a canonical word: meta={meta:#x}"
                );
            }
        }
    }

    #[test]
    fn phase_codes_round_trip(ix in 0usize..PHASES.len()) {
        let name = PHASES[ix];
        prop_assert_eq!(phase_name(phase_code(name)), name);
    }
}
