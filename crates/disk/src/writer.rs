//! Background write-back: the buffer manager's "background writing".
//!
//! The main thread hands full output pages to per-stripe worker threads
//! through bounded channels and keeps computing; `finish` drains the
//! in-flight window and surfaces any I/O error (§7.2's overlap of output
//! I/O with computation).

use std::io;
use std::sync::mpsc::{Receiver, SyncSender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

use phj_storage::PAGE_SIZE;

use crate::stripe::StripeSet;

enum Job {
    Write(u64, Box<[u8; PAGE_SIZE]>),
    Shutdown,
}

/// A background page writer over a [`StripeSet`].
pub struct BackgroundWriter {
    stripes: StripeSet,
    tx: Vec<SyncSender<Job>>,
    workers: Vec<JoinHandle<()>>,
    first_error: Arc<Mutex<Option<io::Error>>>,
}

impl BackgroundWriter {
    /// Start one worker per stripe with `window` in-flight pages total.
    pub fn start(stripes: StripeSet, window: usize) -> Self {
        let n = stripes.num_stripes();
        let per_stripe = (window / n).max(1);
        let first_error = Arc::new(Mutex::new(None));
        let mut tx = Vec::with_capacity(n);
        let mut workers = Vec::with_capacity(n);
        for _s in 0..n {
            let (t, r): (SyncSender<Job>, Receiver<Job>) =
                std::sync::mpsc::sync_channel(per_stripe);
            tx.push(t);
            let stripes = stripes.clone();
            let err = Arc::clone(&first_error);
            workers.push(std::thread::spawn(move || {
                while let Ok(job) = r.recv() {
                    match job {
                        Job::Shutdown => break,
                        Job::Write(page, image) => {
                            if let Err(e) = stripes.write_page(page, &image) {
                                err.lock().expect("error lock").get_or_insert(e);
                            }
                        }
                    }
                }
            }));
        }
        BackgroundWriter { stripes, tx, workers, first_error }
    }

    /// Enqueue a page write (blocks only when the stripe's in-flight
    /// window is full — backpressure, not unbounded buffering).
    pub fn write(&self, page: u64, image: Box<[u8; PAGE_SIZE]>) {
        let s = self.stripes.stripe_of(page);
        self.tx[s]
            .send(Job::Write(page, image))
            .expect("writer worker vanished");
    }

    /// Drain all in-flight writes, join the workers, and surface the
    /// first I/O error if any occurred.
    pub fn finish(mut self) -> io::Result<()> {
        for t in &self.tx {
            let _ = t.send(Job::Shutdown);
        }
        self.tx.clear();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        match self.first_error.lock().expect("error lock").take() {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }
}

impl Drop for BackgroundWriter {
    fn drop(&mut self) {
        for t in &self.tx {
            let _ = t.send(Job::Shutdown);
        }
        self.tx.clear();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir()
            .join(format!("phj-writer-test-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn writes_land_and_finish_drains() {
        let dir = temp_dir("basic");
        let s = StripeSet::create(&dir, "t", 3, 2).unwrap();
        let w = BackgroundWriter::start(s.clone(), 8);
        for p in 0..40u64 {
            let mut img = Box::new([0u8; PAGE_SIZE]);
            img[7] = p as u8;
            w.write(p, img);
        }
        w.finish().unwrap();
        for p in 0..40u64 {
            assert_eq!(s.read_page(p).unwrap()[7], p as u8);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn drop_without_finish_joins_workers() {
        let dir = temp_dir("drop");
        let s = StripeSet::create(&dir, "t", 2, 1).unwrap();
        {
            let w = BackgroundWriter::start(s.clone(), 2);
            w.write(0, Box::new([1u8; PAGE_SIZE]));
        } // drop must not hang
        std::fs::remove_dir_all(&dir).ok();
    }
}
