//! Background write-back: the buffer manager's "background writing".
//!
//! The main thread hands full output pages to per-stripe worker threads
//! through bounded channels and keeps computing; `finish` drains the
//! in-flight window and surfaces any I/O error (§7.2's overlap of output
//! I/O with computation).
//!
//! **Failure behaviour:** a worker that hits an unrecoverable write error
//! records it and switches to *drain-discard* mode — it keeps receiving
//! and dropping jobs until shutdown. The bounded in-flight window
//! therefore keeps moving (producers never deadlock against a dead
//! worker), and the error surfaces on [`BackgroundWriter::finish`].

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, SyncSender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

use phj_storage::PAGE_SIZE;

use crate::error::{PhjError, Result};
use crate::stripe::StripeSet;

enum Job {
    Write(u64, Box<[u8; PAGE_SIZE]>),
    Shutdown,
}

/// A background page writer over a [`StripeSet`]. Images handed to
/// [`write`](BackgroundWriter::write) must already be sealed
/// ([`phj_storage::Page::sealed_image`]); writes go through the stripe
/// set's checked path (fault injection + retries).
pub struct BackgroundWriter {
    stripes: StripeSet,
    tx: Vec<SyncSender<Job>>,
    workers: Vec<JoinHandle<()>>,
    first_error: Arc<Mutex<Option<PhjError>>>,
    failed: Arc<AtomicBool>,
}

impl BackgroundWriter {
    /// Start one worker per stripe with `window` in-flight pages total.
    pub fn start(stripes: StripeSet, window: usize) -> Self {
        let n = stripes.num_stripes();
        let per_stripe = (window / n).max(1);
        let first_error = Arc::new(Mutex::new(None));
        let failed = Arc::new(AtomicBool::new(false));
        let mut tx = Vec::with_capacity(n);
        let mut workers = Vec::with_capacity(n);
        for _s in 0..n {
            let (t, r): (SyncSender<Job>, Receiver<Job>) =
                std::sync::mpsc::sync_channel(per_stripe);
            tx.push(t);
            let stripes = stripes.clone();
            let err = Arc::clone(&first_error);
            let failed = Arc::clone(&failed);
            workers.push(std::thread::spawn(move || {
                while let Ok(job) = r.recv() {
                    match job {
                        Job::Shutdown => break,
                        Job::Write(page, image) => {
                            // After any worker fails, all workers drain and
                            // discard: the run is already doomed, but the
                            // producers must not block on a full window.
                            if failed.load(Ordering::Relaxed) {
                                continue;
                            }
                            if let Err(e) = stripes.write_image_checked(page, image) {
                                err.lock().unwrap_or_else(|p| p.into_inner()).get_or_insert(e);
                                failed.store(true, Ordering::Relaxed);
                            }
                        }
                    }
                }
            }));
        }
        BackgroundWriter { stripes, tx, workers, first_error, failed }
    }

    /// Enqueue a page write (blocks only when the stripe's in-flight
    /// window is full — backpressure, not unbounded buffering). An error
    /// here means the worker thread itself is gone; write errors inside
    /// the worker surface on [`finish`](BackgroundWriter::finish).
    pub fn write(&self, page: u64, image: Box<[u8; PAGE_SIZE]>) -> Result<()> {
        let s = self.stripes.stripe_of(page);
        self.tx[s]
            .send(Job::Write(page, image))
            .map_err(|_| PhjError::WorkerLost { what: "background writer" })
    }

    /// Whether any worker has recorded a write error (fast check for
    /// producers that want to stop generating pages early).
    pub fn failed(&self) -> bool {
        self.failed.load(Ordering::Relaxed)
    }

    /// Drain all in-flight writes, join the workers, and surface the
    /// first write error if any occurred.
    pub fn finish(mut self) -> Result<()> {
        for t in &self.tx {
            let _ = t.send(Job::Shutdown);
        }
        self.tx.clear();
        let mut lost = false;
        for w in self.workers.drain(..) {
            lost |= w.join().is_err();
        }
        let first = self.first_error.lock().unwrap_or_else(|p| p.into_inner()).take();
        match first {
            Some(e) => Err(e),
            None if lost => Err(PhjError::WorkerLost { what: "background writer" }),
            None => Ok(()),
        }
    }
}

impl Drop for BackgroundWriter {
    fn drop(&mut self) {
        for t in &self.tx {
            let _ = t.send(Job::Shutdown);
        }
        self.tx.clear();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir()
            .join(format!("phj-writer-test-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    use phj_storage::Page;

    fn sealed(marker: u32) -> Box<[u8; PAGE_SIZE]> {
        let mut p = Page::new();
        p.insert(&marker.to_le_bytes(), marker).unwrap();
        p.sealed_image()
    }

    #[test]
    fn writes_land_and_finish_drains() {
        let dir = temp_dir("basic");
        let s = StripeSet::create(&dir, "t", 3, 2).unwrap();
        let w = BackgroundWriter::start(s.clone(), 8);
        for p in 0..40u64 {
            w.write(p, sealed(p as u32)).unwrap();
        }
        w.finish().unwrap();
        for p in 0..40u64 {
            assert_eq!(s.read_page_verified(p).unwrap().hash_code(0), p as u32);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn drop_without_finish_joins_workers() {
        let dir = temp_dir("drop");
        let s = StripeSet::create(&dir, "t", 2, 1).unwrap();
        {
            let w = BackgroundWriter::start(s.clone(), 2);
            w.write(0, sealed(1)).unwrap();
        } // drop must not hang
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn failed_worker_drains_instead_of_deadlocking() {
        use crate::fault::{FaultPlan, RetryPolicy};
        let dir = temp_dir("drain");
        // Every write fails permanently. The in-flight window is tiny (one
        // worker, window 2): before the drain-discard fix, the worker died
        // and the 40 writes below blocked forever on the full channel.
        let plan = FaultPlan::seeded(1).permanent(10_000);
        let s = StripeSet::create(&dir, "t", 1, 1)
            .unwrap()
            .with_faults(plan, RetryPolicy { max_attempts: 2, backoff_micros: 1 });
        let w = BackgroundWriter::start(s, 2);
        for p in 0..40u64 {
            w.write(p, sealed(p as u32)).unwrap();
        }
        assert!(w.failed());
        let err = w.finish().unwrap_err();
        assert!(matches!(err, crate::error::PhjError::Io { .. }), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn partial_failure_keeps_good_stripes_draining() {
        use crate::fault::{FaultPlan, RetryPolicy};
        let dir = temp_dir("partial");
        // Permanent faults at ~20%: some pages fail, most succeed. The
        // writer must still accept and drain the full stream.
        let plan = FaultPlan::seeded(5).permanent(2_000);
        let s = StripeSet::create(&dir, "t", 2, 1)
            .unwrap()
            .with_faults(plan.clone(), RetryPolicy { max_attempts: 2, backoff_micros: 1 });
        let w = BackgroundWriter::start(s, 4);
        for p in 0..200u64 {
            w.write(p, sealed(p as u32)).unwrap();
        }
        assert!(w.finish().is_err());
        assert!(plan.stats().injected_permanent.load(std::sync::atomic::Ordering::Relaxed) > 0);
        std::fs::remove_dir_all(&dir).ok();
    }
}
