//! A revocable memory budget shared between a running join and its
//! grantor.
//!
//! The static GRACE path treats [`DiskGraceConfig::mem_budget`] as a
//! constant for the whole run. The dynamic hybrid path instead reads
//! its budget from a [`LiveBudget`]: the grantor (the server's
//! admission table, a test harness, a bench sweep) may lower the
//! *limit* at any time from any thread, and the join observes the new
//! limit at its next safe point — a page-granular pressure check —
//! spills victim partitions until it complies, and then *acks* the
//! bytes it actually holds. The ack fires an optional hook, which is
//! how a daemon query propagates compliance back into
//! `MemGrant::try_shrink` so the freed bytes re-enter the global
//! budget while the query is still running.
//!
//! The protocol is deliberately asynchronous and lock-free on the
//! join's side: `limit` and `acked` are plain atomics, the request
//! side never blocks the join, and the join never blocks the grantor.
//! A limit *raise* is also just a store — the join sees the headroom
//! at its next phase boundary and may re-absorb spilled partitions.
//!
//! [`DiskGraceConfig::mem_budget`]: crate::DiskGraceConfig::mem_budget

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Hook invoked (on the join thread) after the join brings its held
/// bytes under a lowered limit.
type AckFn = Box<dyn Fn(u64) + Send + Sync>;

/// A dynamically adjustable memory budget (see module docs).
pub struct LiveBudget {
    /// The grantor's current target, bytes. The join must shed down to
    /// this; it may use up to this.
    limit: AtomicU64,
    /// What the join last acknowledged actually holding (≤ limit once
    /// compliant; lags the limit between a shrink request and the next
    /// safe point).
    acked: AtomicU64,
    /// Shrink requests observed by the consumer (telemetry/tests).
    shed_requests: AtomicU64,
    on_ack: Mutex<Option<AckFn>>,
}

impl std::fmt::Debug for LiveBudget {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LiveBudget")
            .field("limit", &self.limit.load(Ordering::Relaxed))
            .field("acked", &self.acked.load(Ordering::Relaxed))
            .finish()
    }
}

impl LiveBudget {
    /// A budget starting at `bytes`, fully acked (the join holds
    /// nothing yet, so it trivially complies).
    pub fn new(bytes: u64) -> LiveBudget {
        LiveBudget {
            limit: AtomicU64::new(bytes),
            acked: AtomicU64::new(bytes),
            shed_requests: AtomicU64::new(0),
            on_ack: Mutex::new(None),
        }
    }

    /// The current target in bytes.
    pub fn limit(&self) -> u64 {
        self.limit.load(Ordering::Acquire)
    }

    /// The byte total the join last acknowledged complying with.
    pub fn acked(&self) -> u64 {
        self.acked.load(Ordering::Acquire)
    }

    /// Shrink requests the consumer has observed so far.
    pub fn shed_requests(&self) -> u64 {
        self.shed_requests.load(Ordering::Relaxed)
    }

    /// Grantor side: move the target to `bytes` (up or down). Never
    /// blocks; the join observes the change at its next safe point.
    pub fn request(&self, bytes: u64) {
        self.limit.store(bytes, Ordering::Release);
    }

    /// Grantor side: lower the target to `min(limit, bytes)` — a
    /// pressure request can only take memory away, never hand out more
    /// than the grantor meant to.
    pub fn request_shrink(&self, bytes: u64) {
        self.limit.fetch_min(bytes, Ordering::AcqRel);
    }

    /// Join side: acknowledge holding at most `bytes` (called at safe
    /// points after compliance, and at phase boundaries). Fires the
    /// ack hook when the acknowledged total changed.
    pub fn ack(&self, bytes: u64) {
        let prev = self.acked.swap(bytes, Ordering::AcqRel);
        if prev != bytes {
            if bytes < prev {
                self.shed_requests.fetch_add(1, Ordering::Relaxed);
            }
            if let Some(hook) = self.on_ack.lock().unwrap().as_ref() {
                hook(bytes);
            }
        }
    }

    /// Install the compliance hook (e.g. `MemGrant::try_shrink`).
    /// Replaces any previous hook.
    pub fn set_on_ack(&self, hook: impl Fn(u64) + Send + Sync + 'static) {
        *self.on_ack.lock().unwrap() = Some(Box::new(hook));
    }

    /// Spin until the join acks a total ≤ `bytes`, or `timeout`
    /// elapses. Test/bench helper — the production path is hook-driven.
    pub fn wait_acked_below(&self, bytes: u64, timeout: std::time::Duration) -> bool {
        let t0 = std::time::Instant::now();
        while self.acked() > bytes {
            if t0.elapsed() > timeout {
                return false;
            }
            std::thread::yield_now();
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::sync::Arc;

    #[test]
    fn shrink_request_is_monotone_down_and_ack_fires_hook() {
        let lb = LiveBudget::new(1000);
        assert_eq!(lb.limit(), 1000);
        lb.request_shrink(400);
        lb.request_shrink(700); // cannot raise via shrink
        assert_eq!(lb.limit(), 400);

        let seen = Arc::new(AtomicU64::new(0));
        let s = Arc::clone(&seen);
        lb.set_on_ack(move |b| s.store(b, Ordering::SeqCst));
        lb.ack(400);
        assert_eq!(seen.load(Ordering::SeqCst), 400);
        assert_eq!(lb.acked(), 400);
        assert_eq!(lb.shed_requests(), 1);
        // Re-acking the same total is a no-op (no double hook fire).
        seen.store(0, Ordering::SeqCst);
        lb.ack(400);
        assert_eq!(seen.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn grow_request_raises_the_limit() {
        let lb = LiveBudget::new(100);
        lb.request(900);
        assert_eq!(lb.limit(), 900);
        lb.ack(900);
        assert!(lb.wait_acked_below(1000, std::time::Duration::from_millis(10)));
    }
}
