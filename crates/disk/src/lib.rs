#![warn(missing_docs)]

//! Disk-oriented execution for the `phj` hash join engine.
//!
//! The paper's real-machine experiments (§7.1–7.2) run on an engine that
//! stores relations and intermediate partitions as disk files, with "a
//! buffer manager that stripes pages across multiple disks and performs
//! I/O prefetching with background worker threads [...] and background
//! writing so that I/O operations can be overlapped with computations as
//! much as possible". This crate is that substrate, real files and real
//! threads included:
//!
//! * [`stripe::StripeSet`] — a relation's pages striped across N files in
//!   fixed-size units (the paper stripes across 6 disks in 256 KB units;
//!   on a laptop the "disks" are plain files, but the mechanics — page →
//!   (file, offset) mapping, per-file workers — are the same);
//! * [`FileRelation`] — an on-disk relation with its schema and page
//!   count;
//! * [`reader::SequentialReader`] — background read-ahead: one worker
//!   thread per stripe file streams pages into a bounded queue while the
//!   main thread computes; the reader reports how long the main thread
//!   blocked (the "main thread stall" of Fig 9);
//! * [`writer::BackgroundWriter`] — background write-back with a bounded
//!   in-flight window;
//! * [`grace`] — the GRACE hash join over [`FileRelation`]s: the
//!   partition phase streams the input through the reader and spills
//!   partitions through the writer; the join phase loads each build
//!   partition into memory and streams its probe partition, joining with
//!   any of the in-memory schemes.

pub mod budget;
pub mod catalog;
pub mod error;
pub mod fault;
pub mod grace;
mod hybrid;
pub mod reader;
pub mod stripe;
mod telemetry;
pub mod writer;

use std::path::{Path, PathBuf};

use phj_storage::{Relation, Schema, PAGE_SIZE};

pub use budget::LiveBudget;
pub use error::{PhjError, Result};
pub use fault::{Fault, FaultPlan, IoOp, IoStats, RetryPolicy};
pub use grace::{
    grace_join_files, grace_join_files_rec, DegradationEvent, DegradationKind, DiskGraceConfig,
    DiskGraceReport, DiskJoinMode, MemTransition, TransitionKind,
};
pub use reader::SequentialReader;
pub use stripe::StripeSet;
pub use writer::BackgroundWriter;

/// A relation stored on disk as striped page files.
#[derive(Debug)]
pub struct FileRelation {
    schema: Schema,
    stripes: StripeSet,
    num_pages: u64,
    num_tuples: u64,
}

impl FileRelation {
    /// Write an in-memory relation out as a striped file relation under
    /// `dir` (one file per stripe, named `<name>.N`). Pages are sealed
    /// (header checksum stamped) on their way out.
    pub fn create(
        dir: &Path,
        name: &str,
        rel: &Relation,
        num_stripes: usize,
        stripe_pages: u64,
    ) -> Result<FileRelation> {
        let stripes = StripeSet::create(dir, name, num_stripes, stripe_pages)
            .map_err(|e| PhjError::io(dir.join(name), e))?;
        let writer = BackgroundWriter::start(stripes.clone(), 64);
        for (i, page) in rel.pages().iter().enumerate() {
            writer.write(i as u64, page.sealed_image())?;
        }
        writer.finish()?;
        Ok(FileRelation {
            schema: rel.schema().clone(),
            stripes,
            num_pages: rel.num_pages() as u64,
            num_tuples: rel.num_tuples() as u64,
        })
    }

    /// Attach a fault plan and retry policy to all subsequent I/O on this
    /// relation (scans, loads, and any clone of its stripe set).
    pub fn set_faults(&mut self, fault: FaultPlan, retry: RetryPolicy) {
        self.stripes = self.stripes.clone().with_faults(fault, retry);
    }

    /// Open a scan over the relation with `read_ahead` pages of
    /// background prefetching.
    pub fn scan(&self, read_ahead: usize) -> SequentialReader {
        SequentialReader::start(self.stripes.clone(), 0, self.num_pages, read_ahead)
    }

    /// Read the entire relation back into memory (join-phase load of a
    /// memory-sized build partition). Every page is checksum-verified.
    pub fn load(&self) -> Result<Relation> {
        let mut rel = Relation::new(self.schema.clone());
        let mut scan = self.scan(64);
        while let Some(page) = scan.next_page()? {
            rel.push_page(page);
        }
        Ok(rel)
    }

    /// The relation's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of pages on disk.
    pub fn num_pages(&self) -> u64 {
        self.num_pages
    }

    /// Number of tuples.
    pub fn num_tuples(&self) -> u64 {
        self.num_tuples
    }

    /// Bytes on disk (whole pages).
    pub fn size_bytes(&self) -> u64 {
        self.num_pages * PAGE_SIZE as u64
    }

    /// Paths of the stripe files (diagnostics).
    pub fn stripe_paths(&self) -> Vec<PathBuf> {
        self.stripes.paths().to_vec()
    }

    /// Stripe unit in pages.
    pub fn stripe_pages(&self) -> u64 {
        self.stripes.stripe_pages()
    }

    fn from_parts(schema: Schema, stripes: StripeSet, num_pages: u64, num_tuples: u64) -> Self {
        FileRelation { schema, stripes, num_pages, num_tuples }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phj_storage::RelationBuilder;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "phj-disk-test-{tag}-{}",
            std::process::id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample_relation(n: usize) -> Relation {
        let schema = Schema::key_payload(40);
        let mut b = RelationBuilder::new(schema);
        let mut t = [0u8; 40];
        for i in 0..n {
            t[..4].copy_from_slice(&(i as u32).to_le_bytes());
            b.push_hashed(&t, i as u32);
        }
        b.finish()
    }

    #[test]
    fn create_scan_load_roundtrip() {
        let dir = temp_dir("roundtrip");
        let rel = sample_relation(5000);
        let fr = FileRelation::create(&dir, "r", &rel, 3, 4).unwrap();
        assert_eq!(fr.num_tuples(), 5000);
        assert_eq!(fr.num_pages(), rel.num_pages() as u64);
        assert_eq!(fr.stripe_paths().len(), 3);
        // Scan pages in order and compare tuples.
        let loaded = fr.load().unwrap();
        assert_eq!(loaded.to_tuple_vec(), rel.to_tuple_vec());
        for (r, t, h) in loaded.iter().take(10) {
            assert_eq!(loaded.tuple(r), t);
            let k = u32::from_le_bytes(t[..4].try_into().unwrap());
            assert_eq!(h, k);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_relation_roundtrip() {
        let dir = temp_dir("empty");
        let rel = sample_relation(0);
        let fr = FileRelation::create(&dir, "e", &rel, 2, 8).unwrap();
        assert_eq!(fr.num_pages(), 0);
        assert_eq!(fr.load().unwrap().num_tuples(), 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn reader_reports_stall_time() {
        let dir = temp_dir("stall");
        let rel = sample_relation(20_000);
        let fr = FileRelation::create(&dir, "s", &rel, 2, 32).unwrap();
        let mut scan = fr.scan(16);
        let mut pages = 0u64;
        while let Some(_page) = scan.next_page().unwrap() {
            pages += 1;
        }
        assert_eq!(pages, fr.num_pages());
        // Stall accounting exists and is sane (non-negative, finite).
        assert!(scan.stall_seconds() >= 0.0);
        std::fs::remove_dir_all(&dir).ok();
    }
}
