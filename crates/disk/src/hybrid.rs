//! Hybrid and dynamic hybrid hash join over file relations.
//!
//! Classic GRACE ([`crate::grace`]) writes *every* partition to disk
//! and reads it all back, even when the build side nearly fits in
//! memory — the I/O bill is flat across the budget axis. The hybrid
//! join instead keeps as many build partitions memory-resident as the
//! budget allows and joins their probe tuples on the fly; only the
//! overflow partitions round-trip through the spill file. With a
//! generous budget it converges on a single in-memory join; with a
//! starved one it converges on GRACE (with a finer fanout), and in
//! between it degrades *linearly* instead of falling off a cliff.
//!
//! **Residency protocol.** The build pass appends tuples into
//! per-partition page lists and checks, at page granularity, whether
//! `resident_bytes + reserve` still fits the live budget. When it does
//! not, the **largest** resident partition is evicted — its pages
//! stream to the spill file through a [`BackgroundWriter`], a
//! [`MemTransition`] records the partition's byte size and the live
//! budget at the moment of the decision, and the partition's future
//! tuples route straight to disk. The same check runs during the probe
//! pass (evicting there first drains the partition's pending probe
//! batch through its hash table, then serializes the build pages back
//! out), so a mid-run budget shrink from a [`LiveBudget`] grantor is
//! honored within one page's worth of work. [`DiskJoinMode::Dynamic`]
//! additionally *re-absorbs* spilled partitions (smallest-first) at the
//! build→probe phase boundary when the budget has headroom again —
//! e.g. after a neighboring query finished and the grantor raised the
//! limit.
//!
//! The `reserve` slice ([`plan::hybrid_reserve`]) is held back from
//! residency to cover the probe-side batch buffers, hash-table
//! overhead, and the join-phase working space for spilled pairs.
//!
//! **Composition with the ladder.** Spilled pairs run through the
//! exact same [`join_partition_pair`] the GRACE path uses — recursive
//! reseeded repartition, block-NLJ fallback, typed overflow, fault
//! plans and retries all compose unchanged underneath, with each
//! pair's budget sampled from the live budget at pair start.
//!
//! [`LiveBudget`]: crate::budget::LiveBudget
//! [`DiskJoinMode::Dynamic`]: crate::grace::DiskJoinMode::Dynamic
//! [`MemTransition`]: crate::grace::MemTransition

use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Instant;

use phj::join::{dispatch_build, dispatch_probe, JoinParams};
use phj::sink::{CountSink, JoinSink};
use phj::table::HashTable;
use phj::{hash, plan};
use phj_memsim::NativeModel;
use phj_obs::{self as obs, Recorder};
use phj_storage::{
    tuple::key_bytes_of, Page, Relation, RelationBuilder, Schema, PAGE_SIZE,
};

use crate::budget::LiveBudget;
use crate::error::{PhjError, Result};
use crate::grace::{
    join_partition_pair, Degrade, DiskGraceConfig, DiskGraceReport, DiskJoinMode, DiskSink,
    MemTransition, Spilled, TransitionKind,
};
use crate::stripe::StripeSet;
use crate::writer::BackgroundWriter;
use crate::FileRelation;

/// Probe tuples for a resident partition accumulate in a small batch
/// before flushing through the partition's hash table, so the probe
/// loop amortizes dispatch overhead without holding unbounded memory.
const PROBE_BATCH_BYTES: usize = PAGE_SIZE;

/// A spill file whose background writer can be stopped (so pages can
/// be read back) and lazily restarted (so a later victim eviction can
/// keep appending). GRACE's one-shot `SpillBuilder` finishes its writer
/// exactly once; the hybrid join crosses the write→read boundary twice
/// (absorb at the phase boundary, pair joins at the end).
struct SpillFile {
    stripes: StripeSet,
    writer: Option<BackgroundWriter>,
    next_page: u64,
    window: usize,
}

impl SpillFile {
    fn new(cfg: &DiskGraceConfig, name: &str) -> Result<SpillFile> {
        let stripes = StripeSet::create(&cfg.dir, name, cfg.num_stripes, cfg.stripe_pages)
            .map_err(|e| PhjError::io(cfg.dir.join(name), e))?
            .with_faults(cfg.fault.clone(), cfg.retry);
        Ok(SpillFile { stripes, writer: None, next_page: 0, window: cfg.write_window })
    }

    /// Append one sealed page image; returns its page id.
    fn write(&mut self, image: Box<[u8; PAGE_SIZE]>) -> Result<u64> {
        let writer = self
            .writer
            .get_or_insert_with(|| BackgroundWriter::start(self.stripes.clone(), self.window));
        let id = self.next_page;
        writer.write(id, image)?;
        self.next_page += 1;
        Ok(id)
    }

    /// Stop the writer and wait for in-flight pages — required before
    /// any page written so far may be read back.
    fn sync(&mut self) -> Result<()> {
        match self.writer.take() {
            Some(w) => w.finish(),
            None => Ok(()),
        }
    }
}

/// One build partition during the build pass.
enum BPart {
    /// Memory-resident: sealed-full pages plus the open append page.
    Res { pages: Vec<Page>, open: Page },
    /// On disk: tuples route through a one-page spill buffer.
    Spilled { buf: Page },
}

/// Build-pass state: partition residency, the shared build spill file,
/// and the byte ledger the pressure checks run against.
struct BuildPass<'a> {
    live: &'a LiveBudget,
    reserve: u64,
    parts: Vec<BPart>,
    file: SpillFile,
    /// Spill-file pages per partition (empty while resident).
    part_pages: Vec<Vec<u64>>,
    /// Total build tuples routed to each partition (resident or not).
    tuples: Vec<u64>,
    /// Bytes held by resident partitions, counting each open page as a
    /// full page. Hash tables and batch buffers ride on `reserve`.
    resident_bytes: u64,
    transitions: Vec<MemTransition>,
}

impl<'a> BuildPass<'a> {
    fn new(cfg: &DiskGraceConfig, live: &'a LiveBudget, reserve: u64, p: usize) -> Result<Self> {
        Ok(BuildPass {
            live,
            reserve,
            parts: (0..p).map(|_| BPart::Res { pages: Vec::new(), open: Page::new() }).collect(),
            file: SpillFile::new(cfg, "hyb_bspill")?,
            part_pages: vec![Vec::new(); p],
            tuples: vec![0; p],
            resident_bytes: (p * PAGE_SIZE) as u64,
            transitions: Vec::new(),
        })
    }

    fn push(&mut self, part: usize, tuple: &[u8], h: u32) -> Result<()> {
        match &mut self.parts[part] {
            BPart::Res { pages, open } => {
                if !open.fits(tuple.len()) {
                    pages.push(std::mem::replace(open, Page::new()));
                    self.resident_bytes += PAGE_SIZE as u64;
                }
                open.insert(tuple, h)
                    .ok_or(PhjError::TupleTooLarge { bytes: tuple.len() })?;
            }
            BPart::Spilled { buf } => {
                if !buf.fits(tuple.len()) {
                    let id = self.file.write(buf.sealed_image())?;
                    self.part_pages[part].push(id);
                    buf.reset();
                    phj_flightrec::event_full(
                        phj_flightrec::EventKind::Spill,
                        part.min(u16::MAX as usize) as u16,
                        self.part_pages[part].len() as u64,
                        self.tuples[part],
                    );
                }
                buf.insert(tuple, h)
                    .ok_or(PhjError::TupleTooLarge { bytes: tuple.len() })?;
            }
        }
        self.tuples[part] += 1;
        self.enforce("build")
    }

    /// Page-granular safe point: spill largest-first victims until
    /// residency (plus the reserve) fits the live budget, then ack.
    fn enforce(&mut self, phase: &'static str) -> Result<()> {
        let limit = self.live.limit();
        if self.resident_bytes + self.reserve <= limit {
            if self.live.acked() > limit {
                // Already compliant with a shrink we never had to act on.
                self.live.ack(limit);
            }
            return Ok(());
        }
        while self.resident_bytes + self.reserve > limit {
            let victim = self
                .parts
                .iter()
                .enumerate()
                .filter_map(|(i, bp)| match bp {
                    BPart::Res { pages, .. } => {
                        Some((i, ((pages.len() + 1) * PAGE_SIZE) as u64))
                    }
                    BPart::Spilled { .. } => None,
                })
                .max_by_key(|&(i, bytes)| (bytes, std::cmp::Reverse(i)));
            let Some((v, bytes)) = victim else { break };
            self.spill_victim(v, bytes, limit, phase)?;
        }
        // Floor: with everything spilled we still hold the reserve.
        self.live.ack(limit.max(self.resident_bytes + self.reserve));
        Ok(())
    }

    /// Evict one resident partition: stream its pages to the spill
    /// file and route its future tuples to a spill buffer.
    fn spill_victim(
        &mut self,
        v: usize,
        bytes: u64,
        limit: u64,
        phase: &'static str,
    ) -> Result<()> {
        let BPart::Res { pages, open } =
            std::mem::replace(&mut self.parts[v], BPart::Spilled { buf: Page::new() })
        else {
            unreachable!("victim selection only returns resident partitions");
        };
        for page in &pages {
            let id = self.file.write(page.sealed_image())?;
            self.part_pages[v].push(id);
        }
        // Keep appending into the former open page as the spill buffer
        // — its contents flush with the next seal or at pass end.
        self.parts[v] = BPart::Spilled { buf: open };
        self.resident_bytes -= bytes;
        self.transitions.push(MemTransition {
            partition: v,
            bytes,
            budget: limit,
            kind: TransitionKind::SpillVictim,
            phase,
        });
        phj_flightrec::event(
            phj_flightrec::EventKind::Grant,
            phj_flightrec::grant_op::SPILL_VICTIM,
            v as u64,
            bytes,
        );
        Ok(())
    }

    /// Flush every spilled partition's buffer page so the spill file
    /// holds each spilled partition completely.
    fn flush_spilled_bufs(&mut self) -> Result<()> {
        for (part, bp) in self.parts.iter_mut().enumerate() {
            if let BPart::Spilled { buf } = bp {
                if buf.nslots() > 0 {
                    let id = self.file.write(buf.sealed_image())?;
                    self.part_pages[part].push(id);
                    buf.reset();
                }
            }
        }
        Ok(())
    }

    /// Phase-boundary re-absorption ([`DiskJoinMode::Dynamic`] only):
    /// pull spilled partitions back into memory, smallest-first, while
    /// the live budget has headroom. Requires the spill writer synced.
    fn absorb(&mut self) -> Result<()> {
        loop {
            let limit = self.live.limit();
            let headroom = limit.saturating_sub(self.resident_bytes + self.reserve);
            let cand = self
                .parts
                .iter()
                .enumerate()
                .filter(|(i, bp)| {
                    matches!(bp, BPart::Spilled { .. }) && !self.part_pages[*i].is_empty()
                })
                .map(|(i, _)| (i, ((self.part_pages[i].len() + 1) * PAGE_SIZE) as u64))
                .filter(|&(_, bytes)| bytes <= headroom)
                .min_by_key(|&(i, bytes)| (bytes, i));
            let Some((v, bytes)) = cand else { break };
            let mut pages = Vec::with_capacity(self.part_pages[v].len());
            for &pid in &self.part_pages[v] {
                pages.push(self.file.stripes.read_page_verified(pid)?);
            }
            self.part_pages[v].clear();
            self.parts[v] = BPart::Res { pages, open: Page::new() };
            self.resident_bytes += bytes;
            self.transitions.push(MemTransition {
                partition: v,
                bytes,
                budget: limit,
                kind: TransitionKind::Absorb,
                phase: "absorb",
            });
            phj_flightrec::event(
                phj_flightrec::EventKind::Grant,
                phj_flightrec::grant_op::ABSORB,
                v as u64,
                bytes,
            );
        }
        self.live.ack(self.live.limit().max(self.resident_bytes + self.reserve));
        Ok(())
    }
}

/// One memory-resident partition during the probe pass: the build
/// relation, its hash table, and the pending probe batch.
struct BuiltPart {
    rel: Relation,
    table: HashTable,
    batch: RelationBuilder,
    batch_bytes: usize,
}

/// Probe-pass state. Owns what the build pass left resident plus the
/// probe-side spill bookkeeping.
struct ProbePass<'a> {
    live: &'a LiveBudget,
    reserve: u64,
    built: Vec<Option<BuiltPart>>,
    resident_bytes: u64,
    /// Build-side spill file (victims evicted mid-probe append here).
    bfile: SpillFile,
    bpart_pages: Vec<Vec<u64>>,
    /// Probe-side spill file for tuples routed to spilled partitions.
    pfile: SpillFile,
    pbufs: Vec<Page>,
    ppart_pages: Vec<Vec<u64>>,
    ptuples: Vec<u64>,
    transitions: Vec<MemTransition>,
    probe_schema: Schema,
}

impl<'a> ProbePass<'a> {
    /// Route one probe tuple: batch-join against a resident partition,
    /// spill it for a disk pair, or drop it when the spilled build
    /// partition is empty (no match possible).
    #[allow(clippy::too_many_arguments)]
    fn push(
        &mut self,
        part: usize,
        tuple: &[u8],
        h: u32,
        build_tuples: u64,
        native: &mut NativeModel,
        params: &JoinParams,
        sink: &mut DiskSink,
    ) -> Result<()> {
        if self.built[part].is_some() {
            let bp = self.built[part].as_mut().unwrap();
            bp.batch.push_hashed(tuple, h);
            bp.batch_bytes += tuple.len();
            if bp.batch_bytes >= PROBE_BATCH_BYTES {
                self.flush_batch(part, native, params, sink)?;
            }
        } else if build_tuples > 0 {
            let buf = &mut self.pbufs[part];
            if !buf.fits(tuple.len()) {
                let id = self.pfile.write(buf.sealed_image())?;
                self.ppart_pages[part].push(id);
                buf.reset();
            }
            buf.insert(tuple, h)
                .ok_or(PhjError::TupleTooLarge { bytes: tuple.len() })?;
            self.ptuples[part] += 1;
        }
        // else: the build partition is on disk *and* empty — an inner
        // join can never match this tuple, so it is dropped here.
        self.enforce(native, params, sink)
    }

    /// Join a resident partition's pending probe batch through its
    /// hash table.
    fn flush_batch(
        &mut self,
        part: usize,
        native: &mut NativeModel,
        params: &JoinParams,
        sink: &mut DiskSink,
    ) -> Result<()> {
        let schema = self.probe_schema.clone();
        let Some(bp) = self.built[part].as_mut() else { return Ok(()) };
        if bp.batch_bytes == 0 {
            return Ok(());
        }
        let batch = std::mem::replace(&mut bp.batch, RelationBuilder::new(schema));
        bp.batch_bytes = 0;
        let prel = batch.finish();
        if prel.num_tuples() > 0 {
            dispatch_probe(native, params, &bp.table, &bp.rel, &prel, sink);
        }
        if let Some(e) = sink.error.take() {
            return Err(e);
        }
        Ok(())
    }

    /// Probe-pass safe point: evict largest-first resident partitions
    /// until residency fits the live budget. Eviction first drains the
    /// partition's pending probe batch (every probe tuple is joined
    /// exactly once), then serializes the build relation back out.
    fn enforce(
        &mut self,
        native: &mut NativeModel,
        params: &JoinParams,
        sink: &mut DiskSink,
    ) -> Result<()> {
        let limit = self.live.limit();
        if self.resident_bytes + self.reserve <= limit {
            if self.live.acked() > limit {
                self.live.ack(limit);
            }
            return Ok(());
        }
        while self.resident_bytes + self.reserve > limit {
            let victim = self
                .built
                .iter()
                .enumerate()
                .filter_map(|(i, bp)| {
                    bp.as_ref()
                        .map(|b| (i, (b.rel.pages().len() * PAGE_SIZE) as u64))
                })
                .max_by_key(|&(i, bytes)| (bytes, std::cmp::Reverse(i)));
            let Some((v, bytes)) = victim else { break };
            self.flush_batch(v, native, params, sink)?;
            let bp = self.built[v].take().expect("victim is resident");
            for page in bp.rel.pages() {
                let id = self.bfile.write(page.sealed_image())?;
                self.bpart_pages[v].push(id);
            }
            self.resident_bytes -= bytes;
            self.transitions.push(MemTransition {
                partition: v,
                bytes,
                budget: limit,
                kind: TransitionKind::SpillVictim,
                phase: "probe",
            });
            phj_flightrec::event(
                phj_flightrec::EventKind::Grant,
                phj_flightrec::grant_op::SPILL_VICTIM,
                v as u64,
                bytes,
            );
        }
        self.live.ack(self.live.limit().max(self.resident_bytes + self.reserve));
        Ok(())
    }

    /// Drain every resident partition's pending batch, then flush the
    /// probe-side spill buffers.
    fn finish_scan(
        &mut self,
        native: &mut NativeModel,
        params: &JoinParams,
        sink: &mut DiskSink,
    ) -> Result<()> {
        for part in 0..self.built.len() {
            self.flush_batch(part, native, params, sink)?;
        }
        for part in 0..self.pbufs.len() {
            if self.pbufs[part].nslots() > 0 {
                let image = self.pbufs[part].sealed_image();
                let id = self.pfile.write(image)?;
                self.ppart_pages[part].push(id);
                self.pbufs[part].reset();
            }
        }
        Ok(())
    }
}

/// Run the hybrid (or dynamic hybrid) hash join. Entered from
/// [`crate::grace::grace_join_files_rec`] when
/// [`DiskGraceConfig::mode`] is not [`DiskJoinMode::Grace`].
pub(crate) fn hybrid_join_files_rec(
    cfg: &DiskGraceConfig,
    build: &FileRelation,
    probe: &FileRelation,
    mut rec: Option<&mut Recorder>,
) -> Result<DiskGraceReport> {
    let live: Arc<LiveBudget> = cfg
        .live_budget
        .clone()
        .unwrap_or_else(|| Arc::new(LiveBudget::new(cfg.mem_budget as u64)));
    let budget0 = live.limit().max(PAGE_SIZE as u64);
    let reserve = plan::hybrid_reserve(budget0 as usize) as u64;
    let p = plan::hybrid_fanout(build.size_bytes() as usize, budget0 as usize).max(1);
    let mut native = NativeModel;
    let params = JoinParams { scheme: cfg.join_scheme, use_stored_hash: true };

    phj_flightrec::event(
        phj_flightrec::EventKind::Grant,
        phj_flightrec::grant_op::BUDGET,
        cfg.grant_tag,
        budget0,
    );

    // ---- Build pass: stream the build side into resident partitions,
    // evicting victims whenever residency outgrows the live budget.
    let t0 = Instant::now();
    let span = obs::span_begin(&mut rec, &native, "partition");
    obs::span_meta(&mut rec, "partitions", p);
    obs::span_meta(&mut rec, "mode", cfg.mode.label());
    let bschema = build.schema().clone();
    let pschema = probe.schema().clone();
    let mut bp = BuildPass::new(cfg, &live, reserve, p)?;
    let mut bscan = build.scan(cfg.read_ahead);
    while let Some(page) = bscan.next_page()? {
        for (_, tuple, _) in page.iter() {
            let h = hash::hash_key(key_bytes_of(&bschema, tuple));
            bp.push(hash::partition_of(h, p), tuple, h)?;
        }
    }
    let bstall = bscan.stall_seconds();
    bp.flush_spilled_bufs()?;
    bp.file.sync()?;
    if cfg.mode == DiskJoinMode::Dynamic {
        // The grantor may have freed memory since the victims spilled;
        // pull the cheapest ones back before building tables.
        bp.absorb()?;
    }
    obs::span_end(&mut rec, &native, span);
    let partition_s = t0.elapsed().as_secs_f64();

    // ---- Table build: turn every resident partition into (relation,
    // hash table); spilled partitions keep their page lists.
    let BuildPass {
        parts,
        file: bfile,
        part_pages: bpart_pages,
        tuples: btuples,
        mut resident_bytes,
        transitions,
        ..
    } = bp;
    let mut built: Vec<Option<BuiltPart>> = Vec::with_capacity(p);
    for part in parts {
        match part {
            BPart::Res { pages, open } => {
                let mut rel = Relation::new(bschema.clone());
                let open_live = open.nslots() > 0;
                for page in pages {
                    rel.push_page(page);
                }
                if open_live {
                    rel.push_page(open);
                } else {
                    // The empty open page leaves residency with its owner.
                    resident_bytes -= PAGE_SIZE as u64;
                }
                let n = rel.num_tuples();
                let buckets = plan::hash_table_buckets(n, p);
                let mut table = HashTable::new(buckets, n);
                dispatch_build(&mut native, &params, &mut table, &rel);
                table.assert_quiescent();
                built.push(Some(BuiltPart {
                    rel,
                    table,
                    batch: RelationBuilder::new(pschema.clone()),
                    batch_bytes: 0,
                }));
            }
            BPart::Spilled { buf } => {
                debug_assert_eq!(buf.nslots(), 0, "spill buffers flushed before table build");
                built.push(None);
            }
        }
    }

    let out_schema = Schema::join_output(build.schema(), probe.schema());
    let out_stripes = StripeSet::create(&cfg.dir, "out", cfg.num_stripes, cfg.stripe_pages)
        .map_err(|e| PhjError::io(cfg.dir.join("out"), e))?
        .with_faults(cfg.fault.clone(), cfg.retry);
    let mut sink = DiskSink {
        build_schema: bschema.clone(),
        probe_schema: pschema.clone(),
        writer: BackgroundWriter::start(out_stripes.clone(), cfg.write_window),
        page: Page::new(),
        next_page: 0,
        buf: Vec::new(),
        tuples: 0,
        count: CountSink::new(),
        error: None,
    };

    // ---- Probe pass: resident partitions join on the fly; tuples for
    // spilled partitions go to the probe spill file.
    let t1 = Instant::now();
    let span = obs::span_begin(&mut rec, &native, "join");
    let mut pp = ProbePass {
        live: &live,
        reserve,
        built,
        resident_bytes,
        bfile,
        bpart_pages,
        pfile: SpillFile::new(cfg, "hyb_pspill")?,
        pbufs: (0..p).map(|_| Page::new()).collect(),
        ppart_pages: vec![Vec::new(); p],
        ptuples: vec![0; p],
        transitions,
        probe_schema: pschema.clone(),
    };
    let mut pscan = probe.scan(cfg.read_ahead);
    while let Some(page) = pscan.next_page()? {
        for (_, tuple, _) in page.iter() {
            let h = hash::hash_key(key_bytes_of(&pschema, tuple));
            let part = hash::partition_of(h, p);
            pp.push(part, tuple, h, btuples[part], &mut native, &params, &mut sink)?;
        }
    }
    let pstall = pscan.stall_seconds();
    pp.finish_scan(&mut native, &params, &mut sink)?;
    let resident_partitions = pp.built.iter().filter(|b| b.is_some()).count();
    // Resident partitions are fully joined; release them before the
    // disk pairs so pair working memory has the whole budget.
    pp.built.clear();
    pp.bfile.sync()?;
    pp.pfile.sync()?;

    // ---- Disk pairs: whatever spilled runs through the classic
    // degradation ladder, budgeted by the live limit at each pair.
    let ProbePass {
        bfile, bpart_pages, pfile, ppart_pages, ptuples, mut transitions, ..
    } = pp;
    let bspill = Spilled {
        stripes: bfile.stripes,
        part_tuples: (0..p)
            .map(|i| if bpart_pages[i].is_empty() { 0 } else { btuples[i] })
            .collect(),
        part_pages: bpart_pages,
    };
    let pspill = Spilled {
        stripes: pfile.stripes,
        part_pages: ppart_pages,
        part_tuples: ptuples.clone(),
    };
    let mut deg = Degrade { events: Vec::new(), spill_counter: 0 };
    for part in 0..p {
        if bspill.part_tuples[part] == 0 || pspill.part_tuples[part] == 0 {
            continue; // one side empty: no matches possible
        }
        let pair_budget = live.limit();
        live.ack(pair_budget.max(reserve));
        join_partition_pair(
            cfg,
            pair_budget,
            &params,
            &mut native,
            &bschema,
            &pschema,
            &bspill,
            &pspill,
            part,
            part.to_string(),
            0,
            p,
            &mut sink,
            &mut deg,
            &mut rec,
        )?;
        if let Some(e) = sink.error.take() {
            return Err(e);
        }
    }
    obs::span_end(&mut rec, &native, span);

    if sink.page.nslots() > 0 {
        sink.writer.write(sink.next_page, sink.page.sealed_image())?;
        sink.next_page += 1;
    }
    let (matches, tuples, out_pages, count, writer) =
        (sink.matches(), sink.tuples, sink.next_page, sink.count, sink.writer);
    writer.finish()?;
    let join_s = t1.elapsed().as_secs_f64();
    let final_budget = live.limit();
    live.ack(final_budget);
    // Keep the transitions in decision order across both passes.
    transitions.sort_by_key(|t| match t.phase {
        "build" => 0u8,
        "absorb" => 1,
        _ => 2,
    });

    let stats = cfg.fault.stats();
    Ok(DiskGraceReport {
        output: FileRelation::from_parts(out_schema, out_stripes, out_pages, tuples),
        num_partitions: p,
        partition_s,
        join_s,
        input_stall_s: bstall + pstall,
        matches,
        checksum: count.checksum(),
        degradation: deg.events,
        read_retries: stats.read_retries.load(Ordering::Relaxed),
        write_retries: stats.write_retries.load(Ordering::Relaxed),
        faults_injected: stats.total_injected(),
        slow_stall_us: stats.slow_stall_us.load(Ordering::Relaxed),
        transitions,
        resident_partitions,
        final_budget,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grace::{grace_join_files, DiskGraceConfig};
    use phj_workload::JoinSpec;
    use std::path::{Path, PathBuf};

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("phj-hybrid-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn spec() -> JoinSpec {
        JoinSpec { build_tuples: 4000, tuple_size: 48, matches_per_build: 2, pct_match: 70, seed: 11 }
    }

    fn run(dir: &Path, mode: DiskJoinMode, budget: usize) -> DiskGraceReport {
        let gen = spec().generate();
        let fb = FileRelation::create(dir, "build", &gen.build, 3, 4).unwrap();
        let fp = FileRelation::create(dir, "probe", &gen.probe, 3, 4).unwrap();
        let cfg = DiskGraceConfig { mem_budget: budget, mode, ..DiskGraceConfig::new(dir) };
        grace_join_files(&cfg, &fb, &fp).unwrap()
    }

    #[test]
    fn hybrid_matches_grace_at_every_budget() {
        for budget in [32 * 1024, 128 * 1024, 4 << 20] {
            let gdir = temp_dir(&format!("g{budget}"));
            let hdir = temp_dir(&format!("h{budget}"));
            let g = run(&gdir, DiskJoinMode::Grace, budget);
            let h = run(&hdir, DiskJoinMode::Hybrid, budget);
            assert_eq!(g.matches, h.matches, "budget {budget}");
            assert_eq!(g.checksum, h.checksum, "budget {budget}");
            assert_eq!(h.output.num_tuples(), h.matches);
            std::fs::remove_dir_all(&gdir).ok();
            std::fs::remove_dir_all(&hdir).ok();
        }
    }

    #[test]
    fn generous_budget_keeps_everything_resident() {
        let dir = temp_dir("resident");
        let r = run(&dir, DiskJoinMode::Hybrid, 64 << 20);
        assert_eq!(r.resident_partitions, r.num_partitions);
        assert!(r.transitions.is_empty(), "{:?}", r.transitions);
        assert!(r.degradation.is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn starved_budget_spills_victims_and_still_answers() {
        let dir = temp_dir("starved");
        let r = run(&dir, DiskJoinMode::Hybrid, 24 * 1024);
        assert!(
            r.transitions.iter().any(|t| t.kind == TransitionKind::SpillVictim),
            "expected victim spills under a starved budget"
        );
        for t in &r.transitions {
            assert!(t.bytes > 0);
            assert!(t.budget > 0);
        }
        let gdir = temp_dir("starved-ref");
        let g = run(&gdir, DiskJoinMode::Grace, 24 * 1024);
        assert_eq!(g.checksum, r.checksum);
        std::fs::remove_dir_all(&dir).ok();
        std::fs::remove_dir_all(&gdir).ok();
    }

    #[test]
    fn mid_run_shrink_spills_victims_and_budgets_the_ladder() {
        let dir = temp_dir("shrink");
        let gen = spec().generate();
        let fb = FileRelation::create(&dir, "build", &gen.build, 3, 4).unwrap();
        let fp = FileRelation::create(&dir, "probe", &gen.probe, 3, 4).unwrap();
        // The pending pre-run shrink (64 MiB → 8 MiB) makes the join's
        // very first safe point ack — and the ack hook then lands a
        // *mid-run* shrink to 32 KiB, deterministically, while the
        // build pass is streaming.
        let live = Arc::new(LiveBudget::new(64 << 20));
        live.request_shrink(8 << 20);
        let hooked = Arc::clone(&live);
        live.set_on_ack(move |_| hooked.request_shrink(32 * 1024));
        let cfg = DiskGraceConfig {
            mem_budget: 64 << 20,
            mode: DiskJoinMode::Dynamic,
            live_budget: Some(Arc::clone(&live)),
            ..DiskGraceConfig::new(&dir)
        };
        let r = grace_join_files(&cfg, &fb, &fp).unwrap();
        assert_eq!(r.final_budget, 32 * 1024);
        // The shrink was observed mid-build: victims spilled against
        // the 32 KiB live budget, not the configured 64 MiB.
        assert!(
            r.transitions
                .iter()
                .any(|t| t.kind == TransitionKind::SpillVictim && t.budget == 32 * 1024),
            "{:?}",
            r.transitions
        );
        // The spilled pairs walked the degradation ladder against the
        // *live* budget.
        for d in &r.degradation {
            assert_eq!(d.budget, 32 * 1024, "{d}");
        }
        let gdir = temp_dir("shrink-ref");
        let g = run(&gdir, DiskJoinMode::Grace, 8 << 20);
        assert_eq!(g.checksum, r.checksum);
        assert_eq!(g.matches, r.matches);
        std::fs::remove_dir_all(&dir).ok();
        std::fs::remove_dir_all(&gdir).ok();
    }

    #[test]
    fn dynamic_reabsorbs_after_budget_raise() {
        let dir = temp_dir("absorb");
        let gen = spec().generate();
        let fb = FileRelation::create(&dir, "build", &gen.build, 3, 4).unwrap();
        let fp = FileRelation::create(&dir, "probe", &gen.probe, 3, 4).unwrap();
        // Start starved (a pending shrink to one page forces the first
        // safe point to spill everything and ack); the ack hook then
        // raises the budget mid-build, and the dynamic mode re-absorbs
        // the spilled partitions at the build→probe phase boundary.
        let live = Arc::new(LiveBudget::new(64 * 1024));
        live.request_shrink(8 * 1024);
        let hooked = Arc::clone(&live);
        live.set_on_ack(move |_| hooked.request(32 << 20));
        let cfg = DiskGraceConfig {
            mem_budget: 64 * 1024,
            mode: DiskJoinMode::Dynamic,
            live_budget: Some(Arc::clone(&live)),
            ..DiskGraceConfig::new(&dir)
        };
        let r = grace_join_files(&cfg, &fb, &fp).unwrap();
        assert!(
            r.transitions.iter().any(|t| t.kind == TransitionKind::Absorb),
            "expected re-absorption after the mid-run raise: {:?}",
            r.transitions
        );
        // Every partition that received build tuples was re-absorbed
        // (empty ones have nothing to pull back), so no pair ever
        // reaches the disk-join ladder.
        assert!(r.resident_partitions > 0);
        assert!(r.degradation.is_empty(), "{:?}", r.degradation);
        let gdir = temp_dir("absorb-ref");
        let g = run(&gdir, DiskJoinMode::Grace, 64 * 1024);
        assert_eq!(g.checksum, r.checksum);
        std::fs::remove_dir_all(&dir).ok();
        std::fs::remove_dir_all(&gdir).ok();
    }
}
