//! Page striping across a set of files.
//!
//! §7.2: "To get good I/O performance, we stripe a relation across all
//! the disks with 256KB units. [...] We imitate raw disk partitions by
//! allocating a large file on each disk and managing the mapping from
//! page IDs to file offsets ourselves." Here each "disk" is one file;
//! the page-id → (file, offset) mapping is the same arithmetic.

use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex};

use phj_storage::{Page, PAGE_SIZE};

use crate::error::{PhjError, Result};
use crate::fault::{Fault, FaultPlan, IoOp, RetryPolicy};

/// A striped set of page files. Cloneable handle; the underlying files
/// are shared (each protected by its own lock so per-file worker threads
/// don't contend with each other).
///
/// Two access levels:
///
/// * [`read_page`](StripeSet::read_page) / [`write_page`]
///   (StripeSet::write_page) — raw images, no checksum, no faults (tests
///   and tools that inspect images directly);
/// * [`read_page_verified`](StripeSet::read_page_verified) /
///   [`write_image_checked`](StripeSet::write_image_checked) — what the
///   engine uses: fault injection, bounded retry-with-backoff, and
///   checksum verification, returning typed [`PhjError`]s.
#[derive(Clone, Debug)]
pub struct StripeSet {
    files: Arc<Vec<Mutex<File>>>,
    paths: Arc<Vec<PathBuf>>,
    /// Per-file fault-decision tags (hash of the file name).
    tags: Arc<Vec<u64>>,
    stripe_pages: u64,
    fault: FaultPlan,
    retry: RetryPolicy,
}

impl StripeSet {
    /// Create (truncating) `num_stripes` files named `<name>.<i>` under
    /// `dir`, striping in units of `stripe_pages` pages.
    pub fn create(
        dir: &Path,
        name: &str,
        num_stripes: usize,
        stripe_pages: u64,
    ) -> io::Result<StripeSet> {
        assert!(num_stripes > 0, "need at least one stripe file");
        assert!(stripe_pages > 0, "stripe unit must be at least one page");
        std::fs::create_dir_all(dir)?;
        let mut files = Vec::with_capacity(num_stripes);
        let mut paths = Vec::with_capacity(num_stripes);
        for i in 0..num_stripes {
            let path = dir.join(format!("{name}.{i}"));
            let f = OpenOptions::new()
                .read(true)
                .write(true)
                .create(true)
                .truncate(true)
                .open(&path)?;
            files.push(Mutex::new(f));
            paths.push(path);
        }
        Ok(Self::from_files(files, paths, stripe_pages))
    }

    /// Open an existing stripe set (files must have been created by
    /// [`StripeSet::create`] with the same geometry).
    pub fn open(
        dir: &Path,
        name: &str,
        num_stripes: usize,
        stripe_pages: u64,
    ) -> io::Result<StripeSet> {
        assert!(num_stripes > 0 && stripe_pages > 0);
        let mut files = Vec::with_capacity(num_stripes);
        let mut paths = Vec::with_capacity(num_stripes);
        for i in 0..num_stripes {
            let path = dir.join(format!("{name}.{i}"));
            let f = OpenOptions::new().read(true).write(true).open(&path)?;
            files.push(Mutex::new(f));
            paths.push(path);
        }
        Ok(Self::from_files(files, paths, stripe_pages))
    }

    fn from_files(files: Vec<Mutex<File>>, paths: Vec<PathBuf>, stripe_pages: u64) -> StripeSet {
        let tags = paths.iter().map(|p| FaultPlan::tag(p)).collect();
        StripeSet {
            files: Arc::new(files),
            paths: Arc::new(paths),
            tags: Arc::new(tags),
            stripe_pages,
            fault: FaultPlan::disabled(),
            retry: RetryPolicy::default(),
        }
    }

    /// Attach a fault plan and retry policy. Applies to this handle and
    /// every clone taken *afterwards* (readers/writers clone the handle
    /// they are started with).
    pub fn with_faults(mut self, fault: FaultPlan, retry: RetryPolicy) -> StripeSet {
        self.fault = fault;
        self.retry = retry;
        self
    }

    /// The fault plan this handle injects from.
    pub fn fault_plan(&self) -> &FaultPlan {
        &self.fault
    }

    /// The retry policy checked operations use.
    pub fn retry_policy(&self) -> RetryPolicy {
        self.retry
    }

    /// Stripe unit in pages.
    pub fn stripe_pages(&self) -> u64 {
        self.stripe_pages
    }

    /// Number of stripe files.
    pub fn num_stripes(&self) -> usize {
        self.files.len()
    }

    /// The stripe file a page lives on.
    #[inline]
    pub fn stripe_of(&self, page: u64) -> usize {
        ((page / self.stripe_pages) % self.files.len() as u64) as usize
    }

    /// Byte offset of a page within its stripe file.
    #[inline]
    pub fn offset_of(&self, page: u64) -> u64 {
        let unit = page / self.stripe_pages; // global stripe-unit index
        let round = unit / self.files.len() as u64; // units already on this file
        let within = page % self.stripe_pages;
        (round * self.stripe_pages + within) * PAGE_SIZE as u64
    }

    /// Write a raw page image at its striped location (no checksum, no
    /// fault injection, no retry).
    pub fn write_page(&self, page: u64, image: &[u8; PAGE_SIZE]) -> io::Result<()> {
        self.raw_write(self.stripe_of(page), page, image)
    }

    /// Read a raw page image from its striped location (no verification,
    /// no fault injection, no retry).
    pub fn read_page(&self, page: u64) -> io::Result<Box<[u8; PAGE_SIZE]>> {
        self.raw_read(self.stripe_of(page), page)
    }

    fn raw_write(&self, s: usize, page: u64, image: &[u8; PAGE_SIZE]) -> io::Result<()> {
        // A poisoned lock means another I/O thread panicked mid-hold; the
        // file offset it left behind is irrelevant (seeks are absolute),
        // so recover the guard rather than propagating the panic.
        let mut f = self.files[s].lock().unwrap_or_else(|p| p.into_inner());
        f.seek(SeekFrom::Start(self.offset_of(page)))?;
        f.write_all(image)?;
        if let Some(m) = crate::telemetry::disk_metrics() {
            m.bytes_written.add(PAGE_SIZE as u64);
        }
        Ok(())
    }

    fn raw_read(&self, s: usize, page: u64) -> io::Result<Box<[u8; PAGE_SIZE]>> {
        let mut image = vec![0u8; PAGE_SIZE].into_boxed_slice();
        {
            let mut f = self.files[s].lock().unwrap_or_else(|p| p.into_inner());
            f.seek(SeekFrom::Start(self.offset_of(page)))?;
            f.read_exact(&mut image)?;
        }
        if let Some(m) = crate::telemetry::disk_metrics() {
            m.bytes_read.add(PAGE_SIZE as u64);
        }
        Ok(image.try_into().expect("exact size"))
    }

    /// Read a page through the fault plan with bounded retries, then
    /// verify its header checksum. This is the engine's read path: every
    /// page that crossed the disk boundary comes back either verified or
    /// as a typed error naming file and page.
    pub fn read_page_verified(&self, page: u64) -> Result<Page> {
        let s = self.stripe_of(page);
        let tag = self.tags[s];
        let mut attempt = 0u32;
        loop {
            let res = match self.fault.decide(IoOp::Read, tag, page, attempt) {
                Some(Fault::Transient) => {
                    Err(io::Error::new(io::ErrorKind::Interrupted, "injected transient error"))
                }
                Some(Fault::ShortRead) => {
                    Err(io::Error::new(io::ErrorKind::UnexpectedEof, "injected short read"))
                }
                Some(Fault::Permanent) => Err(io::Error::other("injected permanent error")),
                Some(Fault::Slow) => {
                    std::thread::sleep(std::time::Duration::from_micros(self.fault.slow_micros));
                    self.raw_read(s, page)
                }
                Some(Fault::TornWrite) | None => self.raw_read(s, page),
            };
            match res {
                Ok(image) => {
                    return Page::try_from_image(image)
                        .map_err(|e| PhjError::from_page_error(self.paths[s].clone(), page, e));
                }
                Err(e) if attempt + 1 < self.retry.max_attempts && RetryPolicy::is_retryable(&e) => {
                    self.fault.stats().read_retries.fetch_add(1, Ordering::Relaxed);
                    if let Some(m) = crate::telemetry::disk_metrics() {
                        m.read_retries.inc();
                    }
                    // code 0 = read retry; b is the attempt being retried.
                    phj_flightrec::event(
                        phj_flightrec::EventKind::Retry,
                        0,
                        page,
                        attempt as u64 + 1,
                    );
                    std::thread::sleep(self.retry.backoff(attempt));
                    attempt += 1;
                }
                Err(e) => {
                    return Err(PhjError::Io {
                        path: self.paths[s].clone(),
                        page: Some(page),
                        attempts: attempt + 1,
                        source: e,
                    });
                }
            }
        }
    }

    /// Write an already-sealed page image through the fault plan with
    /// bounded retries. A torn-write fault corrupts the image before it
    /// reaches the file — the write still "succeeds"; detection belongs
    /// to the reader's checksum verification.
    pub fn write_image_checked(&self, page: u64, mut image: Box<[u8; PAGE_SIZE]>) -> Result<()> {
        let s = self.stripe_of(page);
        let tag = self.tags[s];
        let mut attempt = 0u32;
        loop {
            let res = match self.fault.decide(IoOp::Write, tag, page, attempt) {
                Some(Fault::Transient) => {
                    Err(io::Error::new(io::ErrorKind::Interrupted, "injected transient error"))
                }
                Some(Fault::Permanent) => Err(io::Error::other("injected permanent error")),
                Some(Fault::Slow) => {
                    std::thread::sleep(std::time::Duration::from_micros(self.fault.slow_micros));
                    self.raw_write(s, page, &image)
                }
                Some(Fault::TornWrite) => {
                    self.fault.corrupt_image(tag, page, &mut image);
                    self.raw_write(s, page, &image)
                }
                Some(Fault::ShortRead) | None => self.raw_write(s, page, &image),
            };
            match res {
                Ok(()) => return Ok(()),
                Err(e) if attempt + 1 < self.retry.max_attempts && RetryPolicy::is_retryable(&e) => {
                    self.fault.stats().write_retries.fetch_add(1, Ordering::Relaxed);
                    if let Some(m) = crate::telemetry::disk_metrics() {
                        m.write_retries.inc();
                    }
                    // code 1 = write retry; b is the attempt being retried.
                    phj_flightrec::event(
                        phj_flightrec::EventKind::Retry,
                        1,
                        page,
                        attempt as u64 + 1,
                    );
                    std::thread::sleep(self.retry.backoff(attempt));
                    attempt += 1;
                }
                Err(e) => {
                    return Err(PhjError::Io {
                        path: self.paths[s].clone(),
                        page: Some(page),
                        attempts: attempt + 1,
                        source: e,
                    });
                }
            }
        }
    }

    /// Seal a page and write its image through the checked path.
    pub fn write_page_sealed(&self, page: u64, p: &Page) -> Result<()> {
        self.write_image_checked(page, p.sealed_image())
    }

    /// Path of the stripe file holding `page` (diagnostics).
    pub fn path_of(&self, page: u64) -> &Path {
        &self.paths[self.stripe_of(page)]
    }

    /// Paths of the stripe files.
    pub fn paths(&self) -> &[PathBuf] {
        &self.paths
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join(format!("phj-stripe-test-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn stripe_arithmetic() {
        let dir = temp_dir("arith");
        let s = StripeSet::create(&dir, "t", 3, 4).unwrap();
        // Pages 0..4 on file 0 at offsets 0..4; 4..8 on file 1 at 0..4;
        // 8..12 on file 2; 12..16 back on file 0 at offsets 4..8.
        assert_eq!(s.stripe_of(0), 0);
        assert_eq!(s.stripe_of(3), 0);
        assert_eq!(s.stripe_of(4), 1);
        assert_eq!(s.stripe_of(11), 2);
        assert_eq!(s.stripe_of(12), 0);
        assert_eq!(s.offset_of(0), 0);
        assert_eq!(s.offset_of(3), 3 * PAGE_SIZE as u64);
        assert_eq!(s.offset_of(4), 0);
        assert_eq!(s.offset_of(12), 4 * PAGE_SIZE as u64);
        assert_eq!(s.offset_of(13), 5 * PAGE_SIZE as u64);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn pages_roundtrip_across_stripes() {
        let dir = temp_dir("rw");
        let s = StripeSet::create(&dir, "t", 2, 2).unwrap();
        for p in 0..10u64 {
            let mut img = Box::new([0u8; PAGE_SIZE]);
            img[0] = p as u8;
            img[PAGE_SIZE - 1] = 0xEE;
            s.write_page(p, &img).unwrap();
        }
        // Read back out of order.
        for p in (0..10u64).rev() {
            let img = s.read_page(p).unwrap();
            assert_eq!(img[0], p as u8);
            assert_eq!(img[PAGE_SIZE - 1], 0xEE);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn handles_are_shared() {
        let dir = temp_dir("share");
        let a = StripeSet::create(&dir, "t", 1, 1).unwrap();
        let b = a.clone();
        let img = Box::new([7u8; PAGE_SIZE]);
        a.write_page(5, &img).unwrap();
        assert_eq!(b.read_page(5).unwrap()[100], 7);
        std::fs::remove_dir_all(&dir).ok();
    }

    fn sample_page(marker: u32) -> Page {
        let mut p = Page::new();
        p.insert(&marker.to_le_bytes(), marker).unwrap();
        p
    }

    #[test]
    fn checked_roundtrip_verifies() {
        let dir = temp_dir("checked");
        let s = StripeSet::create(&dir, "t", 2, 2).unwrap();
        for p in 0..8u64 {
            s.write_page_sealed(p, &sample_page(p as u32)).unwrap();
        }
        for p in 0..8u64 {
            let page = s.read_page_verified(p).unwrap();
            assert_eq!(page.hash_code(0), p as u32);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn unsealed_write_fails_verification() {
        let dir = temp_dir("unsealed");
        let s = StripeSet::create(&dir, "t", 1, 1).unwrap();
        s.write_page(0, sample_page(1).as_bytes()).unwrap();
        let err = s.read_page_verified(0).unwrap_err();
        assert!(matches!(err, PhjError::ChecksumMismatch { page: 0, .. }), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn transient_faults_are_retried_to_success() {
        let dir = temp_dir("transient");
        let plan = crate::fault::FaultPlan::seeded(11).transient(4_000).short_reads(2_000);
        let s = StripeSet::create(&dir, "t", 2, 2)
            .unwrap()
            .with_faults(plan.clone(), RetryPolicy { max_attempts: 4, backoff_micros: 1 });
        for p in 0..50u64 {
            s.write_page_sealed(p, &sample_page(p as u32)).unwrap();
        }
        for p in 0..50u64 {
            assert_eq!(s.read_page_verified(p).unwrap().hash_code(0), p as u32);
        }
        // With these rates 50 writes + 50 reads must have hit some faults,
        // and every one of them was absorbed by retries.
        assert!(plan.stats().total_injected() > 0);
        assert!(plan.stats().total_retries() > 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_write_is_caught_by_the_reader() {
        let dir = temp_dir("torn");
        let plan = crate::fault::FaultPlan::seeded(7).torn_writes(10_000); // every write tears
        let s = StripeSet::create(&dir, "t", 1, 1)
            .unwrap()
            .with_faults(plan.clone(), RetryPolicy::default());
        s.write_page_sealed(0, &sample_page(9)).unwrap(); // "succeeds"
        let err = s.read_page_verified(0).unwrap_err();
        assert!(err.is_corruption(), "{err}");
        assert_eq!(plan.stats().injected_torn.load(Ordering::Relaxed), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn permanent_fault_exhausts_retries() {
        let dir = temp_dir("permanent");
        let plan = crate::fault::FaultPlan::seeded(3).permanent(10_000);
        let retry = RetryPolicy { max_attempts: 3, backoff_micros: 1 };
        let s = StripeSet::create(&dir, "t", 1, 1).unwrap().with_faults(plan, retry);
        let err = s.write_image_checked(0, sample_page(1).sealed_image()).unwrap_err();
        match err {
            // Permanent errors are not retryable, so one attempt suffices.
            PhjError::Io { page: Some(0), attempts, .. } => assert_eq!(attempts, 1),
            other => panic!("expected Io error, got {other}"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
