//! Page striping across a set of files.
//!
//! §7.2: "To get good I/O performance, we stripe a relation across all
//! the disks with 256KB units. [...] We imitate raw disk partitions by
//! allocating a large file on each disk and managing the mapping from
//! page IDs to file offsets ourselves." Here each "disk" is one file;
//! the page-id → (file, offset) mapping is the same arithmetic.

use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

use phj_storage::PAGE_SIZE;

/// A striped set of page files. Cloneable handle; the underlying files
/// are shared (each protected by its own lock so per-file worker threads
/// don't contend with each other).
#[derive(Clone)]
pub struct StripeSet {
    files: Arc<Vec<Mutex<File>>>,
    paths: Arc<Vec<PathBuf>>,
    stripe_pages: u64,
}

impl StripeSet {
    /// Create (truncating) `num_stripes` files named `<name>.<i>` under
    /// `dir`, striping in units of `stripe_pages` pages.
    pub fn create(
        dir: &Path,
        name: &str,
        num_stripes: usize,
        stripe_pages: u64,
    ) -> io::Result<StripeSet> {
        assert!(num_stripes > 0, "need at least one stripe file");
        assert!(stripe_pages > 0, "stripe unit must be at least one page");
        std::fs::create_dir_all(dir)?;
        let mut files = Vec::with_capacity(num_stripes);
        let mut paths = Vec::with_capacity(num_stripes);
        for i in 0..num_stripes {
            let path = dir.join(format!("{name}.{i}"));
            let f = OpenOptions::new()
                .read(true)
                .write(true)
                .create(true)
                .truncate(true)
                .open(&path)?;
            files.push(Mutex::new(f));
            paths.push(path);
        }
        Ok(StripeSet {
            files: Arc::new(files),
            paths: Arc::new(paths),
            stripe_pages,
        })
    }

    /// Open an existing stripe set (files must have been created by
    /// [`StripeSet::create`] with the same geometry).
    pub fn open(
        dir: &Path,
        name: &str,
        num_stripes: usize,
        stripe_pages: u64,
    ) -> io::Result<StripeSet> {
        assert!(num_stripes > 0 && stripe_pages > 0);
        let mut files = Vec::with_capacity(num_stripes);
        let mut paths = Vec::with_capacity(num_stripes);
        for i in 0..num_stripes {
            let path = dir.join(format!("{name}.{i}"));
            let f = OpenOptions::new().read(true).write(true).open(&path)?;
            files.push(Mutex::new(f));
            paths.push(path);
        }
        Ok(StripeSet {
            files: Arc::new(files),
            paths: Arc::new(paths),
            stripe_pages,
        })
    }

    /// Stripe unit in pages.
    pub fn stripe_pages(&self) -> u64 {
        self.stripe_pages
    }

    /// Number of stripe files.
    pub fn num_stripes(&self) -> usize {
        self.files.len()
    }

    /// The stripe file a page lives on.
    #[inline]
    pub fn stripe_of(&self, page: u64) -> usize {
        ((page / self.stripe_pages) % self.files.len() as u64) as usize
    }

    /// Byte offset of a page within its stripe file.
    #[inline]
    pub fn offset_of(&self, page: u64) -> u64 {
        let unit = page / self.stripe_pages; // global stripe-unit index
        let round = unit / self.files.len() as u64; // units already on this file
        let within = page % self.stripe_pages;
        (round * self.stripe_pages + within) * PAGE_SIZE as u64
    }

    /// Write a page image at its striped location.
    pub fn write_page(&self, page: u64, image: &[u8; PAGE_SIZE]) -> io::Result<()> {
        let s = self.stripe_of(page);
        let mut f = self.files[s].lock().expect("stripe lock poisoned");
        f.seek(SeekFrom::Start(self.offset_of(page)))?;
        f.write_all(image)
    }

    /// Read a page image from its striped location.
    pub fn read_page(&self, page: u64) -> io::Result<Box<[u8; PAGE_SIZE]>> {
        let s = self.stripe_of(page);
        let mut image = vec![0u8; PAGE_SIZE].into_boxed_slice();
        {
            let mut f = self.files[s].lock().expect("stripe lock poisoned");
            f.seek(SeekFrom::Start(self.offset_of(page)))?;
            f.read_exact(&mut image)?;
        }
        Ok(image.try_into().expect("exact size"))
    }

    /// Paths of the stripe files.
    pub fn paths(&self) -> &[PathBuf] {
        &self.paths
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join(format!("phj-stripe-test-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn stripe_arithmetic() {
        let dir = temp_dir("arith");
        let s = StripeSet::create(&dir, "t", 3, 4).unwrap();
        // Pages 0..4 on file 0 at offsets 0..4; 4..8 on file 1 at 0..4;
        // 8..12 on file 2; 12..16 back on file 0 at offsets 4..8.
        assert_eq!(s.stripe_of(0), 0);
        assert_eq!(s.stripe_of(3), 0);
        assert_eq!(s.stripe_of(4), 1);
        assert_eq!(s.stripe_of(11), 2);
        assert_eq!(s.stripe_of(12), 0);
        assert_eq!(s.offset_of(0), 0);
        assert_eq!(s.offset_of(3), 3 * PAGE_SIZE as u64);
        assert_eq!(s.offset_of(4), 0);
        assert_eq!(s.offset_of(12), 4 * PAGE_SIZE as u64);
        assert_eq!(s.offset_of(13), 5 * PAGE_SIZE as u64);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn pages_roundtrip_across_stripes() {
        let dir = temp_dir("rw");
        let s = StripeSet::create(&dir, "t", 2, 2).unwrap();
        for p in 0..10u64 {
            let mut img = Box::new([0u8; PAGE_SIZE]);
            img[0] = p as u8;
            img[PAGE_SIZE - 1] = 0xEE;
            s.write_page(p, &img).unwrap();
        }
        // Read back out of order.
        for p in (0..10u64).rev() {
            let img = s.read_page(p).unwrap();
            assert_eq!(img[0], p as u8);
            assert_eq!(img[PAGE_SIZE - 1], 0xEE);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn handles_are_shared() {
        let dir = temp_dir("share");
        let a = StripeSet::create(&dir, "t", 1, 1).unwrap();
        let b = a.clone();
        let img = Box::new([7u8; PAGE_SIZE]);
        a.write_page(5, &img).unwrap();
        assert_eq!(b.read_page(5).unwrap()[100], 7);
        std::fs::remove_dir_all(&dir).ok();
    }
}
