//! Typed errors for the disk substrate.
//!
//! Everything that can go wrong between a page image and a join result —
//! an exhausted retry budget, a torn write, a checksum mismatch, a build
//! partition that no amount of repartitioning will shrink — surfaces as a
//! [`PhjError`] naming the file, page, and partition involved, instead of
//! a panic backtrace. The CLI renders the `Display` chain and exits
//! nonzero.

use std::fmt;
use std::io;
use std::path::PathBuf;

use phj_storage::PageError;

/// Result alias for fallible disk-substrate operations.
pub type Result<T> = std::result::Result<T, PhjError>;

/// An error surfaced by the disk-oriented join engine.
#[derive(Debug)]
pub enum PhjError {
    /// An I/O operation failed after exhausting its retry budget.
    Io {
        /// File the operation targeted.
        path: PathBuf,
        /// Page id within the striped relation, when known.
        page: Option<u64>,
        /// Attempts made before giving up (1 = no retries).
        attempts: u32,
        /// The final operating-system error.
        source: io::Error,
    },
    /// A page read back from disk is structurally impossible — a torn
    /// write, a hole in the file, or a foreign page.
    TornPage {
        /// Stripe file the page was read from.
        path: PathBuf,
        /// Page id within the striped relation.
        page: u64,
        /// Slot count claimed by the corrupt header.
        nslots: u16,
        /// Data-start offset claimed by the corrupt header.
        data_start: u16,
    },
    /// A page's header checksum does not match its contents — corruption
    /// inside the slot or data area.
    ChecksumMismatch {
        /// Stripe file the page was read from.
        path: PathBuf,
        /// Page id within the striped relation.
        page: u64,
        /// Checksum stored in the header.
        stored: u32,
        /// Checksum recomputed from the image.
        computed: u32,
    },
    /// A build partition still exceeds the memory budget after every
    /// degradation step (repartition depth exhausted, nested-loop
    /// fallback disabled).
    PartitionOverflow {
        /// Partition number within its repartition level.
        partition: usize,
        /// Recursive repartition depth at which the engine gave up.
        depth: u32,
        /// Size of the oversized partition in bytes.
        bytes: u64,
        /// The memory budget it had to fit into.
        budget: u64,
    },
    /// A join-output tuple is larger than a page can hold.
    TupleTooLarge {
        /// Size of the offending tuple in bytes.
        bytes: usize,
    },
    /// A background worker disappeared without delivering a result or an
    /// error (it panicked).
    WorkerLost {
        /// Which worker (e.g. "read-ahead", "background writer").
        what: &'static str,
    },
}

impl PhjError {
    /// Attach a (file, page) location to a storage-level [`PageError`].
    pub fn from_page_error(path: PathBuf, page: u64, e: PageError) -> PhjError {
        match e {
            PageError::Torn { nslots, data_start } => {
                PhjError::TornPage { path, page, nslots, data_start }
            }
            PageError::ChecksumMismatch { stored, computed } => {
                PhjError::ChecksumMismatch { path, page, stored, computed }
            }
        }
    }

    /// Wrap a plain `io::Error` with a file (no page, single attempt).
    pub fn io(path: PathBuf, source: io::Error) -> PhjError {
        PhjError::Io { path, page: None, attempts: 1, source }
    }

    /// Whether this error came from page verification (torn/checksum) —
    /// i.e. data corruption rather than an operational failure.
    pub fn is_corruption(&self) -> bool {
        matches!(self, PhjError::TornPage { .. } | PhjError::ChecksumMismatch { .. })
    }
}

impl fmt::Display for PhjError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PhjError::Io { path, page, attempts, source } => {
                write!(f, "I/O error on {}", path.display())?;
                if let Some(p) = page {
                    write!(f, " page {p}")?;
                }
                write!(f, " after {attempts} attempt(s): {source}")
            }
            PhjError::TornPage { path, page, nslots, data_start } => write!(
                f,
                "torn page {page} in {}: header claims {nslots} slots, data_start {data_start}",
                path.display()
            ),
            PhjError::ChecksumMismatch { path, page, stored, computed } => write!(
                f,
                "checksum mismatch on page {page} in {}: header {stored:#010x}, contents {computed:#010x}",
                path.display()
            ),
            PhjError::PartitionOverflow { partition, depth, bytes, budget } => write!(
                f,
                "partition {partition} overflows the memory budget at repartition depth \
                 {depth}: {bytes} B > {budget} B and nested-loop fallback is disabled"
            ),
            PhjError::TupleTooLarge { bytes } => {
                write!(f, "join output tuple of {bytes} B exceeds the page size")
            }
            PhjError::WorkerLost { what } => {
                write!(f, "{what} worker terminated without reporting a result")
            }
        }
    }
}

impl std::error::Error for PhjError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PhjError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_file_and_page() {
        let e = PhjError::ChecksumMismatch {
            path: PathBuf::from("/tmp/spill.2"),
            page: 17,
            stored: 0xDEAD_BEEF,
            computed: 0x0BAD_F00D,
        };
        let s = e.to_string();
        assert!(s.contains("/tmp/spill.2"), "{s}");
        assert!(s.contains("page 17"), "{s}");
        assert!(s.contains("0xdeadbeef"), "{s}");
        assert!(e.is_corruption());
    }

    #[test]
    fn io_chain_renders_source() {
        let e = PhjError::Io {
            path: PathBuf::from("x.0"),
            page: Some(3),
            attempts: 4,
            source: io::Error::new(io::ErrorKind::Interrupted, "injected"),
        };
        let s = e.to_string();
        assert!(s.contains("after 4 attempt(s)"), "{s}");
        assert!(s.contains("injected"), "{s}");
        assert!(std::error::Error::source(&e).is_some());
        assert!(!e.is_corruption());
    }

    #[test]
    fn page_error_maps_to_located_variant() {
        let e = PhjError::from_page_error(
            PathBuf::from("b.1"),
            9,
            PageError::Torn { nslots: 2000, data_start: 8 },
        );
        assert!(matches!(e, PhjError::TornPage { page: 9, nslots: 2000, .. }));
    }
}
