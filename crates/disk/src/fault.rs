//! Deterministic fault injection for the disk substrate.
//!
//! A [`FaultPlan`] decides faults with a pure hash of (seed, fault kind,
//! operation, file, page, attempt) — never shared RNG state — so a given
//! plan injects exactly the same faults no matter how the I/O worker
//! threads interleave. Rates are expressed per 10,000 page operations.
//!
//! The plan models the failure taxonomy of real disks:
//!
//! * **transient errors** (`EINTR`-style) that clear after a few retries;
//! * **short reads** that return fewer bytes than a page;
//! * **torn writes** that persist only part of a page image — caught
//!   later by the header checksum, not at write time;
//! * **slow operations** that stall for a configured duration;
//! * **permanent errors** that fail every attempt.
//!
//! Every clone of a plan shares one [`IoStats`] block of atomic counters,
//! so injections and retries observed across reader/writer threads
//! aggregate into a single report.

use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use phj_storage::PAGE_SIZE;

/// Operation class a fault decision applies to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IoOp {
    /// A page read.
    Read,
    /// A page write.
    Write,
}

/// A fault chosen for one (file, page, attempt) event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fault {
    /// Fails with `io::ErrorKind::Interrupted`; clears after retries.
    Transient,
    /// The read returns fewer bytes than a page (`UnexpectedEof`);
    /// clears after retries.
    ShortRead,
    /// The written image is corrupted on its way to the file. The write
    /// itself "succeeds" — detection is the reader's job.
    TornWrite,
    /// The operation stalls for the plan's `slow_micros`, then succeeds.
    Slow,
    /// Fails with `io::ErrorKind::Other` on every attempt.
    Permanent,
}

/// Injection and retry counters shared by every clone of a [`FaultPlan`].
#[derive(Debug, Default)]
pub struct IoStats {
    /// Transient errors injected.
    pub injected_transient: AtomicU64,
    /// Short reads injected.
    pub injected_short: AtomicU64,
    /// Torn writes injected.
    pub injected_torn: AtomicU64,
    /// Slow operations injected.
    pub injected_slow: AtomicU64,
    /// Permanent errors injected.
    pub injected_permanent: AtomicU64,
    /// Read attempts repeated after a retryable failure.
    pub read_retries: AtomicU64,
    /// Write attempts repeated after a retryable failure.
    pub write_retries: AtomicU64,
    /// Microseconds of injected slow-disk stall.
    pub slow_stall_us: AtomicU64,
}

impl IoStats {
    /// Total faults injected across all kinds.
    pub fn total_injected(&self) -> u64 {
        self.injected_transient.load(Ordering::Relaxed)
            + self.injected_short.load(Ordering::Relaxed)
            + self.injected_torn.load(Ordering::Relaxed)
            + self.injected_slow.load(Ordering::Relaxed)
            + self.injected_permanent.load(Ordering::Relaxed)
    }

    /// Total read + write retries.
    pub fn total_retries(&self) -> u64 {
        self.read_retries.load(Ordering::Relaxed) + self.write_retries.load(Ordering::Relaxed)
    }

    fn bump(&self, fault: Fault) {
        let c = match fault {
            Fault::Transient => &self.injected_transient,
            Fault::ShortRead => &self.injected_short,
            Fault::TornWrite => &self.injected_torn,
            Fault::Slow => &self.injected_slow,
            Fault::Permanent => &self.injected_permanent,
        };
        c.fetch_add(1, Ordering::Relaxed);
        if let Some(m) = crate::telemetry::disk_metrics() {
            m.faults_injected.inc();
        }
    }
}

/// Bounded retry-with-backoff applied to page reads and writes.
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Maximum attempts per page operation (1 = no retries).
    pub max_attempts: u32,
    /// Backoff before the first retry, doubling each further retry.
    pub backoff_micros: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy { max_attempts: 4, backoff_micros: 50 }
    }
}

impl RetryPolicy {
    /// Backoff before retrying after failed attempt number `attempt`.
    pub fn backoff(&self, attempt: u32) -> Duration {
        Duration::from_micros(self.backoff_micros << attempt.min(6))
    }

    /// Whether an I/O error is worth retrying: interruptions, timeouts,
    /// and short reads clear on a repeat attempt; everything else
    /// (permission, bad descriptor, no space) will not.
    pub fn is_retryable(e: &std::io::Error) -> bool {
        matches!(
            e.kind(),
            std::io::ErrorKind::Interrupted
                | std::io::ErrorKind::WouldBlock
                | std::io::ErrorKind::TimedOut
                | std::io::ErrorKind::UnexpectedEof
        )
    }
}

/// A seeded, deterministic fault-injection schedule.
///
/// The default ([`FaultPlan::disabled`]) injects nothing and costs one
/// predictable branch per page operation, so the plan is threaded through
/// the I/O stack unconditionally rather than as an `Option`.
#[derive(Clone, Debug)]
pub struct FaultPlan {
    /// Seed mixed into every decision.
    pub seed: u64,
    /// Transient-error rate per 10,000 operations.
    pub transient_per_10k: u32,
    /// Short-read rate per 10,000 reads.
    pub short_per_10k: u32,
    /// Torn-write rate per 10,000 writes.
    pub torn_per_10k: u32,
    /// Slow-operation rate per 10,000 operations.
    pub slow_per_10k: u32,
    /// Permanent-error rate per 10,000 operations.
    pub permanent_per_10k: u32,
    /// Stall injected by each [`Fault::Slow`].
    pub slow_micros: u64,
    /// Attempt number at which transient faults stop firing (so a retry
    /// budget of at least this many attempts always clears them).
    pub clears_after: u32,
    stats: Arc<IoStats>,
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self::disabled()
    }
}

impl FaultPlan {
    /// A plan that injects nothing (the default for real runs).
    pub fn disabled() -> FaultPlan {
        Self::seeded(0)
    }

    /// An empty plan with a seed; add faults with the builder methods.
    pub fn seeded(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            transient_per_10k: 0,
            short_per_10k: 0,
            torn_per_10k: 0,
            slow_per_10k: 0,
            permanent_per_10k: 0,
            slow_micros: 200,
            clears_after: 2,
            stats: Arc::new(IoStats::default()),
        }
    }

    /// Inject transient errors at `per_10k` / 10,000 operations.
    pub fn transient(mut self, per_10k: u32) -> Self {
        self.transient_per_10k = per_10k;
        self
    }

    /// Inject short reads at `per_10k` / 10,000 reads.
    pub fn short_reads(mut self, per_10k: u32) -> Self {
        self.short_per_10k = per_10k;
        self
    }

    /// Inject torn writes at `per_10k` / 10,000 writes.
    pub fn torn_writes(mut self, per_10k: u32) -> Self {
        self.torn_per_10k = per_10k;
        self
    }

    /// Inject `micros`-long stalls at `per_10k` / 10,000 operations.
    pub fn slow(mut self, per_10k: u32, micros: u64) -> Self {
        self.slow_per_10k = per_10k;
        self.slow_micros = micros;
        self
    }

    /// Inject permanent errors at `per_10k` / 10,000 operations.
    pub fn permanent(mut self, per_10k: u32) -> Self {
        self.permanent_per_10k = per_10k;
        self
    }

    /// Whether any fault kind has a nonzero rate.
    pub fn is_active(&self) -> bool {
        self.transient_per_10k > 0
            || self.short_per_10k > 0
            || self.torn_per_10k > 0
            || self.slow_per_10k > 0
            || self.permanent_per_10k > 0
    }

    /// The counters shared by all clones of this plan.
    pub fn stats(&self) -> &IoStats {
        &self.stats
    }

    /// Stable per-file tag for fault decisions: hash of the file name
    /// only, so a plan reproduces across different temp directories.
    pub fn tag(path: &Path) -> u64 {
        let name = path.file_name().map(|n| n.to_string_lossy()).unwrap_or_default();
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in name.as_bytes() {
            h = (h ^ *b as u64).wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }

    /// Decide the fault (if any) for one page operation. Pure: the same
    /// arguments always give the same answer for the same plan.
    ///
    /// Precedence when several kinds fire at once: permanent, then
    /// transient/short (which clear after `clears_after` attempts), then
    /// torn writes, then slow. The decision is recorded in [`IoStats`]
    /// only on attempt-0-visible events, so counters reflect distinct
    /// injected faults rather than retry echoes.
    pub fn decide(&self, op: IoOp, tag: u64, page: u64, attempt: u32) -> Option<Fault> {
        if !self.is_active() {
            return None;
        }
        let fault = self.choose(op, tag, page, attempt)?;
        // Count on the first attempt only — a transient fault re-fired on
        // a retry is the same fault, not a new injection.
        if attempt == 0 {
            self.stats.bump(fault);
            // Flight-recorder code follows the Fault discriminant order
            // (transient=0 … permanent=4), mirrored by the postmortem
            // renderer's fault-name table.
            phj_flightrec::event(phj_flightrec::EventKind::Fault, fault as u16, page, tag);
            if fault == Fault::Slow {
                self.stats.slow_stall_us.fetch_add(self.slow_micros, Ordering::Relaxed);
                if let Some(m) = crate::telemetry::disk_metrics() {
                    m.stall_ns.add(self.slow_micros * 1_000);
                }
            }
        }
        Some(fault)
    }

    fn choose(&self, op: IoOp, tag: u64, page: u64, attempt: u32) -> Option<Fault> {
        if self.fires(Fault::Permanent, op, tag, page, self.permanent_per_10k) {
            return Some(Fault::Permanent);
        }
        // Transient kinds clear after `clears_after` attempts at the same
        // operation — that is what makes them transient.
        if attempt < self.clears_after {
            if self.fires(Fault::Transient, op, tag, page, self.transient_per_10k) {
                return Some(Fault::Transient);
            }
            if op == IoOp::Read
                && self.fires(Fault::ShortRead, op, tag, page, self.short_per_10k)
            {
                return Some(Fault::ShortRead);
            }
        }
        if op == IoOp::Write && self.fires(Fault::TornWrite, op, tag, page, self.torn_per_10k) {
            return Some(Fault::TornWrite);
        }
        if attempt == 0 && self.fires(Fault::Slow, op, tag, page, self.slow_per_10k) {
            return Some(Fault::Slow);
        }
        None
    }

    fn fires(&self, kind: Fault, op: IoOp, tag: u64, page: u64, per_10k: u32) -> bool {
        if per_10k == 0 {
            return false;
        }
        self.roll(kind, op, tag, page) % 10_000 < per_10k as u64
    }

    fn roll(&self, kind: Fault, op: IoOp, tag: u64, page: u64) -> u64 {
        let k = match kind {
            Fault::Transient => 1u64,
            Fault::ShortRead => 2,
            Fault::TornWrite => 3,
            Fault::Slow => 4,
            Fault::Permanent => 5,
        };
        let o = match op {
            IoOp::Read => 0u64,
            IoOp::Write => 1,
        };
        splitmix(self.seed ^ splitmix(tag ^ splitmix(page ^ splitmix((k << 8) | o))))
    }

    /// Apply a [`Fault::TornWrite`] to a page image. Two tear styles,
    /// chosen deterministically: losing the tail half of the write
    /// (header intact → checksum mismatch on read) or scrambling the
    /// header (structurally torn). Either way the reader's verification
    /// catches any tear that touched real data.
    pub fn corrupt_image(&self, tag: u64, page: u64, image: &mut [u8; PAGE_SIZE]) {
        if self.roll(Fault::TornWrite, IoOp::Write, tag, page) & (1 << 32) == 0 {
            for b in image[PAGE_SIZE / 2..].iter_mut() {
                *b = 0;
            }
        } else {
            image[0..4].copy_from_slice(&0xDEAD_FFFFu32.to_le_bytes());
        }
    }

    /// Parse a CLI fault-plan spec: comma-separated presets and
    /// `key=value` settings.
    ///
    /// Presets: `transient` (transient=60, short=40), `torn` (torn=50),
    /// `slow` (slow=300, slow-us=300), `none`. Keys: `seed`, `transient`,
    /// `short`, `torn`, `slow`, `permanent` (rates per 10k), `slow-us`,
    /// `clears-after`. Example: `transient,seed=42,torn=5`.
    pub fn parse(spec: &str) -> std::result::Result<FaultPlan, String> {
        let mut plan = FaultPlan::disabled();
        for token in spec.split(',').map(str::trim).filter(|t| !t.is_empty()) {
            match token.split_once('=') {
                None => match token {
                    "none" | "off" => plan = FaultPlan::seeded(plan.seed),
                    "transient" => {
                        plan.transient_per_10k = 60;
                        plan.short_per_10k = 40;
                    }
                    "torn" => plan.torn_per_10k = 50,
                    "slow" => {
                        plan.slow_per_10k = 300;
                        plan.slow_micros = 300;
                    }
                    other => {
                        return Err(format!(
                            "unknown fault preset '{other}' (expected transient, torn, slow, or none)"
                        ))
                    }
                },
                Some((key, value)) => {
                    let v: u64 = value
                        .parse()
                        .map_err(|_| format!("fault plan: '{key}={value}' is not a number"))?;
                    match key {
                        "seed" => plan.seed = v,
                        "transient" => plan.transient_per_10k = v as u32,
                        "short" => plan.short_per_10k = v as u32,
                        "torn" => plan.torn_per_10k = v as u32,
                        "slow" => plan.slow_per_10k = v as u32,
                        "permanent" => plan.permanent_per_10k = v as u32,
                        "slow-us" => plan.slow_micros = v,
                        "clears-after" => plan.clears_after = v as u32,
                        other => return Err(format!("unknown fault-plan key '{other}'")),
                    }
                }
            }
        }
        Ok(plan)
    }
}

fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_injects_nothing() {
        let plan = FaultPlan::disabled();
        for page in 0..10_000u64 {
            assert_eq!(plan.decide(IoOp::Read, 7, page, 0), None);
            assert_eq!(plan.decide(IoOp::Write, 7, page, 0), None);
        }
        assert_eq!(plan.stats().total_injected(), 0);
    }

    #[test]
    fn decisions_are_deterministic_and_order_independent() {
        let a = FaultPlan::seeded(42).transient(100).torn_writes(80).slow(50, 10);
        let b = FaultPlan::seeded(42).transient(100).torn_writes(80).slow(50, 10);
        let forward: Vec<_> =
            (0..5_000u64).map(|p| a.choose(IoOp::Write, 3, p, 0)).collect();
        let backward: Vec<_> =
            (0..5_000u64).rev().map(|p| b.choose(IoOp::Write, 3, p, 0)).collect();
        let backward: Vec<_> = backward.into_iter().rev().collect();
        assert_eq!(forward, backward);
        assert!(forward.iter().any(|f| f.is_some()));
    }

    #[test]
    fn different_seeds_differ() {
        let a = FaultPlan::seeded(1).transient(500);
        let b = FaultPlan::seeded(2).transient(500);
        let da: Vec<_> = (0..2_000u64).map(|p| a.choose(IoOp::Read, 0, p, 0)).collect();
        let db: Vec<_> = (0..2_000u64).map(|p| b.choose(IoOp::Read, 0, p, 0)).collect();
        assert_ne!(da, db);
    }

    #[test]
    fn rates_are_roughly_proportional() {
        let plan = FaultPlan::seeded(9).transient(1_000); // 10%
        let n = 20_000u64;
        let hits = (0..n)
            .filter(|&p| plan.choose(IoOp::Read, 11, p, 0) == Some(Fault::Transient))
            .count();
        let expect = n as usize / 10;
        assert!(hits > expect / 2 && hits < expect * 2, "{hits} vs ~{expect}");
    }

    #[test]
    fn transient_faults_clear_after_retries() {
        let plan = FaultPlan::seeded(5).transient(2_000).short_reads(2_000);
        for page in 0..5_000u64 {
            for op in [IoOp::Read, IoOp::Write] {
                let f = plan.choose(op, 1, page, plan.clears_after);
                assert!(
                    !matches!(f, Some(Fault::Transient) | Some(Fault::ShortRead)),
                    "page {page} still failing at attempt {}",
                    plan.clears_after
                );
            }
        }
    }

    #[test]
    fn permanent_faults_never_clear() {
        let plan = FaultPlan::seeded(6).permanent(2_000);
        let stuck: Vec<u64> = (0..2_000)
            .filter(|&p| plan.choose(IoOp::Write, 2, p, 0) == Some(Fault::Permanent))
            .collect();
        assert!(!stuck.is_empty());
        for p in stuck {
            for attempt in 1..8 {
                assert_eq!(plan.choose(IoOp::Write, 2, p, attempt), Some(Fault::Permanent));
            }
        }
    }

    #[test]
    fn short_reads_only_on_reads_torn_only_on_writes() {
        let plan = FaultPlan::seeded(8).short_reads(10_000).torn_writes(10_000);
        assert_eq!(plan.choose(IoOp::Read, 0, 1, 0), Some(Fault::ShortRead));
        assert_eq!(plan.choose(IoOp::Write, 0, 1, 0), Some(Fault::TornWrite));
    }

    #[test]
    fn corrupt_image_changes_bytes() {
        let plan = FaultPlan::seeded(3).torn_writes(10_000);
        let mut page = phj_storage::Page::new();
        page.insert(&[0x5A; 64], 1).unwrap();
        for pid in 0..8u64 {
            let mut img = *page.sealed_image();
            let orig = img;
            plan.corrupt_image(1, pid, &mut img);
            assert_ne!(&img[..], &orig[..], "tear must alter the image");
        }
    }

    #[test]
    fn stats_shared_across_clones() {
        let plan = FaultPlan::seeded(4).transient(10_000);
        let clone = plan.clone();
        assert_eq!(clone.decide(IoOp::Read, 0, 0, 0), Some(Fault::Transient));
        assert_eq!(plan.stats().injected_transient.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn parse_presets_and_keys() {
        let p = FaultPlan::parse("transient,seed=42,torn=5").unwrap();
        assert_eq!(p.seed, 42);
        assert_eq!(p.transient_per_10k, 60);
        assert_eq!(p.short_per_10k, 40);
        assert_eq!(p.torn_per_10k, 5);
        let q = FaultPlan::parse("slow,slow-us=750").unwrap();
        assert_eq!(q.slow_per_10k, 300);
        assert_eq!(q.slow_micros, 750);
        assert!(FaultPlan::parse("bogus").is_err());
        assert!(FaultPlan::parse("seed=abc").is_err());
        assert!(!FaultPlan::parse("none").unwrap().is_active());
    }

    #[test]
    fn tag_depends_on_file_name_not_directory() {
        let a = FaultPlan::tag(Path::new("/tmp/run1/spill.0"));
        let b = FaultPlan::tag(Path::new("/var/other/spill.0"));
        let c = FaultPlan::tag(Path::new("/tmp/run1/spill.1"));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
