//! Live-telemetry handles for the disk substrate.
//!
//! Gated on the process-global registry exactly like the executor's
//! instrumentation: when telemetry was never installed,
//! [`disk_metrics`] costs one atomic load and the I/O paths publish
//! nothing. These counters mirror [`IoStats`](crate::fault::IoStats) —
//! the per-plan atomics stay the report's source of truth; the registry
//! copies exist so the same signals are scrapeable *during* the run.

use std::sync::{Arc, OnceLock};

use phj_metrics::{names, Counter, Gauge};

/// Registered handles for the disk metric family.
pub(crate) struct DiskMetrics {
    /// `phj_disk_faults_injected_total` — injected faults, all kinds.
    pub faults_injected: Arc<Counter>,
    /// `phj_disk_read_retries_total` — repeated read attempts.
    pub read_retries: Arc<Counter>,
    /// `phj_disk_write_retries_total` — repeated write attempts.
    pub write_retries: Arc<Counter>,
    /// `phj_disk_stall_ns_total` — main-thread ns blocked on read-ahead
    /// plus injected slow-disk stall.
    pub stall_ns: Arc<Counter>,
    /// `phj_disk_bytes_read_total` — bytes read from stripe files.
    pub bytes_read: Arc<Counter>,
    /// `phj_disk_bytes_written_total` — bytes written to stripe files.
    pub bytes_written: Arc<Counter>,
    /// `phj_disk_degradation_depth` — deepest degradation-ladder step
    /// taken so far (high-water mark).
    pub degradation_depth: Arc<Gauge>,
}

/// The disk handles, or `None` when telemetry is off.
pub(crate) fn disk_metrics() -> Option<&'static DiskMetrics> {
    static CACHE: OnceLock<DiskMetrics> = OnceLock::new();
    let reg = phj_metrics::global()?;
    Some(CACHE.get_or_init(|| DiskMetrics {
        faults_injected: reg
            .counter(names::DISK_FAULTS, "Disk faults injected (all kinds)"),
        read_retries: reg
            .counter(names::DISK_READ_RETRIES, "Page read attempts repeated after retryable failures"),
        write_retries: reg
            .counter(names::DISK_WRITE_RETRIES, "Page write attempts repeated after retryable failures"),
        stall_ns: reg
            .counter(names::DISK_STALL_NS, "Main-thread ns blocked on read-ahead or injected slow disks"),
        bytes_read: reg.counter(names::DISK_BYTES_READ, "Bytes read from stripe files"),
        bytes_written: reg.counter(names::DISK_BYTES_WRITTEN, "Bytes written to stripe files"),
        degradation_depth: reg
            .gauge(names::DISK_DEGRADATION_DEPTH, "Deepest degradation-ladder step taken (high-water)"),
    }))
}
