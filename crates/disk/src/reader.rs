//! Background read-ahead: the buffer manager's I/O prefetching.
//!
//! §7.2: "Our buffer manager has a dedicated worker thread for each of
//! the disks, which performs I/O operations on behalf of the main hash
//! join thread. The buffer manager implements I/O prefetching [...] so
//! that I/O operations can be overlapped with computations as much as
//! possible."
//!
//! One worker thread per stripe file reads its pages in global page
//! order and sends them into a bounded channel (the read-ahead window).
//! [`SequentialReader::next_page`] reassembles global order by pulling
//! from the per-stripe queues round-robin (pages are striped, so global
//! order interleaves stripe units). Time spent blocked on a queue is the
//! main thread's I/O stall, as plotted in Fig 9.

use std::sync::mpsc::{Receiver, SyncSender};
use std::thread::JoinHandle;
use std::time::Instant;

use phj_storage::Page;

use crate::error::{PhjError, Result};
use crate::stripe::StripeSet;

type PageMsg = Result<(u64, Page)>;

/// A streaming scan with background prefetching.
pub struct SequentialReader {
    stripes: StripeSet,
    rx: Vec<Receiver<PageMsg>>,
    workers: Vec<JoinHandle<()>>,
    next_page: u64,
    end_page: u64,
    stall: f64,
}

impl SequentialReader {
    /// Start worker threads scanning pages `[start, end)` with a total
    /// read-ahead window of `read_ahead` pages (split across stripes).
    pub fn start(stripes: StripeSet, start: u64, end: u64, read_ahead: usize) -> Self {
        let n = stripes.num_stripes();
        let per_stripe = (read_ahead / n).max(1);
        let mut rx = Vec::with_capacity(n);
        let mut workers = Vec::with_capacity(n);
        for s in 0..n {
            let (tx, r) = std::sync::mpsc::sync_channel::<PageMsg>(per_stripe);
            rx.push(r);
            let stripes = stripes.clone();
            workers.push(std::thread::spawn(move || {
                worker(stripes, s, start, end, tx);
            }));
        }
        SequentialReader { stripes, rx, workers, next_page: start, end_page: end, stall: 0.0 }
    }

    /// The next page in global order, or `None` at end of scan. Blocks
    /// (accounted as stall time) if the workers haven't fetched it yet.
    ///
    /// Pages arrive already verified against their header checksum; a
    /// torn or corrupted page surfaces here as a typed [`PhjError`]
    /// naming the stripe file and page.
    pub fn next_page(&mut self) -> Result<Option<Page>> {
        if self.next_page >= self.end_page {
            return Ok(None);
        }
        let stripe = self.stripes.stripe_of(self.next_page);
        let t0 = Instant::now();
        let msg = self.rx[stripe]
            .recv()
            .map_err(|_| PhjError::WorkerLost { what: "read-ahead" })?;
        let waited = t0.elapsed();
        self.stall += waited.as_secs_f64();
        if let Some(m) = crate::telemetry::disk_metrics() {
            m.stall_ns.add(waited.as_nanos() as u64);
        }
        let (page_id, page) = msg?;
        debug_assert_eq!(page_id, self.next_page, "stripe stream out of order");
        self.next_page += 1;
        Ok(Some(page))
    }

    /// Seconds the main thread spent blocked waiting for pages.
    pub fn stall_seconds(&self) -> f64 {
        self.stall
    }
}

impl Drop for SequentialReader {
    fn drop(&mut self) {
        // Drain receivers so workers unblock, then join them.
        for r in &self.rx {
            while r.try_recv().is_ok() {}
        }
        self.rx.clear();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// One stripe's worker: read this stripe's pages of `[start, end)` in
/// order through the verified path (fault injection, retries, checksum),
/// pushing into the bounded channel.
fn worker(stripes: StripeSet, stripe: usize, start: u64, end: u64, tx: SyncSender<PageMsg>) {
    for page in start..end {
        if stripes.stripe_of(page) != stripe {
            continue;
        }
        let msg = stripes.read_page_verified(page).map(|pg| (page, pg));
        let failed = msg.is_err();
        if tx.send(msg).is_err() || failed {
            return; // reader dropped, or error delivered
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir()
            .join(format!("phj-reader-test-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn write_pages(s: &StripeSet, n: u64) {
        for p in 0..n {
            let mut page = Page::new();
            page.insert(&(p as u32).to_le_bytes(), p as u32).unwrap();
            s.write_page(p, &page.sealed_image()).unwrap();
        }
    }

    #[test]
    fn reads_in_global_order() {
        let dir = temp_dir("order");
        let s = StripeSet::create(&dir, "t", 3, 2).unwrap();
        write_pages(&s, 25);
        let mut r = SequentialReader::start(s, 0, 25, 8);
        for p in 0..25u64 {
            let page = r.next_page().unwrap().expect("page present");
            assert_eq!(page.hash_code(0), p as u32);
        }
        assert!(r.next_page().unwrap().is_none());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn early_drop_does_not_hang() {
        let dir = temp_dir("drop");
        let s = StripeSet::create(&dir, "t", 2, 1).unwrap();
        write_pages(&s, 50);
        let mut r = SequentialReader::start(s, 0, 50, 4);
        let _ = r.next_page().unwrap();
        drop(r); // must join workers without deadlock
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn partial_range_scan() {
        let dir = temp_dir("range");
        let s = StripeSet::create(&dir, "t", 2, 2).unwrap();
        write_pages(&s, 20);
        let mut r = SequentialReader::start(s, 6, 14, 4);
        let mut got = Vec::new();
        while let Some(p) = r.next_page().unwrap() {
            got.push(p.hash_code(0));
        }
        assert_eq!(got, (6..14).map(|x| x as u32).collect::<Vec<_>>());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn scan_survives_transient_faults() {
        use crate::fault::{FaultPlan, RetryPolicy};
        let dir = temp_dir("faulty");
        let plan = FaultPlan::seeded(21).transient(3_000).short_reads(2_000);
        let s = StripeSet::create(&dir, "t", 3, 2).unwrap();
        write_pages(&s, 30);
        let s = s.with_faults(plan.clone(), RetryPolicy { max_attempts: 4, backoff_micros: 1 });
        let mut r = SequentialReader::start(s, 0, 30, 8);
        for p in 0..30u64 {
            assert_eq!(r.next_page().unwrap().unwrap().hash_code(0), p as u32);
        }
        assert!(plan.stats().read_retries.load(std::sync::atomic::Ordering::Relaxed) > 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupted_page_surfaces_as_typed_error() {
        let dir = temp_dir("corrupt");
        let s = StripeSet::create(&dir, "t", 2, 1).unwrap();
        write_pages(&s, 10);
        // Flip one byte in the data area of page 4's on-disk image.
        let mut img = s.read_page(4).unwrap();
        img[phj_storage::PAGE_SIZE - 3] ^= 0x10;
        s.write_page(4, &img).unwrap();
        let mut r = SequentialReader::start(s, 0, 10, 4);
        let mut err = None;
        for _ in 0..10 {
            match r.next_page() {
                Ok(Some(_)) => {}
                Ok(None) => break,
                Err(e) => {
                    err = Some(e);
                    break;
                }
            }
        }
        let err = err.expect("corruption must surface");
        match err {
            crate::error::PhjError::ChecksumMismatch { page, .. } => assert_eq!(page, 4),
            other => panic!("expected checksum mismatch, got {other}"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
