//! Relation description files.
//!
//! §7.1: "Schemas and statistics are kept in separate description files
//! for simplicity, the latter of which are used by the hash join
//! algorithms to compute numbers of partitions and hash table sizes."
//! A [`FileRelation`]'s description lives next to its stripe files as
//! `<name>.desc`, a small line-oriented text format (no serialization
//! dependency needed):
//!
//! ```text
//! phj-relation v1
//! stripes 6
//! stripe_pages 32
//! pages 1234
//! tuples 92550
//! key 0
//! attr key u32
//! attr payload bytes 96
//! ```

use std::io::{self, Write};
use std::path::Path;

use phj_storage::{AttrType, Attribute, Schema};

use crate::stripe::StripeSet;
use crate::FileRelation;

/// Serialize a schema + stats into the description format.
pub fn describe(
    schema: &Schema,
    num_stripes: usize,
    stripe_pages: u64,
    pages: u64,
    tuples: u64,
) -> String {
    let mut s = String::new();
    s.push_str("phj-relation v1\n");
    s.push_str(&format!("stripes {num_stripes}\n"));
    s.push_str(&format!("stripe_pages {stripe_pages}\n"));
    s.push_str(&format!("pages {pages}\n"));
    s.push_str(&format!("tuples {tuples}\n"));
    s.push_str(&format!("key {}\n", schema.key_index()));
    for a in schema.attrs() {
        let ty = match a.ty {
            AttrType::U32 => "u32".to_string(),
            AttrType::U64 => "u64".to_string(),
            AttrType::I64 => "i64".to_string(),
            AttrType::F64 => "f64".to_string(),
            AttrType::FixedBytes(w) => format!("bytes {w}"),
            AttrType::VarBytes => "varbytes".to_string(),
        };
        s.push_str(&format!("attr {} {}\n", a.name, ty));
    }
    s
}

/// Parsed description.
pub struct Description {
    /// The relation's schema.
    pub schema: Schema,
    /// Stripe files.
    pub num_stripes: usize,
    /// Stripe unit in pages.
    pub stripe_pages: u64,
    /// Page count.
    pub pages: u64,
    /// Tuple count.
    pub tuples: u64,
}

/// Parse a description file's contents.
pub fn parse(text: &str) -> Result<Description, String> {
    let mut lines = text.lines();
    let header = lines.next().ok_or("empty description")?;
    if header != "phj-relation v1" {
        return Err(format!("unknown description header `{header}`"));
    }
    let mut num_stripes = None;
    let mut stripe_pages = None;
    let mut pages = None;
    let mut tuples = None;
    let mut key = None;
    let mut attrs: Vec<Attribute> = Vec::new();
    for (ln, line) in lines.enumerate() {
        let mut parts = line.split_whitespace();
        let Some(tag) = parts.next() else { continue };
        let mut num = |name: &str| -> Result<u64, String> {
            parts
                .next()
                .ok_or_else(|| format!("line {}: {name} needs a value", ln + 2))?
                .parse()
                .map_err(|_| format!("line {}: bad {name}", ln + 2))
        };
        match tag {
            "stripes" => num_stripes = Some(num("stripes")? as usize),
            "stripe_pages" => stripe_pages = Some(num("stripe_pages")?),
            "pages" => pages = Some(num("pages")?),
            "tuples" => tuples = Some(num("tuples")?),
            "key" => key = Some(num("key")? as usize),
            "attr" => {
                let name = parts.next().ok_or("attr needs a name")?.to_string();
                let ty = match parts.next().ok_or("attr needs a type")? {
                    "u32" => AttrType::U32,
                    "u64" => AttrType::U64,
                    "i64" => AttrType::I64,
                    "f64" => AttrType::F64,
                    "varbytes" => AttrType::VarBytes,
                    "bytes" => {
                        let w: u16 = parts
                            .next()
                            .ok_or("bytes needs a width")?
                            .parse()
                            .map_err(|_| "bad bytes width")?;
                        AttrType::FixedBytes(w)
                    }
                    other => return Err(format!("unknown attr type `{other}`")),
                };
                attrs.push(Attribute::new(name, ty));
            }
            other => return Err(format!("unknown tag `{other}`")),
        }
    }
    if attrs.is_empty() {
        return Err("description has no attributes".into());
    }
    let key = key.ok_or("missing key")?;
    if key >= attrs.len() {
        return Err(format!("key index {key} out of range"));
    }
    Ok(Description {
        schema: Schema::new(attrs, key),
        num_stripes: num_stripes.ok_or("missing stripes")? ,
        stripe_pages: stripe_pages.ok_or("missing stripe_pages")?,
        pages: pages.ok_or("missing pages")?,
        tuples: tuples.ok_or("missing tuples")?,
    })
}

impl FileRelation {
    /// Write the relation's description file (`<name>.desc`).
    pub fn write_description(&self, dir: &Path, name: &str) -> io::Result<()> {
        let text = describe(
            self.schema(),
            self.stripe_paths().len(),
            self.stripe_pages(),
            self.num_pages(),
            self.num_tuples(),
        );
        let mut f = std::fs::File::create(dir.join(format!("{name}.desc")))?;
        f.write_all(text.as_bytes())
    }

    /// Reopen a relation from its description and stripe files.
    pub fn open(dir: &Path, name: &str) -> io::Result<FileRelation> {
        let text = std::fs::read_to_string(dir.join(format!("{name}.desc")))?;
        let d = parse(&text).map_err(io::Error::other)?;
        let stripes = StripeSet::open(dir, name, d.num_stripes, d.stripe_pages)?;
        Ok(FileRelation::from_parts(d.schema, stripes, d.pages, d.tuples))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_schema() -> Schema {
        Schema::new(
            vec![
                Attribute::new("key", AttrType::U32),
                Attribute::new("name", AttrType::VarBytes),
                Attribute::new("pad", AttrType::FixedBytes(17)),
                Attribute::new("qty", AttrType::I64),
            ],
            0,
        )
    }

    #[test]
    fn describe_parse_roundtrip() {
        let schema = sample_schema();
        let text = describe(&schema, 6, 32, 1234, 92550);
        let d = parse(&text).unwrap();
        assert_eq!(d.schema, schema);
        assert_eq!(d.num_stripes, 6);
        assert_eq!(d.stripe_pages, 32);
        assert_eq!(d.pages, 1234);
        assert_eq!(d.tuples, 92550);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("not-a-relation").is_err());
        assert!(parse("phj-relation v1\nstripes x\n").is_err());
        assert!(parse("phj-relation v1\nstripes 2\nstripe_pages 1\npages 0\ntuples 0\nkey 5\nattr k u32\n").is_err());
        assert!(parse("phj-relation v1\nstripes 2\nstripe_pages 1\npages 0\ntuples 0\nkey 0\n").is_err());
        assert!(parse("phj-relation v1\nwhat 3\n").is_err());
    }

    #[test]
    fn file_relation_open_roundtrip() {
        use phj_storage::RelationBuilder;
        let dir = std::env::temp_dir()
            .join(format!("phj-catalog-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let schema = Schema::key_payload(32);
        let mut b = RelationBuilder::new(schema);
        let mut t = [0u8; 32];
        for i in 0..2000u32 {
            t[..4].copy_from_slice(&i.to_le_bytes());
            b.push_hashed(&t, i);
        }
        let rel = b.finish();
        let fr = FileRelation::create(&dir, "cat", &rel, 3, 4).unwrap();
        fr.write_description(&dir, "cat").unwrap();
        // Reopen and verify contents.
        let reopened = FileRelation::open(&dir, "cat").unwrap();
        assert_eq!(reopened.num_tuples(), 2000);
        assert_eq!(reopened.schema(), rel.schema());
        assert_eq!(reopened.load().unwrap().to_tuple_vec(), rel.to_tuple_vec());
        std::fs::remove_dir_all(&dir).ok();
    }
}
