//! GRACE hash join over file relations — the disk-oriented execution the
//! paper's real-machine experiments run (§7.2), with real files, real
//! background I/O threads, and a graceful-degradation ladder for when the
//! memory-budget estimate turns out wrong.
//!
//! The partition phase streams each input relation through a
//! [`crate::SequentialReader`] (background read-ahead), routes tuples into
//! per-partition output buffer pages, and spills full pages through a
//! [`BackgroundWriter`] into a striped spill file, recording which spill
//! pages belong to which partition. The join phase loads each partition
//! pair back into memory and runs any in-memory join scheme; output
//! pages stream to disk through another background writer.
//!
//! **Degradation ladder.** A build partition larger than the memory
//! budget (skew, or an under-estimated partition count) does not abort
//! and does not silently thrash:
//!
//! 1. *Recursive repartition* — the oversized partition is re-partitioned
//!    on disk with a different hash seed ([`phj::hash::hash_key_seeded`]),
//!    up to [`DiskGraceConfig::max_repartition_depth`] levels deep. The
//!    sub-spill pages keep the original seed-0 stashed hash codes, so the
//!    join phase's stored-hash optimization stays correct.
//! 2. *Block nested-loop fallback* — when repartitioning stops helping
//!    (all tuples share one key) or the depth bound is hit, the partition
//!    is joined in build chunks of at most the memory budget, streaming
//!    the probe side past each chunk.
//! 3. *Typed failure* — with the fallback disabled, the join returns
//!    [`PhjError::PartitionOverflow`] instead of a wrong answer.
//!
//! Every step is recorded as a [`DegradationEvent`] in the report, and
//! the report carries an order-insensitive result checksum so a degraded
//! run can be verified against a fault-free one without loading the
//! output.

use std::path::{Path, PathBuf};
use std::sync::atomic::Ordering;
use std::sync::mpsc::{Receiver, SyncSender};
use std::time::Instant;

use phj::join::{dispatch_build, dispatch_probe, join_pair, JoinParams, JoinScheme};
use phj::sink::{CountSink, JoinSink};
use phj::table::HashTable;
use phj::{hash, plan};
use phj_memsim::{MemoryModel, NativeModel};
use phj_obs::{self as obs, Recorder};
use phj_storage::{
    tuple::key_bytes_of, tuple::materialize_join_output, Page, Relation, Schema, PAGE_SIZE,
};

use crate::error::{PhjError, Result};
use crate::fault::{FaultPlan, RetryPolicy};
use crate::stripe::StripeSet;
use crate::writer::BackgroundWriter;
use crate::FileRelation;

/// Which disk-join execution strategy to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DiskJoinMode {
    /// Classic GRACE: partition everything to disk, then join pairs.
    /// The budget is static for the whole run.
    #[default]
    Grace,
    /// Hybrid: keep as many build partitions memory-resident as the
    /// budget allows, join their probe tuples on the fly, and spill
    /// largest-first victims when residency outgrows the budget. The
    /// budget is still static.
    Hybrid,
    /// Hybrid plus runtime adaptation: the budget is a [`LiveBudget`]
    /// the grantor may shrink mid-run (victims spill at the next safe
    /// point) or raise (spilled partitions re-absorb at the next phase
    /// boundary).
    ///
    /// [`LiveBudget`]: crate::budget::LiveBudget
    Dynamic,
}

impl DiskJoinMode {
    /// Stable label (CLI flag value, bench rows, report keys).
    pub fn label(self) -> &'static str {
        match self {
            DiskJoinMode::Grace => "grace",
            DiskJoinMode::Hybrid => "hybrid",
            DiskJoinMode::Dynamic => "dynamic",
        }
    }

    /// Inverse of [`DiskJoinMode::label`].
    pub fn parse(s: &str) -> Option<DiskJoinMode> {
        match s {
            "grace" => Some(DiskJoinMode::Grace),
            "hybrid" => Some(DiskJoinMode::Hybrid),
            "dynamic" => Some(DiskJoinMode::Dynamic),
            _ => None,
        }
    }
}

/// Configuration for the on-disk GRACE join.
#[derive(Debug, Clone)]
pub struct DiskGraceConfig {
    /// Join-phase memory budget (build partition size), as in §7.1.
    pub mem_budget: usize,
    /// Stripe files per relation (the paper's "disks"; 6 in §7.2).
    pub num_stripes: usize,
    /// Stripe unit in pages (256 KB = 32 pages of 8 KB in §7.2).
    pub stripe_pages: u64,
    /// Read-ahead window in pages.
    pub read_ahead: usize,
    /// Background-writer in-flight window in pages.
    pub write_window: usize,
    /// In-memory join scheme for each partition pair.
    pub join_scheme: JoinScheme,
    /// Working directory for spill and output files.
    pub dir: PathBuf,
    /// Fault plan injected into every spill/output stripe set (the
    /// *input* relations carry their own plan; see
    /// [`FileRelation::set_faults`]). Disabled by default.
    pub fault: FaultPlan,
    /// Retry policy for every page read/write.
    pub retry: RetryPolicy,
    /// How many levels of recursive reseeded repartitioning to try for
    /// an oversized build partition before falling back.
    pub max_repartition_depth: u32,
    /// Whether to fall back to a streaming block nested-loop join when
    /// repartitioning cannot shrink a partition under the budget. With
    /// this off, such a partition is a [`PhjError::PartitionOverflow`].
    pub nlj_fallback: bool,
    /// Query id stamped (full u64, payload `a`) on the flight-recorder
    /// `Grant` event this run journals, so a host multiplexing several
    /// joins through one journal (the query daemon tags by query id)
    /// can tell the grants apart. 0 for standalone runs.
    pub grant_tag: u64,
    /// Execution strategy; [`DiskJoinMode::Grace`] preserves the
    /// classic partition-everything behavior exactly.
    pub mode: DiskJoinMode,
    /// Revocable budget for [`DiskJoinMode::Dynamic`]. When `None`, a
    /// fixed [`LiveBudget`](crate::budget::LiveBudget) is created from
    /// `mem_budget`; a host that wants to shrink the run mid-flight
    /// (the query daemon's admission table) installs a shared one here.
    pub live_budget: Option<std::sync::Arc<crate::budget::LiveBudget>>,
}

impl DiskGraceConfig {
    /// Paper-shaped defaults under `dir`.
    pub fn new(dir: &Path) -> Self {
        DiskGraceConfig {
            mem_budget: 50 << 20,
            num_stripes: 6,
            stripe_pages: 32,
            read_ahead: 256,
            write_window: 256,
            join_scheme: JoinScheme::Group { g: 16 },
            dir: dir.to_path_buf(),
            fault: FaultPlan::disabled(),
            retry: RetryPolicy::default(),
            max_repartition_depth: 2,
            nlj_fallback: true,
            grant_tag: 0,
            mode: DiskJoinMode::Grace,
            live_budget: None,
        }
    }
}

/// One degradation step taken for an oversized build partition.
#[derive(Debug, Clone)]
pub struct DegradationEvent {
    /// Hierarchical partition label: `"3"` at the top level, `"3.1"` for
    /// sub-partition 1 of a depth-1 repartition of partition 3, …
    pub partition: String,
    /// Repartition depth at which the step was taken (0 = top level).
    pub depth: u32,
    /// Size of the oversized build partition in bytes (whole pages).
    pub bytes: u64,
    /// The memory budget it failed to fit — the *live* budget at the
    /// time of the event, which under [`DiskJoinMode::Dynamic`] may be
    /// smaller than the configured `mem_budget` if the grantor shrank
    /// the run. Robustness curves and `phj explain` attribute spills
    /// from this pair.
    pub budget: u64,
    /// What the engine did about it.
    pub kind: DegradationKind,
}

/// What the degradation ladder did at one step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DegradationKind {
    /// Re-partitioned on disk with a fresh hash seed into `fanout`
    /// sub-partitions.
    Repartition {
        /// Number of sub-partitions.
        fanout: usize,
        /// Hash seed used for the re-partitioning.
        seed: u32,
    },
    /// Joined via streaming block nested-loop in `chunks` build chunks.
    NljFallback {
        /// Number of build chunks (each at most the memory budget).
        chunks: usize,
    },
}

impl std::fmt::Display for DegradationEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.kind {
            DegradationKind::Repartition { fanout, seed } => write!(
                f,
                "partition {} ({} B > budget {} B): repartitioned x{fanout} with seed {seed} at depth {}",
                self.partition, self.bytes, self.budget, self.depth
            ),
            DegradationKind::NljFallback { chunks } => write!(
                f,
                "partition {} ({} B > budget {} B): block nested-loop fallback in {chunks} chunk(s) at depth {}",
                self.partition, self.bytes, self.budget, self.depth
            ),
        }
    }
}

/// Which way a partition crossed the memory/disk boundary mid-run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransitionKind {
    /// A resident partition was evicted (largest-first victim) because
    /// residency outgrew the live budget.
    SpillVictim,
    /// A spilled partition was re-absorbed into memory after the live
    /// budget freed up between phases.
    Absorb,
}

impl TransitionKind {
    /// Stable label (report rows, CLI logs).
    pub fn label(self) -> &'static str {
        match self {
            TransitionKind::SpillVictim => "spill_victim",
            TransitionKind::Absorb => "absorb",
        }
    }
}

/// One residency transition taken by the hybrid/dynamic join, with the
/// partition's byte size and the live budget at the moment of the
/// decision — the attribution trail for robustness curves.
#[derive(Debug, Clone)]
pub struct MemTransition {
    /// Top-level partition index.
    pub partition: usize,
    /// Bytes the partition held when the transition fired.
    pub bytes: u64,
    /// The live budget at that moment.
    pub budget: u64,
    /// Eviction or re-absorption.
    pub kind: TransitionKind,
    /// Phase during which it happened (`"build"`, `"absorb"`, `"probe"`).
    pub phase: &'static str,
}

impl std::fmt::Display for MemTransition {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.kind {
            TransitionKind::SpillVictim => write!(
                f,
                "partition {} ({} B) spilled as pressure victim during {} (live budget {} B)",
                self.partition, self.bytes, self.phase, self.budget
            ),
            TransitionKind::Absorb => write!(
                f,
                "partition {} ({} B) re-absorbed during {} (live budget {} B)",
                self.partition, self.bytes, self.phase, self.budget
            ),
        }
    }
}

/// Timing and outcome of an on-disk GRACE run.
#[derive(Debug)]
pub struct DiskGraceReport {
    /// The join output, on disk.
    pub output: FileRelation,
    /// Number of top-level partitions.
    pub num_partitions: usize,
    /// Wall-clock seconds for the partition phase.
    pub partition_s: f64,
    /// Wall-clock seconds for the join phase.
    pub join_s: f64,
    /// Seconds the main thread blocked waiting for input pages (the
    /// Fig-9 "main thread stall").
    pub input_stall_s: f64,
    /// Matches produced.
    pub matches: u64,
    /// Order-insensitive checksum over the emitted (build, probe) pairs —
    /// equal joins produce equal checksums regardless of partition
    /// order, degradation path, or faults survived along the way.
    pub checksum: u64,
    /// Degradation steps taken for oversized partitions (empty on a
    /// well-budgeted run).
    pub degradation: Vec<DegradationEvent>,
    /// Read attempts repeated after retryable failures.
    pub read_retries: u64,
    /// Write attempts repeated after retryable failures.
    pub write_retries: u64,
    /// Faults injected by the run's fault plans (input + spill/output).
    pub faults_injected: u64,
    /// Microseconds of injected slow-disk stall.
    pub slow_stall_us: u64,
    /// Residency transitions (victim spills, re-absorptions) the
    /// hybrid/dynamic modes took; empty for classic GRACE.
    pub transitions: Vec<MemTransition>,
    /// Build partitions still memory-resident when the probe pass
    /// ended (0 for classic GRACE — it spills everything up front).
    pub resident_partitions: usize,
    /// The live budget when the run finished (equals `mem_budget`
    /// unless a grantor resized the run).
    pub final_budget: u64,
}

/// One relation partitioned into a spill file: which spill pages belong
/// to each partition.
pub(crate) struct Spilled {
    pub(crate) stripes: StripeSet,
    pub(crate) part_pages: Vec<Vec<u64>>,
    pub(crate) part_tuples: Vec<u64>,
}

/// Routes tuples into per-partition buffer pages and spills sealed full
/// pages through a background writer — shared by the top-level partition
/// phase and recursive repartitioning.
pub(crate) struct SpillBuilder {
    pub(crate) stripes: StripeSet,
    pub(crate) writer: BackgroundWriter,
    pub(crate) bufs: Vec<Page>,
    pub(crate) part_pages: Vec<Vec<u64>>,
    pub(crate) part_tuples: Vec<u64>,
    pub(crate) next_page: u64,
}

impl SpillBuilder {
    pub(crate) fn new(cfg: &DiskGraceConfig, name: &str, p: usize) -> Result<SpillBuilder> {
        let stripes = StripeSet::create(&cfg.dir, name, cfg.num_stripes, cfg.stripe_pages)
            .map_err(|e| PhjError::io(cfg.dir.join(name), e))?
            .with_faults(cfg.fault.clone(), cfg.retry);
        let writer = BackgroundWriter::start(stripes.clone(), cfg.write_window);
        Ok(SpillBuilder {
            stripes,
            writer,
            bufs: (0..p).map(|_| Page::new()).collect(),
            part_pages: vec![Vec::new(); p],
            part_tuples: vec![0; p],
            next_page: 0,
        })
    }

    /// Append `tuple` to partition `part`, stashing `hash` in its slot.
    pub(crate) fn push(&mut self, part: usize, tuple: &[u8], hash: u32) -> Result<()> {
        if !self.bufs[part].fits(tuple.len()) {
            self.part_pages[part].push(self.next_page);
            self.writer.write(self.next_page, self.bufs[part].sealed_image())?;
            self.next_page += 1;
            self.bufs[part].reset();
            // Per-page spill marks are full-mode only: one per sealed page
            // would dominate the ring at phase granularity.
            phj_flightrec::event_full(
                phj_flightrec::EventKind::Spill,
                part.min(u16::MAX as usize) as u16,
                self.part_pages[part].len() as u64,
                self.part_tuples[part],
            );
        }
        self.bufs[part]
            .insert(tuple, hash)
            .ok_or(PhjError::TupleTooLarge { bytes: tuple.len() })?;
        self.part_tuples[part] += 1;
        Ok(())
    }

    /// Flush partial buffer pages and stop the writer.
    pub(crate) fn finish(mut self) -> Result<Spilled> {
        for (part, buf) in self.bufs.iter().enumerate() {
            if buf.nslots() > 0 {
                self.part_pages[part].push(self.next_page);
                self.writer.write(self.next_page, buf.sealed_image())?;
                self.next_page += 1;
            }
        }
        self.writer.finish()?;
        // One flush mark per spill file: a = total pages written, b =
        // total tuples routed.
        phj_flightrec::event(
            phj_flightrec::EventKind::Flush,
            self.part_pages.len().min(u16::MAX as usize) as u16,
            self.next_page,
            self.part_tuples.iter().sum(),
        );
        Ok(Spilled {
            stripes: self.stripes,
            part_pages: self.part_pages,
            part_tuples: self.part_tuples,
        })
    }
}

/// Partition a file relation into `p` partitions within a fresh spill
/// file. Returns the spill map and the reader's stall time.
fn partition_to_spill(
    cfg: &DiskGraceConfig,
    input: &FileRelation,
    name: &str,
    p: usize,
) -> Result<(Spilled, f64)> {
    let mut sb = SpillBuilder::new(cfg, name, p)?;
    let schema = input.schema().clone();
    let mut scan = input.scan(cfg.read_ahead);
    while let Some(page) = scan.next_page()? {
        for (_, tuple, _) in page.iter() {
            let h = hash::hash_key(key_bytes_of(&schema, tuple));
            sb.push(hash::partition_of(h, p), tuple, h)?;
        }
    }
    Ok((sb.finish()?, scan.stall_seconds()))
}

/// Re-partition one oversized partition of `parent` into `fanout`
/// sub-partitions, routing by the `seed`-reseeded key hash. The stashed
/// hash codes written to the sub-spill pages are the *original* seed-0
/// codes, so the join phase's `use_stored_hash` bucketing stays valid.
fn repartition_spill(
    cfg: &DiskGraceConfig,
    schema: &Schema,
    parent: &Spilled,
    part: usize,
    name: &str,
    fanout: usize,
    seed: u32,
) -> Result<Spilled> {
    let mut sb = SpillBuilder::new(cfg, name, fanout)?;
    for &pid in &parent.part_pages[part] {
        let page = parent.stripes.read_page_verified(pid)?;
        for (_, tuple, stash) in page.iter() {
            let route = hash::hash_key_seeded(key_bytes_of(schema, tuple), seed);
            sb.push(hash::partition_of(route, fanout), tuple, stash)?;
        }
    }
    sb.finish()
}

/// Load one partition's pages from the spill file into memory, with a
/// single background prefetch worker streaming the page list. Pages
/// arrive checksum-verified.
pub(crate) fn load_partition(
    spill: &Spilled,
    part: usize,
    schema: &Schema,
    window: usize,
) -> Result<Relation> {
    let pages = &spill.part_pages[part];
    let mut rel = Relation::new(schema.clone());
    if pages.is_empty() {
        return Ok(rel);
    }
    type Msg = Result<Page>;
    let (tx, rx): (SyncSender<Msg>, Receiver<Msg>) =
        std::sync::mpsc::sync_channel(window.max(1));
    let stripes = spill.stripes.clone();
    let list = pages.clone();
    let worker = std::thread::spawn(move || {
        for pid in list {
            let msg = stripes.read_page_verified(pid);
            let failed = msg.is_err();
            if tx.send(msg).is_err() || failed {
                return;
            }
        }
    });
    let mut result = Ok(());
    for _ in 0..pages.len() {
        match rx.recv() {
            Ok(Ok(page)) => rel.push_page(page),
            Ok(Err(e)) => {
                result = Err(e);
                break;
            }
            Err(_) => {
                result = Err(PhjError::WorkerLost { what: "partition prefetch" });
                break;
            }
        }
    }
    drop(rx);
    let _ = worker.join();
    result.map(|()| rel)
}

/// Streams join output pages to disk as they fill, keeping an
/// order-insensitive checksum of the emitted pairs. Errors inside the
/// sink (the `JoinSink` trait is infallible) stick and surface after the
/// partition pair completes.
pub(crate) struct DiskSink {
    pub(crate) build_schema: Schema,
    pub(crate) probe_schema: Schema,
    pub(crate) writer: BackgroundWriter,
    pub(crate) page: Page,
    pub(crate) next_page: u64,
    pub(crate) buf: Vec<u8>,
    pub(crate) tuples: u64,
    pub(crate) count: CountSink,
    pub(crate) error: Option<PhjError>,
}

impl JoinSink for DiskSink {
    fn emit<M: MemoryModel>(&mut self, mem: &mut M, build: &[u8], probe: &[u8]) {
        if self.error.is_some() {
            return;
        }
        self.count.emit(mem, build, probe);
        materialize_join_output(&self.build_schema, &self.probe_schema, build, probe, &mut self.buf);
        if !self.page.fits(self.buf.len()) {
            if self.page.nslots() == 0 {
                self.error = Some(PhjError::TupleTooLarge { bytes: self.buf.len() });
                return;
            }
            if let Err(e) = self.writer.write(self.next_page, self.page.sealed_image()) {
                self.error = Some(e);
                return;
            }
            self.next_page += 1;
            self.page.reset();
        }
        if self.page.insert(&self.buf, 0).is_none() {
            self.error = Some(PhjError::TupleTooLarge { bytes: self.buf.len() });
            return;
        }
        self.tuples += 1;
    }

    fn matches(&self) -> u64 {
        self.count.matches()
    }
}

/// Mutable state threaded through the recursive join phase.
pub(crate) struct Degrade {
    pub(crate) events: Vec<DegradationEvent>,
    /// Fresh names for recursive spill sets.
    pub(crate) spill_counter: u64,
}

/// Join one (build, probe) partition pair, degrading as needed. `label`
/// is the hierarchical partition name for diagnostics; `top_p` is the
/// top-level partition count (kept as the bucket-coprimality modulus).
/// `budget` is the budget *live at this pair* — the static
/// `cfg.mem_budget` on the GRACE path, the current
/// [`LiveBudget`](crate::budget::LiveBudget) limit on the dynamic one,
/// so degradation events attribute against what the run actually had.
#[allow(clippy::too_many_arguments)]
pub(crate) fn join_partition_pair(
    cfg: &DiskGraceConfig,
    budget: u64,
    params: &JoinParams,
    native: &mut NativeModel,
    build_schema: &Schema,
    probe_schema: &Schema,
    bspill: &Spilled,
    pspill: &Spilled,
    part: usize,
    label: String,
    depth: u32,
    top_p: usize,
    sink: &mut DiskSink,
    deg: &mut Degrade,
    rec: &mut Option<&mut Recorder>,
) -> Result<()> {
    let budget = budget.max(PAGE_SIZE as u64);
    let bpages = bspill.part_pages[part].len();
    let bytes = (bpages * PAGE_SIZE) as u64;
    if bytes <= budget {
        let b = load_partition(bspill, part, build_schema, cfg.read_ahead)?;
        let pr = load_partition(pspill, part, probe_schema, cfg.read_ahead)?;
        debug_assert_eq!(b.num_tuples() as u64, bspill.part_tuples[part]);
        debug_assert_eq!(pr.num_tuples() as u64, pspill.part_tuples[part]);
        join_pair(native, params, &b, &pr, top_p, sink);
        return Ok(());
    }

    // Oversized build partition: walk the degradation ladder.
    if depth < cfg.max_repartition_depth {
        let fanout = plan::num_partitions(bytes as usize, budget as usize).max(2);
        let seed = depth + 1;
        deg.spill_counter += 1;
        let tag = deg.spill_counter;
        let sub_b = repartition_spill(
            cfg, build_schema, bspill, part, &format!("rp{tag}_b"), fanout, seed,
        )?;
        let max_sub = sub_b.part_pages.iter().map(Vec::len).max().unwrap_or(0);
        if max_sub < bpages {
            deg.events.push(DegradationEvent {
                partition: label.clone(),
                depth,
                bytes,
                budget,
                kind: DegradationKind::Repartition { fanout, seed },
            });
            if let Some(m) = crate::telemetry::disk_metrics() {
                m.degradation_depth.set_max(depth as u64 + 1);
            }
            // code 0 = recursive repartition step.
            phj_flightrec::event(
                phj_flightrec::EventKind::Degrade,
                0,
                depth as u64 + 1,
                fanout as u64,
            );
            let span = obs::span_begin(rec, native, "repartition");
            obs::span_meta(rec, "partition", &label);
            obs::span_meta(rec, "fanout", fanout);
            let sub_p = repartition_spill(
                cfg, probe_schema, pspill, part, &format!("rp{tag}_p"), fanout, seed,
            )?;
            let mut res = Ok(());
            for sp in 0..fanout {
                res = join_partition_pair(
                    cfg,
                    budget,
                    params,
                    native,
                    build_schema,
                    probe_schema,
                    &sub_b,
                    &sub_p,
                    sp,
                    format!("{label}.{sp}"),
                    depth + 1,
                    top_p,
                    sink,
                    deg,
                    rec,
                );
                if res.is_err() {
                    break;
                }
            }
            obs::span_end(rec, native, span);
            cleanup_spill(&sub_b);
            cleanup_spill(&sub_p);
            return res;
        }
        // Repartitioning did not reduce the partition (one dominant key):
        // drop the useless sub-spill and fall through to the next rung.
        cleanup_spill(&sub_b);
    }

    if cfg.nlj_fallback {
        let span = obs::span_begin(rec, native, "nlj_fallback");
        obs::span_meta(rec, "partition", &label);
        let chunks = block_nlj(
            budget, params, native, build_schema, probe_schema, bspill, pspill, part, top_p, sink,
        )?;
        obs::span_end(rec, native, span);
        deg.events.push(DegradationEvent {
            partition: label,
            depth,
            bytes,
            budget,
            kind: DegradationKind::NljFallback { chunks },
        });
        if let Some(m) = crate::telemetry::disk_metrics() {
            m.degradation_depth.set_max(depth as u64 + 1);
        }
        // code 1 = block nested-loop fallback.
        phj_flightrec::event(
            phj_flightrec::EventKind::Degrade,
            1,
            depth as u64 + 1,
            chunks as u64,
        );
        return Ok(());
    }

    Err(PhjError::PartitionOverflow { partition: part, depth, bytes, budget })
}

/// Remove a recursive sub-spill's files once its partitions are joined
/// (best-effort; the working directory is the caller's to delete anyway).
pub(crate) fn cleanup_spill(spill: &Spilled) {
    for path in spill.stripes.paths() {
        let _ = std::fs::remove_file(path);
    }
}

/// Streaming block nested-loop join over one oversized partition pair:
/// the build side is processed in chunks of at most the memory budget;
/// for each chunk, the probe side streams past in bounded batches. Joins
/// any build partition in bounded memory at the cost of re-reading the
/// probe partition once per chunk. Returns the number of build chunks.
#[allow(clippy::too_many_arguments)]
fn block_nlj(
    budget: u64,
    params: &JoinParams,
    native: &mut NativeModel,
    build_schema: &Schema,
    probe_schema: &Schema,
    bspill: &Spilled,
    pspill: &Spilled,
    part: usize,
    top_p: usize,
    sink: &mut DiskSink,
) -> Result<usize> {
    let chunk_pages = (budget as usize / PAGE_SIZE).max(1);
    let bpages = &bspill.part_pages[part];
    let ppages = &pspill.part_pages[part];
    let mut chunks = 0usize;
    for bchunk in bpages.chunks(chunk_pages) {
        let mut brel = Relation::new(build_schema.clone());
        for &pid in bchunk {
            brel.push_page(bspill.stripes.read_page_verified(pid)?);
        }
        chunks += 1;
        if brel.num_tuples() == 0 {
            continue;
        }
        let buckets = plan::hash_table_buckets(brel.num_tuples(), top_p);
        let mut table = HashTable::new(buckets, brel.num_tuples());
        dispatch_build(native, params, &mut table, &brel);
        table.assert_quiescent();
        for pbatch in ppages.chunks(chunk_pages) {
            let mut prel = Relation::new(probe_schema.clone());
            for &pid in pbatch {
                prel.push_page(pspill.stripes.read_page_verified(pid)?);
            }
            dispatch_probe(native, params, &table, &brel, &prel, sink);
        }
    }
    Ok(chunks)
}

/// Run the GRACE hash join over two file relations, writing the output
/// to `<dir>/out.N`.
pub fn grace_join_files(
    cfg: &DiskGraceConfig,
    build: &FileRelation,
    probe: &FileRelation,
) -> Result<DiskGraceReport> {
    grace_join_files_rec(cfg, build, probe, None)
}

/// [`grace_join_files`] with an optional span recorder: the partition
/// and join phases get top-level spans, and every degradation step
/// (repartition, nested-loop fallback) gets its own nested span.
pub fn grace_join_files_rec(
    cfg: &DiskGraceConfig,
    build: &FileRelation,
    probe: &FileRelation,
    mut rec: Option<&mut Recorder>,
) -> Result<DiskGraceReport> {
    if cfg.mode != DiskJoinMode::Grace {
        return crate::hybrid::hybrid_join_files_rec(cfg, build, probe, rec);
    }
    let p = plan::num_partitions(build.size_bytes() as usize, cfg.mem_budget).max(1);
    let mut native = NativeModel;
    // Journal the memory budget this run operates under (the ladder
    // never renegotiates, it degrades instead). `a` carries the host's
    // query id in full; `code` is the grant operation.
    phj_flightrec::event(
        phj_flightrec::EventKind::Grant,
        phj_flightrec::grant_op::BUDGET,
        cfg.grant_tag,
        cfg.mem_budget as u64,
    );

    let t0 = Instant::now();
    let span = obs::span_begin(&mut rec, &native, "partition");
    obs::span_meta(&mut rec, "partitions", p);
    let (build_spill, bstall) = partition_to_spill(cfg, build, "build_spill", p)?;
    let (probe_spill, pstall) = partition_to_spill(cfg, probe, "probe_spill", p)?;
    obs::span_end(&mut rec, &native, span);
    let partition_s = t0.elapsed().as_secs_f64();

    let out_schema = Schema::join_output(build.schema(), probe.schema());
    let out_stripes = StripeSet::create(&cfg.dir, "out", cfg.num_stripes, cfg.stripe_pages)
        .map_err(|e| PhjError::io(cfg.dir.join("out"), e))?
        .with_faults(cfg.fault.clone(), cfg.retry);
    let mut sink = DiskSink {
        build_schema: build.schema().clone(),
        probe_schema: probe.schema().clone(),
        writer: BackgroundWriter::start(out_stripes.clone(), cfg.write_window),
        page: Page::new(),
        next_page: 0,
        buf: Vec::new(),
        tuples: 0,
        count: CountSink::new(),
        error: None,
    };
    let t1 = Instant::now();
    let span = obs::span_begin(&mut rec, &native, "join");
    let params = JoinParams { scheme: cfg.join_scheme, use_stored_hash: true };
    let mut deg = Degrade { events: Vec::new(), spill_counter: 0 };
    for part in 0..p {
        join_partition_pair(
            cfg,
            cfg.mem_budget as u64,
            &params,
            &mut native,
            build.schema(),
            probe.schema(),
            &build_spill,
            &probe_spill,
            part,
            part.to_string(),
            0,
            p,
            &mut sink,
            &mut deg,
            &mut rec,
        )?;
        if let Some(e) = sink.error.take() {
            return Err(e);
        }
    }
    obs::span_end(&mut rec, &native, span);
    // Flush the output tail and stop the writer.
    if sink.page.nslots() > 0 {
        sink.writer.write(sink.next_page, sink.page.sealed_image())?;
        sink.next_page += 1;
    }
    let (matches, tuples, out_pages, count, writer) =
        (sink.matches(), sink.tuples, sink.next_page, sink.count, sink.writer);
    writer.finish()?;
    let join_s = t1.elapsed().as_secs_f64();

    let stats = cfg.fault.stats();
    Ok(DiskGraceReport {
        output: FileRelation::from_parts(out_schema, out_stripes, out_pages, tuples),
        num_partitions: p,
        partition_s,
        join_s,
        input_stall_s: bstall + pstall,
        matches,
        checksum: count.checksum(),
        degradation: deg.events,
        read_retries: stats.read_retries.load(Ordering::Relaxed),
        write_retries: stats.write_retries.load(Ordering::Relaxed),
        faults_injected: stats.total_injected(),
        slow_stall_us: stats.slow_stall_us.load(Ordering::Relaxed),
        transitions: Vec::new(),
        resident_partitions: 0,
        final_budget: cfg.mem_budget as u64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use phj::grace::{grace_join_with_sink, GraceConfig};
    use phj::sink::CountSink;
    use phj_memsim::NativeModel;
    use phj_workload::JoinSpec;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join(format!("phj-diskgrace-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn disk_grace_matches_in_memory_grace() {
        let dir = temp_dir("parity");
        let gen = JoinSpec {
            build_tuples: 6000,
            tuple_size: 48,
            matches_per_build: 2,
            pct_match: 75,
            seed: 77,
        }
        .generate();
        let fb = FileRelation::create(&dir, "build", &gen.build, 3, 4).unwrap();
        let fp = FileRelation::create(&dir, "probe", &gen.probe, 3, 4).unwrap();
        let cfg = DiskGraceConfig {
            mem_budget: 64 * 1024,
            ..DiskGraceConfig::new(&dir)
        };
        let report = grace_join_files(&cfg, &fb, &fp).unwrap();
        assert!(report.num_partitions > 1);
        assert_eq!(report.matches, gen.expected_matches);
        assert_eq!(report.output.num_tuples(), gen.expected_matches);
        assert!(report.degradation.is_empty(), "{:?}", report.degradation);
        // The in-memory engine agrees — on the count and on the
        // order-insensitive pair checksum.
        let mut sink = CountSink::new();
        grace_join_with_sink(
            &mut NativeModel,
            &GraceConfig { mem_budget: 64 * 1024, ..Default::default() },
            &gen.build,
            &gen.probe,
            &mut sink,
        );
        assert_eq!(sink.matches(), report.matches);
        assert_eq!(sink.checksum(), report.checksum);
        // Output pages parse back and have the joined arity.
        let out = report.output.load().unwrap();
        assert_eq!(out.num_tuples() as u64, report.matches);
        for (_, t, _) in out.iter().take(5) {
            assert_eq!(t.len(), 96);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn single_partition_disk_join() {
        let dir = temp_dir("single");
        let gen = JoinSpec {
            build_tuples: 500,
            tuple_size: 20,
            matches_per_build: 1,
            pct_match: 100,
            seed: 3,
        }
        .generate();
        let fb = FileRelation::create(&dir, "build", &gen.build, 2, 2).unwrap();
        let fp = FileRelation::create(&dir, "probe", &gen.probe, 2, 2).unwrap();
        let cfg = DiskGraceConfig { mem_budget: 1 << 30, ..DiskGraceConfig::new(&dir) };
        let report = grace_join_files(&cfg, &fb, &fp).unwrap();
        assert_eq!(report.num_partitions, 1);
        assert_eq!(report.matches, 500);
        assert!(report.degradation.is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }
}
