//! GRACE hash join over file relations — the disk-oriented execution the
//! paper's real-machine experiments run (§7.2), with real files and real
//! background I/O threads.
//!
//! The partition phase streams each input relation through a
//! [`crate::SequentialReader`] (background read-ahead), routes tuples into
//! per-partition output buffer pages, and spills full pages through a
//! [`BackgroundWriter`] into a striped spill file, recording which spill
//! pages belong to which partition. The join phase loads each partition
//! pair back into memory and runs any in-memory join scheme; output
//! pages stream to disk through another background writer.

use std::io;
use std::path::{Path, PathBuf};
use std::sync::mpsc::{Receiver, SyncSender};
use std::time::Instant;

use phj::join::{join_pair, JoinParams, JoinScheme};
use phj::sink::JoinSink;
use phj::{hash, plan};
use phj_memsim::MemoryModel;
use phj_storage::{tuple::key_bytes_of, tuple::materialize_join_output, Page, Relation, Schema, PAGE_SIZE};

use crate::stripe::StripeSet;
use crate::writer::BackgroundWriter;
use crate::FileRelation;

/// Configuration for the on-disk GRACE join.
#[derive(Debug, Clone)]
pub struct DiskGraceConfig {
    /// Join-phase memory budget (build partition size), as in §7.1.
    pub mem_budget: usize,
    /// Stripe files per relation (the paper's "disks"; 6 in §7.2).
    pub num_stripes: usize,
    /// Stripe unit in pages (256 KB = 32 pages of 8 KB in §7.2).
    pub stripe_pages: u64,
    /// Read-ahead window in pages.
    pub read_ahead: usize,
    /// Background-writer in-flight window in pages.
    pub write_window: usize,
    /// In-memory join scheme for each partition pair.
    pub join_scheme: JoinScheme,
    /// Working directory for spill and output files.
    pub dir: PathBuf,
}

impl DiskGraceConfig {
    /// Paper-shaped defaults under `dir`.
    pub fn new(dir: &Path) -> Self {
        DiskGraceConfig {
            mem_budget: 50 << 20,
            num_stripes: 6,
            stripe_pages: 32,
            read_ahead: 256,
            write_window: 256,
            join_scheme: JoinScheme::Group { g: 16 },
            dir: dir.to_path_buf(),
        }
    }
}

/// Timing and outcome of an on-disk GRACE run.
pub struct DiskGraceReport {
    /// The join output, on disk.
    pub output: FileRelation,
    /// Number of partitions.
    pub num_partitions: usize,
    /// Wall-clock seconds for the partition phase.
    pub partition_s: f64,
    /// Wall-clock seconds for the join phase.
    pub join_s: f64,
    /// Seconds the main thread blocked waiting for input pages (the
    /// Fig-9 "main thread stall").
    pub input_stall_s: f64,
    /// Matches produced.
    pub matches: u64,
}

/// One relation partitioned into a spill file: which spill pages belong
/// to each partition.
struct Spilled {
    stripes: StripeSet,
    part_pages: Vec<Vec<u64>>,
    part_tuples: Vec<u64>,
}

/// Partition a file relation into `p` partitions within a fresh spill
/// file. Returns the spill map and the reader's stall time.
fn partition_to_spill(
    cfg: &DiskGraceConfig,
    input: &FileRelation,
    name: &str,
    p: usize,
) -> io::Result<(Spilled, f64)> {
    let stripes = StripeSet::create(&cfg.dir, name, cfg.num_stripes, cfg.stripe_pages)?;
    let writer = BackgroundWriter::start(stripes.clone(), cfg.write_window);
    let mut bufs: Vec<Page> = (0..p).map(|_| Page::new()).collect();
    let mut part_pages: Vec<Vec<u64>> = vec![Vec::new(); p];
    let mut part_tuples: Vec<u64> = vec![0; p];
    let mut next_spill_page = 0u64;
    let schema = input.schema().clone();
    let mut scan = input.scan(cfg.read_ahead);
    while let Some(page) = scan.next_page()? {
        for (_, tuple, _) in page.iter() {
            let h = hash::hash_key(key_bytes_of(&schema, tuple));
            let part = hash::partition_of(h, p);
            if !bufs[part].fits(tuple.len()) {
                part_pages[part].push(next_spill_page);
                writer.write(next_spill_page, Box::new(*bufs[part].as_bytes()));
                next_spill_page += 1;
                bufs[part].reset();
            }
            bufs[part].insert(tuple, h).expect("fits after reset");
            part_tuples[part] += 1;
        }
    }
    for (part, buf) in bufs.iter().enumerate() {
        if buf.nslots() > 0 {
            part_pages[part].push(next_spill_page);
            writer.write(next_spill_page, Box::new(*buf.as_bytes()));
            next_spill_page += 1;
        }
    }
    writer.finish()?;
    Ok((Spilled { stripes, part_pages, part_tuples }, scan.stall_seconds()))
}

/// Load one partition's pages from the spill file into memory, with a
/// single background prefetch worker streaming the page list.
fn load_partition(spill: &Spilled, part: usize, schema: &Schema, window: usize) -> io::Result<Relation> {
    let pages = &spill.part_pages[part];
    let mut rel = Relation::new(schema.clone());
    if pages.is_empty() {
        return Ok(rel);
    }
    type Msg = io::Result<Box<[u8; PAGE_SIZE]>>;
    let (tx, rx): (SyncSender<Msg>, Receiver<Msg>) =
        std::sync::mpsc::sync_channel(window.max(1));
    let stripes = spill.stripes.clone();
    let list = pages.clone();
    let worker = std::thread::spawn(move || {
        for pid in list {
            let msg = stripes.read_page(pid);
            let failed = msg.is_err();
            if tx.send(msg).is_err() || failed {
                return;
            }
        }
    });
    let mut result = Ok(());
    for _ in 0..pages.len() {
        match rx.recv().expect("prefetch worker vanished") {
            Ok(image) => rel.push_page(Page::from_bytes(image)),
            Err(e) => {
                result = Err(e);
                break;
            }
        }
    }
    drop(rx);
    let _ = worker.join();
    result.map(|()| rel)
}

/// Streams join output pages to disk as they fill.
struct DiskSink {
    build_schema: Schema,
    probe_schema: Schema,
    writer: BackgroundWriter,
    page: Page,
    next_page: u64,
    buf: Vec<u8>,
    matches: u64,
    tuples: u64,
}

impl JoinSink for DiskSink {
    fn emit<M: MemoryModel>(&mut self, _mem: &mut M, build: &[u8], probe: &[u8]) {
        materialize_join_output(&self.build_schema, &self.probe_schema, build, probe, &mut self.buf);
        if !self.page.fits(self.buf.len()) {
            self.writer.write(self.next_page, Box::new(*self.page.as_bytes()));
            self.next_page += 1;
            self.page.reset();
        }
        self.page.insert(&self.buf, 0).expect("output tuple fits a page");
        self.matches += 1;
        self.tuples += 1;
    }

    fn matches(&self) -> u64 {
        self.matches
    }
}

/// Run the GRACE hash join over two file relations, writing the output
/// to `<dir>/out.N`.
pub fn grace_join_files(
    cfg: &DiskGraceConfig,
    build: &FileRelation,
    probe: &FileRelation,
) -> io::Result<DiskGraceReport> {
    let p = plan::num_partitions(build.size_bytes() as usize, cfg.mem_budget).max(1);

    let t0 = Instant::now();
    let (build_spill, bstall) = partition_to_spill(cfg, build, "build_spill", p)?;
    let (probe_spill, pstall) = partition_to_spill(cfg, probe, "probe_spill", p)?;
    let partition_s = t0.elapsed().as_secs_f64();

    let out_schema = Schema::join_output(build.schema(), probe.schema());
    let out_stripes = StripeSet::create(&cfg.dir, "out", cfg.num_stripes, cfg.stripe_pages)?;
    let mut sink = DiskSink {
        build_schema: build.schema().clone(),
        probe_schema: probe.schema().clone(),
        writer: BackgroundWriter::start(out_stripes.clone(), cfg.write_window),
        page: Page::new(),
        next_page: 0,
        buf: Vec::new(),
        matches: 0,
        tuples: 0,
    };
    let t1 = Instant::now();
    let params = JoinParams { scheme: cfg.join_scheme, use_stored_hash: true };
    let mut native = phj_memsim::NativeModel;
    for part in 0..p {
        let b = load_partition(&build_spill, part, build.schema(), cfg.read_ahead)?;
        let pr = load_partition(&probe_spill, part, probe.schema(), cfg.read_ahead)?;
        debug_assert_eq!(b.num_tuples() as u64, build_spill.part_tuples[part]);
        debug_assert_eq!(pr.num_tuples() as u64, probe_spill.part_tuples[part]);
        join_pair(&mut native, &params, &b, &pr, p, &mut sink);
    }
    // Flush the output tail and stop the writer.
    if sink.page.nslots() > 0 {
        sink.writer.write(sink.next_page, Box::new(*sink.page.as_bytes()));
        sink.next_page += 1;
    }
    let (matches, tuples, out_pages, writer) =
        (sink.matches, sink.tuples, sink.next_page, sink.writer);
    writer.finish()?;
    let join_s = t1.elapsed().as_secs_f64();

    Ok(DiskGraceReport {
        output: FileRelation::from_parts(out_schema, out_stripes, out_pages, tuples),
        num_partitions: p,
        partition_s,
        join_s,
        input_stall_s: bstall + pstall,
        matches,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use phj::grace::{grace_join_with_sink, GraceConfig};
    use phj::sink::CountSink;
    use phj_memsim::NativeModel;
    use phj_workload::JoinSpec;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join(format!("phj-diskgrace-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn disk_grace_matches_in_memory_grace() {
        let dir = temp_dir("parity");
        let gen = JoinSpec {
            build_tuples: 6000,
            tuple_size: 48,
            matches_per_build: 2,
            pct_match: 75,
            seed: 77,
        }
        .generate();
        let fb = FileRelation::create(&dir, "build", &gen.build, 3, 4).unwrap();
        let fp = FileRelation::create(&dir, "probe", &gen.probe, 3, 4).unwrap();
        let cfg = DiskGraceConfig {
            mem_budget: 64 * 1024,
            ..DiskGraceConfig::new(&dir)
        };
        let report = grace_join_files(&cfg, &fb, &fp).unwrap();
        assert!(report.num_partitions > 1);
        assert_eq!(report.matches, gen.expected_matches);
        assert_eq!(report.output.num_tuples(), gen.expected_matches);
        // The in-memory engine agrees.
        let mut sink = CountSink::new();
        grace_join_with_sink(
            &mut NativeModel,
            &GraceConfig { mem_budget: 64 * 1024, ..Default::default() },
            &gen.build,
            &gen.probe,
            &mut sink,
        );
        assert_eq!(sink.matches(), report.matches);
        // Output pages parse back and have the joined arity.
        let out = report.output.load().unwrap();
        assert_eq!(out.num_tuples() as u64, report.matches);
        for (_, t, _) in out.iter().take(5) {
            assert_eq!(t.len(), 96);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn single_partition_disk_join() {
        let dir = temp_dir("single");
        let gen = JoinSpec {
            build_tuples: 500,
            tuple_size: 20,
            matches_per_build: 1,
            pct_match: 100,
            seed: 3,
        }
        .generate();
        let fb = FileRelation::create(&dir, "build", &gen.build, 2, 2).unwrap();
        let fp = FileRelation::create(&dir, "probe", &gen.probe, 2, 2).unwrap();
        let cfg = DiskGraceConfig { mem_budget: 1 << 30, ..DiskGraceConfig::new(&dir) };
        let report = grace_join_files(&cfg, &fb, &fp).unwrap();
        assert_eq!(report.num_partitions, 1);
        assert_eq!(report.matches, 500);
        std::fs::remove_dir_all(&dir).ok();
    }
}
