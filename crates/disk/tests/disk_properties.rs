//! Property-based tests for the disk substrate: arbitrary relations,
//! stripe geometries, and read-ahead windows must round-trip exactly,
//! and the on-disk GRACE must agree with the in-memory engine.

use proptest::collection::vec;
use proptest::prelude::*;

use phj_disk::{grace_join_files, DiskGraceConfig, FileRelation, StripeSet};
use phj_storage::{Page, Relation, RelationBuilder, Schema, PAGE_SIZE};

fn temp_dir(tag: &str) -> std::path::PathBuf {
    // Unique per test-case to avoid collisions under parallel cases.
    static NEXT: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let n = NEXT.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!(
        "phj-diskprop-{tag}-{}-{n}",
        std::process::id()
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn rel_from_keys(keys: &[u32], size: usize) -> Relation {
    let schema = Schema::key_payload(size);
    let mut b = RelationBuilder::new(schema);
    let mut t = vec![0u8; size];
    for &k in keys {
        t[..4].copy_from_slice(&k.to_le_bytes());
        b.push_hashed(&t, phj::hash::hash_key(&k.to_le_bytes()));
    }
    b.finish()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn file_relation_roundtrips(
        keys in vec(any::<u32>(), 0..3000),
        size in 8usize..120,
        stripes in 1usize..5,
        stripe_pages in 1u64..8,
        read_ahead in 1usize..32,
    ) {
        let dir = temp_dir("roundtrip");
        let rel = rel_from_keys(&keys, size);
        let fr = FileRelation::create(&dir, "r", &rel, stripes, stripe_pages).unwrap();
        prop_assert_eq!(fr.num_tuples() as usize, keys.len());
        // Page-ordered scan.
        let mut scan = fr.scan(read_ahead);
        let mut tuples = Vec::new();
        while let Some(page) = scan.next_page().unwrap() {
            for (_, t, h) in page.iter() {
                let k = u32::from_le_bytes(t[..4].try_into().unwrap());
                prop_assert_eq!(h, phj::hash::hash_key(&k.to_le_bytes()));
                tuples.push(t.to_vec());
            }
        }
        prop_assert_eq!(tuples, rel.to_tuple_vec());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stripe_mapping_is_a_bijection(
        stripes in 1usize..6,
        stripe_pages in 1u64..10,
        pages in 1u64..200,
    ) {
        let dir = temp_dir("bijection");
        let s = StripeSet::create(&dir, "b", stripes, stripe_pages).unwrap();
        // No two pages may map to the same (file, offset).
        let mut seen = std::collections::HashSet::new();
        for p in 0..pages {
            prop_assert!(seen.insert((s.stripe_of(p), s.offset_of(p))), "page {} collides", p);
            prop_assert_eq!(s.offset_of(p) % PAGE_SIZE as u64, 0);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn disk_grace_agrees_with_memory(
        build_keys in vec(0u32..512, 1..800),
        probe_keys in vec(0u32..512, 0..800),
        budget_pages in 2usize..10,
    ) {
        let dir = temp_dir("grace");
        let build = rel_from_keys(&build_keys, 32);
        let probe = rel_from_keys(&probe_keys, 32);
        let fb = FileRelation::create(&dir, "b", &build, 2, 2).unwrap();
        let fp = FileRelation::create(&dir, "p", &probe, 2, 2).unwrap();
        let cfg = DiskGraceConfig {
            mem_budget: budget_pages * PAGE_SIZE,
            num_stripes: 2,
            stripe_pages: 2,
            ..DiskGraceConfig::new(&dir)
        };
        let report = grace_join_files(&cfg, &fb, &fp).unwrap();
        // Reference: count key-equal pairs.
        let mut counts = std::collections::HashMap::new();
        for k in &build_keys {
            *counts.entry(*k).or_insert(0u64) += 1;
        }
        let want: u64 = probe_keys.iter().map(|k| counts.get(k).copied().unwrap_or(0)).sum();
        prop_assert_eq!(report.matches, want);
        prop_assert_eq!(report.output.num_tuples(), want);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn page_images_survive_arbitrary_contents(
        fills in vec((any::<u8>(), 1usize..200), 1..40),
    ) {
        // Pages with arbitrary tuple bytes round-trip through disk images.
        let dir = temp_dir("pages");
        let s = StripeSet::create(&dir, "pg", 3, 2).unwrap();
        let mut originals = Vec::new();
        for (i, (byte, len)) in fills.iter().enumerate() {
            let mut page = Page::new();
            let tuple = vec![*byte; *len];
            while page.insert(&tuple, *byte as u32).is_some() {}
            s.write_page(i as u64, page.as_bytes()).unwrap();
            originals.push(page);
        }
        for (i, orig) in originals.iter().enumerate() {
            let img = s.read_page(i as u64).unwrap();
            let got = Page::from_bytes(img);
            prop_assert_eq!(got.nslots(), orig.nslots());
            for (slot, t, h) in got.iter() {
                prop_assert_eq!(t, orig.tuple(slot));
                prop_assert_eq!(h, orig.hash_code(slot));
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
