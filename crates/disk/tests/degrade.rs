//! Graceful-degradation tests: build partitions that cannot fit the
//! memory budget must still produce the right answer — via recursive
//! reseeded repartitioning when hashing can split them, via the block
//! nested-loop fallback when it cannot (one dominant key), and via a
//! typed [`PhjError::PartitionOverflow`] when the fallback is disabled.
//! Correctness is checked against the in-memory engine on both the match
//! count and the order-insensitive pair checksum.

use phj::grace::{grace_join_with_sink, GraceConfig};
use phj::sink::{CountSink, JoinSink};
use phj_disk::{
    grace_join_files, DegradationKind, DiskGraceConfig, FileRelation, PhjError,
};
use phj_memsim::NativeModel;
use phj_storage::{Relation, RelationBuilder, Schema, PAGE_SIZE};

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("phj-degrade-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn rel_from_keys(keys: &[u32], size: usize) -> Relation {
    let schema = Schema::key_payload(size);
    let mut b = RelationBuilder::new(schema);
    let mut t = vec![0u8; size];
    for &k in keys {
        t[..4].copy_from_slice(&k.to_le_bytes());
        b.push_hashed(&t, phj::hash::hash_key(&k.to_le_bytes()));
    }
    b.finish()
}

/// Reference run: the in-memory GRACE with a budget large enough to
/// never degrade, collecting the match count and pair checksum.
fn reference(build: &Relation, probe: &Relation) -> (u64, u64) {
    let mut sink = CountSink::new();
    grace_join_with_sink(
        &mut NativeModel,
        &GraceConfig { mem_budget: 1 << 30, ..Default::default() },
        build,
        probe,
        &mut sink,
    );
    (sink.matches(), sink.checksum())
}

#[test]
fn all_same_key_falls_back_to_block_nlj() {
    let dir = temp_dir("samekey");
    // 2000 copies of one key: no hash seed can ever split this build
    // partition, so the ladder must land on the nested-loop fallback.
    let build_keys = vec![42u32; 2000];
    let mut probe_keys = vec![42u32; 10];
    probe_keys.extend(1000..1200u32); // non-matching tail
    let build = rel_from_keys(&build_keys, 48);
    let probe = rel_from_keys(&probe_keys, 48);
    let (want_matches, want_checksum) = reference(&build, &probe);
    assert_eq!(want_matches, 2000 * 10);

    let fb = FileRelation::create(&dir, "b", &build, 2, 2).unwrap();
    let fp = FileRelation::create(&dir, "p", &probe, 2, 2).unwrap();
    let cfg = DiskGraceConfig {
        mem_budget: 4 * PAGE_SIZE,
        num_stripes: 2,
        stripe_pages: 2,
        ..DiskGraceConfig::new(&dir)
    };
    let report = grace_join_files(&cfg, &fb, &fp).unwrap();
    assert_eq!(report.matches, want_matches);
    assert_eq!(report.checksum, want_checksum);
    assert!(
        report
            .degradation
            .iter()
            .any(|e| matches!(e.kind, DegradationKind::NljFallback { .. })),
        "expected an NLJ fallback, got {:?}",
        report.degradation
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn hot_key_degrades_recursively_then_falls_back() {
    let dir = temp_dir("hotkey");
    // One key with 3000 copies (~21 pages on its own) plus 2000 distinct
    // keys. The hot partition repartitions at depth 0 (shedding the
    // distinct keys), but the hot key itself can never shrink under the
    // 4-page budget — deeper rungs of the ladder must engage.
    let hot = 7u32;
    let mut build_keys = vec![hot; 3000];
    build_keys.extend(10_000..12_000u32);
    let mut probe_keys = vec![hot; 5];
    probe_keys.extend(10_000..12_000u32);
    let build = rel_from_keys(&build_keys, 48);
    let probe = rel_from_keys(&probe_keys, 48);
    let (want_matches, want_checksum) = reference(&build, &probe);
    assert_eq!(want_matches, 3000 * 5 + 2000);

    let fb = FileRelation::create(&dir, "b", &build, 3, 2).unwrap();
    let fp = FileRelation::create(&dir, "p", &probe, 3, 2).unwrap();
    let cfg = DiskGraceConfig {
        mem_budget: 4 * PAGE_SIZE,
        num_stripes: 2,
        stripe_pages: 2,
        ..DiskGraceConfig::new(&dir)
    };
    let report = grace_join_files(&cfg, &fb, &fp).unwrap();
    assert_eq!(report.matches, want_matches);
    assert_eq!(report.checksum, want_checksum);
    let depth0_repart = report
        .degradation
        .iter()
        .any(|e| e.depth == 0 && matches!(e.kind, DegradationKind::Repartition { .. }));
    let deeper = report.degradation.iter().any(|e| e.depth >= 1);
    let nlj = report
        .degradation
        .iter()
        .any(|e| matches!(e.kind, DegradationKind::NljFallback { .. }));
    assert!(
        depth0_repart && deeper && nlj,
        "expected depth-0 repartition, a deeper event, and an NLJ fallback; got {:?}",
        report.degradation
    );
    // Hierarchical labels name the ancestry of degraded partitions.
    for e in &report.degradation {
        assert_eq!(e.partition.split('.').count() as u32, e.depth + 1, "{e:?}");
        assert!(e.bytes > e.budget, "{e:?}");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn lumpy_keys_complete_via_recursive_repartition() {
    let dir = temp_dir("lumpy");
    // 50 distinct keys x 60 copies: partitions are lumpy (each key is an
    // indivisible ~0.4-page clump) so some top-level partitions overflow
    // a 3-page budget, but every clump fits — reseeded repartitioning
    // alone must finish the join, no fallback needed.
    let build_keys: Vec<u32> = (0..50u32).flat_map(|k| std::iter::repeat_n(k * 17 + 3, 60)).collect();
    let probe_keys: Vec<u32> = (0..50u32).map(|k| k * 17 + 3).collect();
    let build = rel_from_keys(&build_keys, 48);
    let probe = rel_from_keys(&probe_keys, 48);
    let (want_matches, want_checksum) = reference(&build, &probe);
    assert_eq!(want_matches, 50 * 60);

    let fb = FileRelation::create(&dir, "b", &build, 2, 2).unwrap();
    let fp = FileRelation::create(&dir, "p", &probe, 2, 2).unwrap();
    let cfg = DiskGraceConfig {
        mem_budget: 3 * PAGE_SIZE,
        num_stripes: 2,
        stripe_pages: 2,
        ..DiskGraceConfig::new(&dir)
    };
    let report = grace_join_files(&cfg, &fb, &fp).unwrap();
    assert_eq!(report.matches, want_matches);
    assert_eq!(report.checksum, want_checksum);
    assert!(
        !report.degradation.is_empty(),
        "budget below largest partition must trigger degradation"
    );
    assert!(
        report
            .degradation
            .iter()
            .all(|e| matches!(e.kind, DegradationKind::Repartition { .. })),
        "splittable keys should never need the NLJ fallback: {:?}",
        report.degradation
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn overflow_without_fallback_is_a_typed_error() {
    let dir = temp_dir("overflow");
    let build = rel_from_keys(&vec![42u32; 2000], 48);
    let probe = rel_from_keys(&[42u32], 48);
    let fb = FileRelation::create(&dir, "b", &build, 2, 2).unwrap();
    let fp = FileRelation::create(&dir, "p", &probe, 2, 2).unwrap();
    let cfg = DiskGraceConfig {
        mem_budget: 4 * PAGE_SIZE,
        num_stripes: 2,
        stripe_pages: 2,
        nlj_fallback: false,
        ..DiskGraceConfig::new(&dir)
    };
    let err = grace_join_files(&cfg, &fb, &fp).unwrap_err();
    match err {
        PhjError::PartitionOverflow { depth, bytes, budget, .. } => {
            assert!(bytes > budget, "{bytes} vs {budget}");
            assert!(depth <= cfg.max_repartition_depth);
        }
        other => panic!("expected PartitionOverflow, got {other}"),
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// Sanity for the reference itself: the disk engine on a roomy budget
/// (no degradation) produces the same checksum the references use.
#[test]
fn checksum_is_degradation_invariant() {
    let dir = temp_dir("invariant");
    let build_keys: Vec<u32> = (0..1500u32).map(|k| k % 300).collect();
    let probe_keys: Vec<u32> = (0..900u32).map(|k| k % 450).collect();
    let build = rel_from_keys(&build_keys, 32);
    let probe = rel_from_keys(&probe_keys, 32);
    let (want_matches, want_checksum) = reference(&build, &probe);

    let mut got = Vec::new();
    for (tag, budget) in [("roomy", 1usize << 30), ("tight", 2 * PAGE_SIZE)] {
        let d = temp_dir(&format!("invariant-{tag}"));
        let fb = FileRelation::create(&d, "b", &build, 2, 2).unwrap();
        let fp = FileRelation::create(&d, "p", &probe, 2, 2).unwrap();
        let cfg = DiskGraceConfig {
            mem_budget: budget,
            num_stripes: 2,
            stripe_pages: 2,
            ..DiskGraceConfig::new(&d)
        };
        let report = grace_join_files(&cfg, &fb, &fp).unwrap();
        assert_eq!(report.matches, want_matches, "{tag}");
        got.push((tag, report.checksum, report.degradation.len()));
        std::fs::remove_dir_all(&d).ok();
    }
    for (tag, checksum, _) in &got {
        assert_eq!(*checksum, want_checksum, "{tag}");
    }
    std::fs::remove_dir_all(&dir).ok();
}
