//! Chaos harness: GRACE joins under randomized fault plans.
//!
//! 100 proptest-generated fault plans (transient errors, short reads,
//! torn writes, slow disks, permanent failures — alone and combined)
//! run the same small join, with faults injected into the *input*
//! relations and every spill/output file. The contract under fire:
//!
//! * a run that returns `Ok` must produce exactly the fault-free match
//!   count and pair checksum — surviving a fault never changes the
//!   answer;
//! * a run that cannot survive must return a typed [`PhjError`] — the
//!   engine never panics and never fabricates output;
//! * retryable-only plans (transient + short + slow, which all clear
//!   within the retry budget) must always succeed;
//! * corruption (torn writes) is always *detected*: it either never
//!   reaches the answer (equal checksum) or surfaces as a
//!   corruption-typed error.
//!
//! The dynamic hybrid path runs the same gauntlet with a mid-run
//! budget revocation layered on top, so victim spilling under pressure
//! and fault recovery are proven to compose.

use std::sync::{Arc, OnceLock};

use proptest::prelude::*;

use phj::grace::{grace_join_with_sink, GraceConfig};
use phj::sink::{CountSink, JoinSink};
use phj_disk::{
    grace_join_files, DiskGraceConfig, DiskJoinMode, FaultPlan, FileRelation, LiveBudget,
    RetryPolicy,
};
use phj_memsim::NativeModel;
use phj_storage::{Relation, RelationBuilder, Schema, PAGE_SIZE};

fn temp_dir(tag: &str) -> std::path::PathBuf {
    static NEXT: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let n = NEXT.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("phj-chaos-{tag}-{}-{n}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Fixed chaos workload: small enough for 100 runs, large enough to
/// spill multiple pages per partition and degrade under tight budgets.
fn workload() -> (Relation, Relation) {
    let schema = Schema::key_payload(32);
    let mut build = RelationBuilder::new(schema.clone());
    let mut probe = RelationBuilder::new(schema);
    let mut t = [0u8; 32];
    for i in 0..900u32 {
        let k = i % 300; // 3 copies each, some skew-free fanout
        t[..4].copy_from_slice(&k.to_le_bytes());
        build.push_hashed(&t, phj::hash::hash_key(&k.to_le_bytes()));
    }
    for i in 0..600u32 {
        let k = i % 450; // half match, half miss
        t[..4].copy_from_slice(&k.to_le_bytes());
        probe.push_hashed(&t, phj::hash::hash_key(&k.to_le_bytes()));
    }
    (build.finish(), probe.finish())
}

/// Fault-free reference (in-memory engine; computed once).
fn baseline() -> (u64, u64) {
    static BASE: OnceLock<(u64, u64)> = OnceLock::new();
    *BASE.get_or_init(|| {
        let (build, probe) = workload();
        let mut sink = CountSink::new();
        grace_join_with_sink(
            &mut NativeModel,
            &GraceConfig { mem_budget: 1 << 30, ..Default::default() },
            &build,
            &probe,
            &mut sink,
        );
        (sink.matches(), sink.checksum())
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(100))]

    #[test]
    fn joins_under_fire_answer_correctly_or_fail_typed(
        seed in any::<u64>(),
        transient in 0u32..1500,
        short in 0u32..1000,
        torn in 0u32..120,
        slow in 0u32..500,
        permanent_raw in 0u32..200,
        budget_pages in 2usize..12,
    ) {
        // Permanent faults in ~20% of plans (0 in the rest).
        let permanent = permanent_raw.saturating_sub(160);
        let (want_matches, want_checksum) = baseline();
        let dir = temp_dir("run");
        let (build, probe) = workload();

        let plan = FaultPlan::seeded(seed)
            .transient(transient)
            .short_reads(short)
            .torn_writes(torn)
            .slow(slow, 20)
            .permanent(permanent);
        let retry = RetryPolicy { max_attempts: 4, backoff_micros: 5 };

        // Inputs are written fault-free (the workload must exist), then
        // all subsequent I/O — input scans, spills, output — runs under
        // the plan.
        let mut fb = FileRelation::create(&dir, "b", &build, 3, 2).unwrap();
        let mut fp = FileRelation::create(&dir, "p", &probe, 3, 2).unwrap();
        fb.set_faults(plan.clone(), retry);
        fp.set_faults(plan.clone(), retry);
        let cfg = DiskGraceConfig {
            mem_budget: budget_pages * PAGE_SIZE,
            num_stripes: 2,
            stripe_pages: 2,
            fault: plan.clone(),
            retry,
            ..DiskGraceConfig::new(&dir)
        };

        match grace_join_files(&cfg, &fb, &fp) {
            Ok(report) => {
                // Survived: the answer must be byte-for-byte the
                // fault-free one, whatever was injected along the way.
                prop_assert_eq!(report.matches, want_matches);
                prop_assert_eq!(report.checksum, want_checksum);
                prop_assert_eq!(report.output.num_tuples(), want_matches);
            }
            Err(e) => {
                // Typed failure is acceptable only when the plan carried
                // non-retryable faults; retryable-only plans must succeed.
                prop_assert!(
                    torn > 0 || permanent > 0,
                    "retryable-only plan failed: {e}"
                );
                // The error must render a useful diagnostic.
                let msg = e.to_string();
                prop_assert!(!msg.is_empty());
                if e.is_corruption() {
                    prop_assert!(torn > 0, "corruption error without torn writes: {e}");
                }
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    // The dynamic hybrid path under the same fire, plus memory
    // pressure: every plan also carries a mid-run budget revocation (a
    // shrink request the join observes at its first safe point), so
    // victim spilling and the fault machinery are exercised *together*.
    // Same contract — exact answer or typed error, never a panic — and
    // additionally every spill/re-absorb transition the run logs must
    // be well-formed, and a surviving run must have complied with the
    // revoked budget.
    #[test]
    fn dynamic_joins_under_fire_and_pressure_answer_or_fail_typed(
        seed in any::<u64>(),
        transient in 0u32..1500,
        short in 0u32..1000,
        torn in 0u32..120,
        slow in 0u32..500,
        permanent_raw in 0u32..200,
        budget_pages in 3usize..14,
        shrink_to_pages in 1usize..6,
    ) {
        let permanent = permanent_raw.saturating_sub(160);
        let (want_matches, want_checksum) = baseline();
        let dir = temp_dir("dyn");
        let (build, probe) = workload();

        let plan = FaultPlan::seeded(seed)
            .transient(transient)
            .short_reads(short)
            .torn_writes(torn)
            .slow(slow, 20)
            .permanent(permanent);
        let retry = RetryPolicy { max_attempts: 4, backoff_micros: 5 };

        let mut fb = FileRelation::create(&dir, "b", &build, 3, 2).unwrap();
        let mut fp = FileRelation::create(&dir, "p", &probe, 3, 2).unwrap();
        fb.set_faults(plan.clone(), retry);
        fp.set_faults(plan.clone(), retry);

        // The revocation: the limit drops below the configured budget
        // before the run starts, so the join meets it at its first
        // safe point — a genuinely mid-run shrink on every plan.
        let live = Arc::new(LiveBudget::new((budget_pages * PAGE_SIZE) as u64));
        live.request_shrink((shrink_to_pages * PAGE_SIZE) as u64);
        let shrunk = shrink_to_pages < budget_pages;

        let cfg = DiskGraceConfig {
            mem_budget: budget_pages * PAGE_SIZE,
            mode: DiskJoinMode::Dynamic,
            live_budget: Some(Arc::clone(&live)),
            num_stripes: 2,
            stripe_pages: 2,
            fault: plan.clone(),
            retry,
            ..DiskGraceConfig::new(&dir)
        };

        match grace_join_files(&cfg, &fb, &fp) {
            Ok(report) => {
                prop_assert_eq!(report.matches, want_matches);
                prop_assert_eq!(report.checksum, want_checksum);
                // The run ended on the revoked budget and acked it.
                prop_assert_eq!(report.final_budget, live.limit());
                prop_assert!(live.acked() <= live.limit());
                // Transitions journal real byte movements against the
                // live budget in force at the time.
                for t in &report.transitions {
                    prop_assert!(t.bytes > 0, "empty transition logged: {t}");
                    prop_assert!(t.budget > 0, "transition without budget: {t}");
                }
                if shrunk {
                    prop_assert!(
                        !report.transitions.is_empty(),
                        "revoked run spilled nothing (budget {budget_pages}p -> {shrink_to_pages}p)"
                    );
                }
            }
            Err(e) => {
                prop_assert!(
                    torn > 0 || permanent > 0,
                    "retryable-only plan failed: {e}"
                );
                let msg = e.to_string();
                prop_assert!(!msg.is_empty());
                if e.is_corruption() {
                    prop_assert!(torn > 0, "corruption error without torn writes: {e}");
                }
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    // Torn writes specifically: corruption must always be detected on
    // read-back — a torn page can never be silently joined.
    #[test]
    fn torn_pages_are_always_detected(
        seed in any::<u64>(),
        torn in 200u32..2000,
    ) {
        let (want_matches, want_checksum) = baseline();
        let dir = temp_dir("torn");
        let (build, probe) = workload();
        let plan = FaultPlan::seeded(seed).torn_writes(torn);
        let retry = RetryPolicy::default();
        let fb = FileRelation::create(&dir, "b", &build, 2, 2).unwrap();
        let fp = FileRelation::create(&dir, "p", &probe, 2, 2).unwrap();
        let cfg = DiskGraceConfig {
            mem_budget: 4 * PAGE_SIZE,
            num_stripes: 2,
            stripe_pages: 2,
            fault: plan.clone(),
            retry,
            ..DiskGraceConfig::new(&dir)
        };
        match grace_join_files(&cfg, &fb, &fp) {
            // A tear that only hit pages whose damage is benign (e.g. the
            // zero tail of a page with no tuples there) can slip through —
            // but then the answer must still be exact.
            Ok(report) => {
                prop_assert_eq!(report.matches, want_matches);
                prop_assert_eq!(report.checksum, want_checksum);
            }
            Err(e) => prop_assert!(
                e.is_corruption(),
                "torn-write plan failed non-corruption: {e}"
            ),
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
