//! End-to-end on-disk GRACE join: write two relations to striped files,
//! join them with real background I/O threads, and reopen the output via
//! its description file.
//!
//! Run with `cargo run --release -p phj-disk --example on_disk_join`.

use phj_disk::{grace_join_files, DiskGraceConfig, FileRelation};
use phj_workload::JoinSpec;

fn main() {
    let dir = std::env::temp_dir().join(format!("phj-on-disk-join-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();

    let spec = JoinSpec {
        build_tuples: 200_000,
        tuple_size: 100,
        matches_per_build: 2,
        pct_match: 100,
        seed: 1,
    };
    let gen = spec.generate();
    println!("writing {} + {} tuples as striped files...", gen.build.num_tuples(), gen.probe.num_tuples());
    let fb = FileRelation::create(&dir, "build", &gen.build, 4, 32).unwrap();
    let fp = FileRelation::create(&dir, "probe", &gen.probe, 4, 32).unwrap();
    fb.write_description(&dir, "build").unwrap();
    fp.write_description(&dir, "probe").unwrap();
    drop((fb, fp));

    // Reopen from the description files (a separate "session").
    let fb = FileRelation::open(&dir, "build").unwrap();
    let fp = FileRelation::open(&dir, "probe").unwrap();
    println!("reopened: build {} pages, probe {} pages", fb.num_pages(), fp.num_pages());

    let cfg = DiskGraceConfig {
        mem_budget: 4 << 20, // force several partitions
        ..DiskGraceConfig::new(&dir)
    };
    let report = grace_join_files(&cfg, &fb, &fp).unwrap();
    println!(
        "joined in {} partitions: partition {:.2}s + join {:.2}s, input stall {:.3}s, {} matches",
        report.num_partitions,
        report.partition_s,
        report.join_s,
        report.input_stall_s,
        report.matches
    );
    assert_eq!(report.matches, gen.expected_matches);
    report.output.write_description(&dir, "out").unwrap();
    let out = FileRelation::open(&dir, "out").unwrap();
    println!(
        "output relation on disk: {} tuples, {} pages, schema arity {}",
        out.num_tuples(),
        out.num_pages(),
        out.schema().arity()
    );
    std::fs::remove_dir_all(&dir).ok();
}
