#![warn(missing_docs)]

//! Offline stand-in for the subset of `criterion` 0.5 this workspace uses.
//!
//! The build environment has no network access to a crates registry, so
//! the workspace vendors a minimal, dependency-free harness with the same
//! surface: [`criterion_group!`]/[`criterion_main!`], [`Criterion`],
//! benchmark groups with [`Throughput`] and `sample_size`,
//! [`BenchmarkId`], `bench_function`/`bench_with_input`, `Bencher::iter`,
//! and [`black_box`].
//!
//! It is a *timer*, not a statistics engine: each benchmark runs one
//! warm-up iteration plus a few timed iterations (scaled down from the
//! configured sample size) and prints the mean wall-clock time, with
//! throughput when configured. There is no outlier analysis, no HTML
//! report, and no saved baseline — `cargo bench` output is a quick smoke
//! signal; the paper figures come from `crates/bench`'s own binaries.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque value barrier — forwards to [`std::hint::black_box`].
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Per-group throughput annotation.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier: `function_name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new<P: Display>(name: &str, parameter: P) -> Self {
        BenchmarkId { id: format!("{name}/{parameter}") }
    }

    /// Just the parameter (the group supplies the rest of the path).
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

/// Anything `bench_function` accepts as a name.
pub trait IntoBenchmarkId {
    /// Convert to the printed identifier.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// The benchmark driver handed to every benchmark function.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            throughput: None,
            _criterion: self,
        }
    }

    /// Benchmark directly on the driver (ungrouped).
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one("", name, self.sample_size, None, f);
        self
    }
}

/// A group of benchmarks sharing a name prefix, throughput annotation,
/// and sample size.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Annotate throughput for subsequent benchmarks in this group.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Set the number of samples (scaled down by this stand-in).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0);
        self.sample_size = n;
        self
    }

    /// Benchmark a closure.
    pub fn bench_function<I, F>(&mut self, id: I, f: F) -> &mut Self
    where
        I: IntoBenchmarkId,
        F: FnMut(&mut Bencher),
    {
        run_one(&self.name, &id.into_id(), self.sample_size, self.throughput, f);
        self
    }

    /// Benchmark a closure against a borrowed input.
    pub fn bench_with_input<I, T, F>(&mut self, id: I, input: &T, mut f: F) -> &mut Self
    where
        I: IntoBenchmarkId,
        T: ?Sized,
        F: FnMut(&mut Bencher, &T),
    {
        run_one(&self.name, &id.into_id(), self.sample_size, self.throughput, |b| {
            f(b, input)
        });
        self
    }

    /// End the group (prints nothing extra in this stand-in).
    pub fn finish(self) {}
}

/// Timer handed to the benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Run `f` once to warm up, then `iters` timed times, accumulating
    /// wall-clock time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f());
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one<F: FnOnce(&mut Bencher)>(
    group: &str,
    id: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    f: F,
) {
    // The real crate runs `sample_size` statistical samples; this
    // stand-in scales that down to a handful of iterations so heavyweight
    // join benches stay tolerable.
    let iters = (sample_size as u64).div_ceil(5).max(1);
    let mut b = Bencher { iters, elapsed: Duration::ZERO };
    f(&mut b);
    let mean = b.elapsed.as_secs_f64() / b.iters as f64;
    let label = if group.is_empty() { id.to_string() } else { format!("{group}/{id}") };
    match throughput {
        Some(Throughput::Elements(n)) if mean > 0.0 => {
            println!("{label}: mean {:.3} ms ({:.2} Melem/s)", mean * 1e3, n as f64 / mean / 1e6);
        }
        Some(Throughput::Bytes(n)) if mean > 0.0 => {
            println!("{label}: mean {:.3} ms ({:.2} MiB/s)", mean * 1e3, n as f64 / mean / (1 << 20) as f64);
        }
        _ => println!("{label}: mean {:.3} ms", mean * 1e3),
    }
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_and_ids_run_closures() {
        let mut c = Criterion::default();
        let mut runs = 0u32;
        {
            let mut g = c.benchmark_group("g");
            g.throughput(Throughput::Elements(4)).sample_size(10);
            g.bench_function("plain", |b| b.iter(|| runs += 1));
            g.bench_with_input(BenchmarkId::new("with", 3), &3u32, |b, &x| {
                b.iter(|| runs += x)
            });
            g.bench_with_input(BenchmarkId::from_parameter("p"), &1u32, |b, &x| {
                b.iter(|| runs += x)
            });
            g.finish();
        }
        c.bench_function("top", |b| b.iter(|| runs += 1));
        // 4 benches × (1 warmup + 2 timed) iterations each ran.
        assert!(runs >= 4 * 3);
    }
}
