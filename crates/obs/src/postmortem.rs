//! Postmortem dumps: parse, validate, and render `postmortem.json`.
//!
//! `phj-flightrec` writes the dump with a deliberately primitive
//! serializer (it runs on the crash path); this module is the reader
//! side — `phj blackbox` parses the dump, checks the v1 schema, draws a
//! lane-per-thread ASCII timeline (same renderer family as the region
//! heatmaps: fixed left gutter, width-clamped axis), and exports the
//! events as Perfetto instant/flow/span events alongside the existing
//! trace path.

use crate::json::{self, Json};
use phj_flightrec::{phase_name, EventKind};

/// Fault-kind names, indexed by the `code` the disk instrumentation
/// writes on [`EventKind::Fault`] events (the `phj_disk::Fault`
/// discriminant order).
pub const FAULT_NAMES: &[&str] = &["transient", "short_read", "torn_write", "slow", "permanent"];

/// Batch-stage names, indexed by the `code` on [`EventKind::Batch`].
pub const BATCH_STAGES: &[&str] = &["partition", "build", "probe"];

/// Per-thread accounting row of a postmortem.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PmThread {
    /// Ring thread id.
    pub tid: u64,
    /// Events written by this thread.
    pub written: u64,
    /// Events recovered into the timeline.
    pub recovered: u64,
    /// Events lost to ring wrap.
    pub dropped: u64,
}

/// One timeline event of a postmortem.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PmEvent {
    /// Nanoseconds since recorder install.
    pub t_ns: u64,
    /// Recording thread.
    pub tid: u64,
    /// Event kind.
    pub kind: EventKind,
    /// Per-kind discriminant.
    pub code: u16,
    /// First payload word.
    pub a: u64,
    /// Second payload word.
    pub b: u64,
}

/// A parsed `postmortem.json` (schema v1).
#[derive(Debug, Clone, PartialEq)]
pub struct Postmortem {
    /// Why the dump was written (`panic` / `typed_error` / `sigterm` /
    /// `manual`).
    pub cause_kind: String,
    /// Human-readable cause detail.
    pub cause_message: String,
    /// Recorder granularity at dump time (`phase` / `full`).
    pub mode: String,
    /// Per-thread ring capacity.
    pub capacity: u64,
    /// Per-thread accounting.
    pub threads: Vec<PmThread>,
    /// Nonzero per-kind totals.
    pub counts: Vec<(String, u64)>,
    /// Merged, time-ordered events.
    pub timeline: Vec<PmEvent>,
    /// Host-provided context (`key` → rendered JSON value), empty when
    /// the dump carried none.
    pub context: Vec<(String, String)>,
}

fn field_u64(doc: &Json, key: &str) -> Result<u64, String> {
    doc.get(key).and_then(Json::as_u64).ok_or(format!("missing or non-integer '{key}'"))
}

fn field_str(doc: &Json, key: &str) -> Result<String, String> {
    doc.get(key)
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or(format!("missing or non-string '{key}'"))
}

impl Postmortem {
    /// Parse a postmortem dump. Structural errors (wrong schema
    /// version, missing fields, unknown event kinds) are reported with
    /// the offending key; call [`Self::validate`] afterwards for the
    /// semantic checks.
    pub fn parse(text: &str) -> Result<Postmortem, String> {
        let doc = json::parse(text).map_err(|e| e.to_string())?;
        let version = field_u64(&doc, "schema_version")?;
        if version != 1 {
            return Err(format!("unsupported postmortem schema_version {version}"));
        }
        let cause = doc.get("cause").ok_or("missing 'cause'")?;
        let threads = doc
            .get("threads")
            .and_then(Json::as_arr)
            .ok_or("missing 'threads' array")?
            .iter()
            .map(|t| {
                Ok(PmThread {
                    tid: field_u64(t, "tid")?,
                    written: field_u64(t, "written")?,
                    recovered: field_u64(t, "recovered")?,
                    dropped: field_u64(t, "dropped")?,
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        let counts = match doc.get("counts") {
            Some(Json::Obj(pairs)) => pairs
                .iter()
                .map(|(k, v)| Ok((k.clone(), v.as_u64().ok_or("non-integer count")?)))
                .collect::<Result<Vec<_>, String>>()?,
            _ => return Err("missing 'counts' object".into()),
        };
        let timeline = doc
            .get("timeline")
            .and_then(Json::as_arr)
            .ok_or("missing 'timeline' array")?
            .iter()
            .map(|e| {
                let kind_name = field_str(e, "kind")?;
                let kind = EventKind::from_name(&kind_name)
                    .ok_or(format!("unknown event kind '{kind_name}'"))?;
                let code = field_u64(e, "code")?;
                Ok(PmEvent {
                    t_ns: field_u64(e, "t_ns")?,
                    tid: field_u64(e, "tid")?,
                    kind,
                    code: u16::try_from(code).map_err(|_| format!("code {code} overflows u16"))?,
                    a: field_u64(e, "a")?,
                    b: field_u64(e, "b")?,
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        let context = match doc.get("context") {
            Some(Json::Obj(pairs)) => {
                pairs.iter().map(|(k, v)| (k.clone(), v.render())).collect()
            }
            Some(_) => return Err("'context' is not an object".into()),
            None => Vec::new(),
        };
        Ok(Postmortem {
            cause_kind: field_str(cause, "kind")?,
            cause_message: field_str(cause, "message")?,
            mode: field_str(&doc, "mode")?,
            capacity: field_u64(&doc, "capacity")?,
            threads,
            counts,
            timeline,
            context,
        })
    }

    /// Semantic checks over a parsed dump: known cause and mode, a
    /// time-ordered timeline, per-thread accounting that balances, and
    /// every timeline event attributed to a registered thread.
    pub fn validate(&self) -> Result<(), String> {
        if !["panic", "typed_error", "sigterm", "manual"].contains(&self.cause_kind.as_str()) {
            return Err(format!("unknown cause kind '{}'", self.cause_kind));
        }
        if self.mode != "phase" && self.mode != "full" {
            return Err(format!("unknown mode '{}'", self.mode));
        }
        for t in &self.threads {
            if t.recovered + t.dropped != t.written {
                return Err(format!(
                    "thread {} accounting: {} recovered + {} dropped != {} written",
                    t.tid, t.recovered, t.dropped, t.written
                ));
            }
        }
        if self.timeline.windows(2).any(|w| w[0].t_ns > w[1].t_ns) {
            return Err("timeline is not time-ordered".into());
        }
        for ev in &self.timeline {
            if !self.threads.iter().any(|t| t.tid == ev.tid) {
                return Err(format!("timeline event from unregistered thread {}", ev.tid));
            }
        }
        for (kind, n) in &self.counts {
            if EventKind::from_name(kind).is_none() {
                return Err(format!("count for unknown event kind '{kind}'"));
            }
            if *n == 0 {
                return Err(format!("zero count for '{kind}'"));
            }
        }
        Ok(())
    }

    /// Total events recovered into the timeline.
    pub fn recovered(&self) -> u64 {
        self.threads.iter().map(|t| t.recovered).sum()
    }

    /// Total events written before the dump.
    pub fn written(&self) -> u64 {
        self.threads.iter().map(|t| t.written).sum()
    }

    /// Total events lost to ring wrap.
    pub fn dropped(&self) -> u64 {
        self.threads.iter().map(|t| t.dropped).sum()
    }

    /// Render the postmortem as text: a header, one ASCII lane per
    /// thread (glyph per event, last writer wins per column), and the
    /// tail of the merged timeline. `width` clamps the lane axis;
    /// `tail` limits the timeline listing (0 = all).
    pub fn render(&self, width: usize, tail: usize) -> String {
        let width = width.clamp(20, 200);
        let mut out = String::new();
        out.push_str(&format!(
            "postmortem: {} — {} (mode {}, ring capacity {})\n",
            self.cause_kind, self.cause_message, self.mode, self.capacity
        ));
        let (t0, t1) = match (self.timeline.first(), self.timeline.last()) {
            (Some(a), Some(b)) => (a.t_ns, b.t_ns),
            _ => (0, 0),
        };
        out.push_str(&format!(
            "threads: {}, events: {} written / {} recovered / {} dropped, span {:.3} ms\n\n",
            self.threads.len(),
            self.written(),
            self.recovered(),
            self.dropped(),
            (t1 - t0) as f64 / 1e6
        ));

        // Lanes: one row per thread, events placed proportionally on a
        // shared time axis (the heatmap convention: gutter, |...|).
        let lane_w = width.saturating_sub(10).max(10);
        let span = (t1 - t0).max(1);
        for t in &self.threads {
            let mut lane = vec![' '; lane_w];
            for ev in self.timeline.iter().filter(|e| e.tid == t.tid) {
                let col = ((ev.t_ns - t0) as u128 * (lane_w as u128 - 1) / span as u128) as usize;
                lane[col] = ev.kind.glyph();
            }
            out.push_str(&format!(
                "tid {:>3} |{}|\n",
                t.tid,
                lane.iter().collect::<String>()
            ));
        }
        out.push_str(
            "         [ enter  ] exit  F fault  r retry  D degrade  s spill  f flush\n",
        );
        out.push_str(
            "         G grant  w steal  t task  . batch  e mem-epoch  M mark\n\n",
        );

        // Timeline tail: the forensically interesting end of the run.
        let total = self.timeline.len();
        let shown = if tail == 0 { total } else { tail.min(total) };
        if shown < total {
            out.push_str(&format!("timeline (last {shown} of {total} events):\n"));
        } else {
            out.push_str(&format!("timeline ({total} events):\n"));
        }
        for ev in &self.timeline[total - shown..] {
            out.push_str(&format!(
                "  +{:>10.3} ms  tid {:>2}  {}\n",
                (ev.t_ns - t0) as f64 / 1e6,
                ev.tid,
                describe(ev)
            ));
        }
        out
    }

    /// Export as a Chrome Trace Event / Perfetto JSON document: thread
    /// metadata per lane, `X` spans reconstructed from phase
    /// enter/exit pairs, instant events (`i`) for point events, and
    /// flow arrows (`s`→`f`) from each degradation step to the phase it
    /// triggered.
    pub fn to_trace(&self) -> Json {
        let mut events: Vec<Json> = Vec::new();
        events.push(Json::obj(vec![
            ("name", Json::Str("process_name".into())),
            ("ph", Json::Str("M".into())),
            ("pid", Json::U64(1)),
            ("tid", Json::U64(0)),
            (
                "args",
                Json::obj(vec![("name", Json::Str("phj postmortem".into()))]),
            ),
        ]));
        for t in &self.threads {
            events.push(Json::obj(vec![
                ("name", Json::Str("thread_name".into())),
                ("ph", Json::Str("M".into())),
                ("pid", Json::U64(1)),
                ("tid", Json::U64(t.tid)),
                (
                    "args",
                    Json::obj(vec![("name", Json::Str(format!("flightrec tid {}", t.tid)))]),
                ),
            ]));
        }

        let us = |ns: u64| Json::F64(ns as f64 / 1e3);
        // Per-thread stacks pair phase enters with exits into X spans;
        // flow ids bind degradation steps to the next phase entered on
        // the same thread.
        let mut stacks: std::collections::BTreeMap<u64, Vec<(u16, u64)>> = Default::default();
        let mut pending_flow: std::collections::BTreeMap<u64, Vec<u64>> = Default::default();
        let mut next_flow = 1u64;
        for ev in &self.timeline {
            match ev.kind {
                EventKind::PhaseEnter => {
                    stacks.entry(ev.tid).or_default().push((ev.code, ev.t_ns));
                    for flow in pending_flow.remove(&ev.tid).unwrap_or_default() {
                        events.push(Json::obj(vec![
                            ("name", Json::Str("degrade→phase".into())),
                            ("cat", Json::Str("flow".into())),
                            ("ph", Json::Str("f".into())),
                            ("bp", Json::Str("e".into())),
                            ("id", Json::U64(flow)),
                            ("ts", us(ev.t_ns)),
                            ("pid", Json::U64(1)),
                            ("tid", Json::U64(ev.tid)),
                        ]));
                    }
                }
                EventKind::PhaseExit => {
                    let open = stacks.entry(ev.tid).or_default().pop();
                    // Unbalanced exits (recording began mid-phase) are
                    // dropped rather than guessed at.
                    if let Some((code, start)) = open {
                        events.push(Json::obj(vec![
                            ("name", Json::Str(phase_name(code).to_string())),
                            ("cat", Json::Str("phase".into())),
                            ("ph", Json::Str("X".into())),
                            ("ts", us(start)),
                            ("dur", us(ev.t_ns - start)),
                            ("pid", Json::U64(1)),
                            ("tid", Json::U64(ev.tid)),
                        ]));
                    }
                }
                kind => {
                    let mut pairs = vec![
                        ("name", Json::Str(describe(ev))),
                        ("cat", Json::Str(kind.name().to_string())),
                        ("ph", Json::Str("i".into())),
                        ("s", Json::Str("t".into())),
                        ("ts", us(ev.t_ns)),
                        ("pid", Json::U64(1)),
                        ("tid", Json::U64(ev.tid)),
                    ];
                    if kind == EventKind::Degrade {
                        pairs.push(("id", Json::U64(next_flow)));
                        events.push(Json::obj(vec![
                            ("name", Json::Str("degrade→phase".into())),
                            ("cat", Json::Str("flow".into())),
                            ("ph", Json::Str("s".into())),
                            ("id", Json::U64(next_flow)),
                            ("ts", us(ev.t_ns)),
                            ("pid", Json::U64(1)),
                            ("tid", Json::U64(ev.tid)),
                        ]));
                        pending_flow.entry(ev.tid).or_default().push(next_flow);
                        next_flow += 1;
                    }
                    events.push(Json::obj(pairs));
                }
            }
        }
        // Phases still open at the dump (the crash happened inside
        // them) close at the last timestamp so they stay visible.
        let end = self.timeline.last().map_or(0, |e| e.t_ns);
        for (tid, stack) in stacks {
            for (code, start) in stack.into_iter().rev() {
                events.push(Json::obj(vec![
                    ("name", Json::Str(format!("{} (unclosed)", phase_name(code)))),
                    ("cat", Json::Str("phase".into())),
                    ("ph", Json::Str("X".into())),
                    ("ts", us(start)),
                    ("dur", us(end.saturating_sub(start))),
                    ("pid", Json::U64(1)),
                    ("tid", Json::U64(tid)),
                ]));
            }
        }
        Json::obj(vec![
            ("traceEvents", Json::Arr(events)),
            ("displayTimeUnit", Json::Str("ms".into())),
        ])
    }
}

/// Human-readable one-liner for a timeline event.
pub fn describe(ev: &PmEvent) -> String {
    match ev.kind {
        EventKind::PhaseEnter => format!("enter {}", phase_name(ev.code)),
        EventKind::PhaseExit => format!("exit {}", phase_name(ev.code)),
        EventKind::Spill => {
            format!("spill partition {}: page {} sealed ({} tuples so far)", ev.code, ev.a, ev.b)
        }
        EventKind::Flush => {
            format!("flush: {} partitions, {} pages, {} tuples", ev.code, ev.a, ev.b)
        }
        EventKind::Degrade => match ev.code {
            0 => format!("degrade: recursive repartition depth {} fanout {}", ev.a, ev.b),
            _ => format!("degrade: block-NLJ fallback depth {} chunks {}", ev.a, ev.b),
        },
        EventKind::Fault => format!(
            "fault injected: {} (page {})",
            FAULT_NAMES.get(ev.code as usize).unwrap_or(&"unknown"),
            ev.a
        ),
        EventKind::Retry => format!(
            "{} retry page {} attempt {}",
            if ev.code == 0 { "read" } else { "write" },
            ev.a,
            ev.b
        ),
        EventKind::Steal => {
            if ev.code == 1 {
                format!("steal: worker {} took from worker {}", ev.a, ev.b)
            } else {
                format!("steal miss: worker {} found all deques empty", ev.a)
            }
        }
        EventKind::Task => format!("task {} on worker {}", ev.a, ev.code),
        EventKind::Batch => format!(
            "{} batch {} (group {})",
            BATCH_STAGES.get(ev.code as usize).unwrap_or(&"stage"),
            ev.a,
            ev.b
        ),
        EventKind::MemEpoch => format!("mem epoch {} at cycle {}", ev.a, ev.b),
        EventKind::Grant => match ev.code {
            phj_flightrec::grant_op::ACQUIRE => {
                format!("query {} granted {} bytes", ev.a, ev.b)
            }
            phj_flightrec::grant_op::RELEASE => {
                format!("query {} released {} bytes", ev.a, ev.b)
            }
            phj_flightrec::grant_op::RESIZE => {
                format!("query {} grant resized to {} bytes", ev.a, ev.b)
            }
            phj_flightrec::grant_op::SHED => {
                format!("query {} asked to shed to {} bytes", ev.a, ev.b)
            }
            phj_flightrec::grant_op::SPILL_VICTIM => {
                format!("victim partition {} spilled ({} bytes freed)", ev.a, ev.b)
            }
            phj_flightrec::grant_op::ABSORB => {
                format!("partition {} re-absorbed into memory ({} bytes)", ev.a, ev.b)
            }
            phj_flightrec::grant_op::TRACE => {
                format!("trace {:#018x} bound to query {}", ev.a, ev.b)
            }
            _ => format!("memory budget {} bytes (query {})", ev.b, ev.a),
        },
        EventKind::Mark => format!("mark code={} a={} b={}", ev.code, ev.a, ev.b),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> &'static str {
        r#"{
  "schema_version": 1,
  "cause": {"kind": "typed_error", "message": "disk: injected permanent error"},
  "mode": "phase",
  "capacity": 64,
  "threads": [{"tid": 0, "written": 7, "recovered": 7, "dropped": 0},
              {"tid": 1, "written": 2, "recovered": 1, "dropped": 1}],
  "counts": {"phase_enter": 3, "phase_exit": 1, "fault": 2, "retry": 1, "degrade": 1, "grant": 1},
  "timeline": [
    {"t_ns": 100, "tid": 0, "kind": "phase_enter", "code": 2, "a": 1, "b": 0},
    {"t_ns": 150, "tid": 0, "kind": "grant", "code": 0, "a": 0, "b": 1048576},
    {"t_ns": 200, "tid": 0, "kind": "phase_enter", "code": 3, "a": 2, "b": 0},
    {"t_ns": 300, "tid": 1, "kind": "fault", "code": 0, "a": 12, "b": 0},
    {"t_ns": 400, "tid": 0, "kind": "retry", "code": 0, "a": 12, "b": 1},
    {"t_ns": 500, "tid": 0, "kind": "fault", "code": 4, "a": 13, "b": 0},
    {"t_ns": 600, "tid": 0, "kind": "degrade", "code": 0, "a": 1, "b": 8},
    {"t_ns": 700, "tid": 0, "kind": "phase_exit", "code": 3, "a": 2, "b": 0}
  ],
  "context": {"degradation_depth": 1}
}"#
    }

    #[test]
    fn parses_and_validates_the_v1_schema() {
        let pm = Postmortem::parse(sample()).unwrap();
        pm.validate().unwrap();
        assert_eq!(pm.cause_kind, "typed_error");
        assert_eq!(pm.mode, "phase");
        assert_eq!(pm.threads.len(), 2);
        assert_eq!(pm.written(), 9);
        assert_eq!(pm.recovered(), 8);
        assert_eq!(pm.dropped(), 1);
        assert_eq!(pm.timeline.len(), 8);
        assert_eq!(pm.timeline[3].kind, EventKind::Fault);
        assert_eq!(pm.context, vec![("degradation_depth".to_string(), "1".to_string())]);
    }

    #[test]
    fn parse_rejects_bad_schema_and_unknown_kinds() {
        let bad_version = sample().replace("\"schema_version\": 1", "\"schema_version\": 9");
        assert!(Postmortem::parse(&bad_version).unwrap_err().contains("schema_version"));
        let bad_kind = sample().replace("\"kind\": \"fault\"", "\"kind\": \"exploded\"");
        assert!(Postmortem::parse(&bad_kind).unwrap_err().contains("exploded"));
    }

    #[test]
    fn validate_catches_unbalanced_accounting_and_disorder() {
        let mut pm = Postmortem::parse(sample()).unwrap();
        pm.threads[0].dropped = 5;
        assert!(pm.validate().unwrap_err().contains("accounting"));

        let mut pm = Postmortem::parse(sample()).unwrap();
        pm.timeline.swap(0, 7);
        assert!(pm.validate().unwrap_err().contains("not time-ordered"));

        let mut pm = Postmortem::parse(sample()).unwrap();
        pm.timeline[0].tid = 99;
        assert!(pm.validate().unwrap_err().contains("unregistered thread"));

        let mut pm = Postmortem::parse(sample()).unwrap();
        pm.cause_kind = "gremlins".into();
        assert!(pm.validate().unwrap_err().contains("cause"));
    }

    #[test]
    fn render_shows_fault_degradation_and_phases_in_order() {
        let pm = Postmortem::parse(sample()).unwrap();
        let text = pm.render(100, 0);
        assert!(text.contains("postmortem: typed_error"));
        assert!(text.contains("tid   0 |"));
        assert!(text.contains("tid   1 |"));
        let fault = text.find("fault injected: permanent (page 13)").unwrap();
        let degrade = text.find("degrade: recursive repartition depth 1 fanout 8").unwrap();
        let exit = text.find("exit partition").unwrap();
        assert!(fault < degrade && degrade < exit, "events render in time order");
        // Width clamps like the heatmaps (lane rows only — the header
        // and timeline listing are prose).
        let narrow = pm.render(5, 0);
        assert!(narrow
            .lines()
            .filter(|l| l.starts_with("tid"))
            .all(|l| l.chars().count() <= 30));
        let wide = pm.render(500, 0);
        assert!(wide
            .lines()
            .filter(|l| l.starts_with("tid"))
            .all(|l| l.chars().count() <= 210));
    }

    #[test]
    fn trace_export_pairs_phases_and_links_flows() {
        let pm = Postmortem::parse(sample()).unwrap();
        let doc = pm.to_trace();
        let events = doc.get("traceEvents").and_then(Json::as_arr).unwrap();
        let phase_x: Vec<&Json> = events
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("X"))
            .collect();
        // One closed pair (partition) + one unclosed (grace_join).
        assert_eq!(phase_x.len(), 2);
        assert!(phase_x.iter().any(|e| {
            e.get("name").and_then(Json::as_str) == Some("partition")
        }));
        assert!(phase_x.iter().any(|e| {
            e.get("name").and_then(Json::as_str) == Some("grace_join (unclosed)")
        }));
        let instants = events
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("i"))
            .count();
        assert_eq!(instants, 5, "grant + 2 faults + retry + degrade");
        let flow_starts = events
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("s"))
            .count();
        assert_eq!(flow_starts, 1, "the degradation step starts a flow");
        // The flow never terminated (no later phase_enter), so no `f`.
        let flow_ends = events
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("f"))
            .count();
        assert_eq!(flow_ends, 0);
        // Valid JSON end to end.
        let rendered = doc.render();
        assert!(json::parse(&rendered).is_ok());
    }
}
