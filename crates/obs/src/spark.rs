//! ASCII sparklines for sampled telemetry series.
//!
//! A sparkline compresses one metric's ring samples into a single line
//! of shade glyphs, so the CLI can show the *shape* of a run — ramp-up,
//! plateaus, stalls — without a plotting stack. The same renderer backs
//! the end-of-run `timeseries` summary and the live `--dashboard` view.

use crate::report::{TimeseriesRow, TimeseriesSection};

/// Default sparkline width in characters.
pub const DEFAULT_WIDTH: usize = 60;

/// Glyph ramp, lowest to highest (ASCII-only, same spirit as the
/// heatmap's shade ramp).
const RAMP: &[u8] = b"_.:-=+*#%@";

/// Render `values` as a one-line sparkline at most `width` characters
/// wide. An empty series renders a single `-` (the "no samples" marker
/// shared with the heatmap); longer series are downsampled by taking the
/// max of each chunk, so short spikes stay visible. Values are
/// normalized to the series' own min..max; a constant series renders at
/// the bottom of the ramp.
pub fn sparkline(values: &[u64], width: usize) -> String {
    let width = width.max(1);
    if values.is_empty() {
        return "-".to_string();
    }
    // Downsample to at most `width` points: chunk and keep the max.
    let chunks = values.len().div_ceil(width);
    let points: Vec<u64> = values
        .chunks(chunks)
        .map(|c| c.iter().copied().max().unwrap_or(0))
        .collect();
    let lo = points.iter().copied().min().unwrap_or(0);
    let hi = points.iter().copied().max().unwrap_or(0);
    let span = hi - lo;
    points
        .iter()
        .map(|&v| {
            let idx = if span == 0 {
                0
            } else {
                (((v - lo) as f64 / span as f64) * (RAMP.len() - 1) as f64).round() as usize
            };
            RAMP[idx.min(RAMP.len() - 1)] as char
        })
        .collect()
}

/// Render a report's `timeseries` section as a terminal block: one row
/// per metric with sparkline, min, max, and last. `width` bounds the
/// sparkline column.
pub fn render_timeseries(sec: &TimeseriesSection, width: usize) -> String {
    let name_w = sec.series.iter().map(|r| r.name.len()).max().unwrap_or(6).max(6);
    let mut out = format!(
        "telemetry timeseries ({} series, {}ms interval, ring capacity {})\n",
        sec.series.len(),
        sec.interval_ms,
        sec.capacity
    );
    for row in &sec.series {
        out.push_str(&render_row(row, name_w, width));
    }
    out
}

fn render_row(row: &TimeseriesRow, name_w: usize, width: usize) -> String {
    let values: Vec<u64> = row.points.iter().map(|&(_, v)| v).collect();
    format!(
        "{:>name_w$} |{:<width$}| min {} max {} last {}\n",
        row.name,
        sparkline(&values, width),
        row.min,
        row.max,
        row.last,
        width = width.max(1),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(name: &str, values: &[u64]) -> TimeseriesRow {
        TimeseriesRow {
            name: name.into(),
            min: values.iter().copied().min().unwrap_or(0),
            max: values.iter().copied().max().unwrap_or(0),
            last: values.last().copied().unwrap_or(0),
            points: values.iter().enumerate().map(|(i, &v)| (i as u64, v)).collect(),
        }
    }

    #[test]
    fn empty_series_renders_dash_not_nan() {
        assert_eq!(sparkline(&[], 40), "-");
        assert_eq!(sparkline(&[], 1), "-");
        let text = render_timeseries(
            &TimeseriesSection {
                interval_ms: 10,
                capacity: 64,
                series: vec![row("phj_empty_total", &[])],
            },
            40,
        );
        assert!(text.contains("|-"), "{text}");
        assert!(!text.contains("NaN"));
    }

    #[test]
    fn constant_and_zero_series_do_not_divide_by_zero() {
        // All-zero and all-equal series exercise the span == 0 path.
        assert_eq!(sparkline(&[0, 0, 0], 10), "___");
        assert_eq!(sparkline(&[7, 7, 7, 7], 10), "____");
    }

    #[test]
    fn ramp_tracks_magnitude() {
        let s = sparkline(&[0, 5, 10], 10);
        assert_eq!(s.len(), 3);
        let ranks: Vec<usize> =
            s.bytes().map(|b| RAMP.iter().position(|&r| r == b).unwrap()).collect();
        assert!(ranks[0] < ranks[1] && ranks[1] < ranks[2], "{s}");
        assert_eq!(s.as_bytes()[0], RAMP[0]);
        assert_eq!(s.as_bytes()[2], *RAMP.last().unwrap());
    }

    #[test]
    fn clamps_to_width_20_and_200() {
        let long: Vec<u64> = (0..1000).collect();
        for width in [20usize, 200] {
            let s = sparkline(&long, width);
            assert!(s.len() <= width, "width {width} got {}", s.len());
            // Downsampling keeps the spike: the last chunk holds the max.
            assert_eq!(s.as_bytes()[s.len() - 1], *RAMP.last().unwrap());
        }
        // Series shorter than the width are not stretched.
        assert_eq!(sparkline(&[1, 2, 3], 200).len(), 3);
    }

    #[test]
    fn summary_block_lists_every_series() {
        let sec = TimeseriesSection {
            interval_ms: 10,
            capacity: 128,
            series: vec![row("phj_a_total", &[1, 4, 9]), row("phj_b_depth", &[3, 3])],
        };
        for width in [20usize, 200] {
            let text = render_timeseries(&sec, width);
            assert!(text.contains("phj_a_total"));
            assert!(text.contains("phj_b_depth"));
            assert!(text.contains("min 1 max 9 last 9"));
            assert!(text.contains("min 3 max 3 last 3"));
            // Sparkline column respects the width bound.
            for line in text.lines().skip(1) {
                let inner = line.split('|').nth(1).unwrap();
                assert!(inner.len() <= width.max(1) || inner.trim().len() <= width);
            }
        }
    }
}
