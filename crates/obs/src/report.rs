//! Structured run reports: config fingerprint + per-span metrics +
//! derived rates, serialized as JSON.

use crate::json::{self, Json};
use crate::span::{Recorder, SpanRecord};
use phj_memsim::{
    Breakdown, CacheStats, LatencyHistogram, RegionStats, Snapshot, LATENCY_BUCKETS,
};

/// Report format version (bump on breaking layout changes).
pub const SCHEMA_VERSION: u64 = 1;

/// One region's attribution entry in a report's `regions` section.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegionReport {
    /// Region kind name (`"hash_bucket_headers"`, `"hash_cells"`, …).
    pub name: String,
    /// Counters charged to this region.
    pub stats: RegionStats,
    /// Exposed-latency histogram of the region's demand lines.
    pub hist: LatencyHistogram,
}

/// One partition's row of the skew profile: how unevenly the partition
/// phase spread work, and which pairs drove the misses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SkewRow {
    /// Partition index (the `index` meta of its `pair` span).
    pub index: u64,
    /// Build tuples in the pair.
    pub build_tuples: u64,
    /// Probe tuples in the pair.
    pub probe_tuples: u64,
    /// Simulated cycles the pair took.
    pub cycles: u64,
    /// L2 hits (L1 misses served from L2) in the pair.
    pub l2_hits: u64,
    /// Full memory misses in the pair.
    pub mem_misses: u64,
}

/// The optional memory-access attribution section of a [`RunReport`]:
/// per-region counters/histograms plus the per-partition skew profile.
/// Present only when the run profiled regions (`--profile-regions`).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RegionsSection {
    /// Per-region attribution, in [`RegionKind`](phj_memsim::RegionKind)
    /// order.
    pub regions: Vec<RegionReport>,
    /// Per-partition skew rows (empty when the run had no `pair` spans).
    pub skew: Vec<SkewRow>,
}

impl RegionsSection {
    /// Lift an engine's [`RegionProfiler`](phj_memsim::RegionProfiler)
    /// into report form (one entry per kind, in
    /// [`RegionKind::ALL`](phj_memsim::RegionKind::ALL) order). The skew
    /// rows are filled in separately by the caller.
    pub fn from_profiler(p: &phj_memsim::RegionProfiler) -> Self {
        RegionsSection {
            regions: phj_memsim::RegionKind::ALL
                .into_iter()
                .map(|k| RegionReport {
                    name: k.name().to_string(),
                    stats: p.stats(k),
                    hist: *p.hist(k),
                })
                .collect(),
            skew: Vec::new(),
        }
    }

    /// Fold another section (e.g. one worker lane's) into this one.
    /// Counters add and histograms merge region-by-region, so the region
    /// conservation invariant checked by
    /// [`RunReport::validate`] holds for the merged section exactly when
    /// the run totals are likewise summed across lanes. Skew rows are
    /// concatenated.
    pub fn merge(&mut self, other: &RegionsSection) {
        if self.regions.is_empty() {
            self.regions = other.regions.clone();
        } else {
            assert_eq!(
                self.regions.len(),
                other.regions.len(),
                "merge requires identical region layouts"
            );
            for (a, b) in self.regions.iter_mut().zip(&other.regions) {
                assert_eq!(a.name, b.name, "merge requires matching region order");
                a.stats.merge(&b.stats);
                a.hist.merge(&b.hist);
            }
        }
        self.skew.extend(other.skew.iter().copied());
    }
}

/// One degradation-ladder step in a report's `faults` section: what the
/// disk engine did about a build partition that outgrew the memory
/// budget.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DegradationRow {
    /// Hierarchical partition label (`"3"`, `"3.1"`, …).
    pub partition: String,
    /// Repartition depth at which the step was taken.
    pub depth: u64,
    /// Size of the oversized partition in bytes.
    pub bytes: u64,
    /// The memory budget it failed to fit.
    pub budget: u64,
    /// The step taken: `"repartition"` or `"nlj_fallback"`.
    pub action: String,
    /// Action parameter: repartition fanout, or nested-loop chunk count.
    pub detail: u64,
}

/// The optional fault-and-resilience section of a [`RunReport`]:
/// injected-fault and retry counters from a fault-injecting disk run,
/// plus any degradation-ladder events. Present only when the run
/// attached a fault plan or degraded; like `regions`, the JSON key is
/// omitted entirely when absent so undisturbed reports stay
/// byte-identical to older ones.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultsSection {
    /// Total faults injected across all fault kinds.
    pub faults_injected: u64,
    /// Read attempts repeated after retryable failures.
    pub read_retries: u64,
    /// Write attempts repeated after retryable failures.
    pub write_retries: u64,
    /// Microseconds of injected slow-disk stall.
    pub slow_stall_us: u64,
    /// Degradation steps taken for oversized partitions.
    pub degradation: Vec<DegradationRow>,
}

/// One sampled metric series in a report's `timeseries` section.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TimeseriesRow {
    /// Metric family name (`phj_exec_tasks_total`, …).
    pub name: String,
    /// Smallest sampled value.
    pub min: u64,
    /// Largest sampled value.
    pub max: u64,
    /// Final sampled value.
    pub last: u64,
    /// `(t_ns, value)` samples, oldest first (`t_ns` relative to the
    /// sampler's start).
    pub points: Vec<(u64, u64)>,
}

/// The optional live-telemetry section of a [`RunReport`]: the sampler
/// ring's contents at end of run, one row per metric family. Present
/// only when the run enabled telemetry sampling (`--sample-interval` /
/// `--metrics-addr` / `--dashboard`); like `regions` and `faults`, the
/// JSON key is omitted entirely when absent so untelemetered reports
/// stay byte-identical to older ones.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TimeseriesSection {
    /// Sampling interval in milliseconds.
    pub interval_ms: u64,
    /// Ring capacity in samples (rows hold at most this many points).
    pub capacity: u64,
    /// Per-metric series, in scrape (name) order.
    pub series: Vec<TimeseriesRow>,
}

/// The optional flight-recorder summary section of a [`RunReport`]:
/// per-kind event totals and exact ring-wrap drop accounting from the
/// process flight recorder (`phj-flightrec`). Deliberately carries no
/// timestamps, so two identical deterministic runs summarize
/// byte-identically (the `setarch -R` byte-identity gate runs with the
/// recorder on). Like the other optional sections, the JSON key is
/// omitted entirely when absent.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FlightrecSection {
    /// Recording granularity (`"phase"` or `"full"`).
    pub mode: String,
    /// Per-thread ring capacity in events.
    pub capacity: u64,
    /// Threads that recorded at least one event.
    pub threads: u64,
    /// Total events written across all rings.
    pub written: u64,
    /// Events lost to ring wrap (`written - recovered`).
    pub dropped: u64,
    /// Nonzero per-kind totals, in event-kind order.
    pub counts: Vec<(String, u64)>,
}

/// Internal consistency of a `flightrec` section: known mode, known
/// nonzero event kinds, and counts that sum to the write total.
fn validate_flightrec(sec: &FlightrecSection) -> Result<(), String> {
    if sec.mode != "phase" && sec.mode != "full" {
        return Err(format!("flightrec mode '{}' is not phase|full", sec.mode));
    }
    if sec.dropped > sec.written {
        return Err(format!(
            "flightrec dropped {} exceeds written {}",
            sec.dropped, sec.written
        ));
    }
    let mut sum = 0u64;
    for (kind, n) in &sec.counts {
        if phj_flightrec::EventKind::from_name(kind).is_none() {
            return Err(format!("flightrec count for unknown event kind '{kind}'"));
        }
        if *n == 0 {
            return Err(format!("flightrec carries a zero count for '{kind}'"));
        }
        sum += n;
    }
    if sum != sec.written {
        return Err(format!(
            "flightrec counts sum to {sum} but written is {}",
            sec.written
        ));
    }
    if sec.written > 0 && sec.threads == 0 {
        return Err("flightrec wrote events with zero threads".into());
    }
    Ok(())
}

/// Canonical query lifecycle state names, in state-machine order. The
/// daemon's per-query state machine serializes into these names (both
/// in the `query_trace` report section and on the wire in `Status`
/// responses, where the index here is the state code). Append-only:
/// codes are written into protocol frames and captured reports.
pub const QUERY_STATES: [&str; 7] = [
    "received",
    "queued",
    "admitted",
    "executing",
    "responding",
    "done",
    "failed",
];

/// The optional per-query trace section of a [`RunReport`]: the server
/// daemon's lifecycle record for the one query that produced this
/// report — wall-clock breakdown (queue wait, grant wait, execution,
/// serialization) plus the state transitions with their offsets from
/// arrival. Present only when the daemon ran with tracing enabled;
/// like the other optional sections, the JSON key is omitted entirely
/// when absent so untraced reports stay byte-identical.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct QueryTraceSection {
    /// Client-minted trace id (0 when the client sent none).
    pub trace_id: u64,
    /// Server-assigned query id.
    pub query_id: u64,
    /// Time spent queued behind earlier arrivals (FIFO position wait).
    pub queue_wait_ns: u64,
    /// Time spent at the queue head waiting for budget (grant wait).
    pub grant_wait_ns: u64,
    /// Execution wall time (admission to result production).
    pub exec_ns: u64,
    /// Result serialization wall time (report attach + frame encode).
    pub serialize_ns: u64,
    /// Memory-shed requests this query absorbed while running.
    pub shed_count: u64,
    /// `(state, t_ns)` transitions: state name from [`QUERY_STATES`],
    /// offset in nanoseconds since the request was received.
    pub states: Vec<(String, u64)>,
}

/// Internal consistency of a `query_trace` section: every state is a
/// known [`QUERY_STATES`] name, the transition timestamps are monotone,
/// and the machine starts where every query starts — at `received`.
fn validate_query_trace(sec: &QueryTraceSection) -> Result<(), String> {
    if sec.states.is_empty() {
        return Err("query_trace carries no state transitions".into());
    }
    for (state, _) in &sec.states {
        if !QUERY_STATES.contains(&state.as_str()) {
            return Err(format!("query_trace has unknown state '{state}'"));
        }
    }
    if sec.states[0].0 != "received" {
        return Err(format!(
            "query_trace starts at '{}', not 'received'",
            sec.states[0].0
        ));
    }
    if sec.states.windows(2).any(|w| w[0].1 > w[1].1) {
        return Err("query_trace state timestamps are not monotone".into());
    }
    Ok(())
}

/// Bottleneck classes the diagnosis rule engine can assign. Exactly one
/// becomes a report's primary bottleneck; `compute_bound` is the healthy
/// default when no pathology fires.
pub const BOTTLENECK_CLASSES: [&str; 7] = [
    "degraded",
    "fault_stalled",
    "skew_bound",
    "tlb_bound",
    "bandwidth_bound",
    "latency_bound",
    "compute_bound",
];

/// One phase's Theorem-1/2 prediction in a report's `analysis` section:
/// the stage-cost vector the prediction was computed from, the minimal
/// group size and prefetch distance that fully hide misses, and the
/// coverage the configured scheme should reach under the first-order
/// hiding model.
#[derive(Debug, Clone, PartialEq)]
pub struct PhasePrediction {
    /// Phase name (`"probe"`, `"build"`, `"partition"`).
    pub phase: String,
    /// Stage costs `[C_0, ..., C_k]` (cycles) used for the prediction.
    pub stage_costs: Vec<u64>,
    /// Theorem 1's minimal fully-hiding group size.
    pub g_min: u64,
    /// Whether group prefetching can hide the first miss (`C_0 > 0`).
    pub first_miss_hidden: bool,
    /// Theorem 2's minimal fully-hiding prefetch distance.
    pub d_min: u64,
    /// Predicted hidden-latency fraction for the run's configured scheme
    /// and parameter (1.0 at or past the theorem prediction).
    pub predicted_coverage: f64,
}

/// One predicted-vs-measured row in a report's `analysis` section.
/// `residual` is always `measured - predicted`, so a negative residual
/// on a coverage metric reads "prefetching hid less than the model
/// promised".
#[derive(Debug, Clone, PartialEq)]
pub struct ResidualRow {
    /// Metric name (`"prefetch_coverage"`, `"pf_hidden_cycles"`,
    /// `"miss_share.hash_cells"`, …).
    pub metric: String,
    /// Model-predicted value.
    pub predicted: f64,
    /// Measured value from the report.
    pub measured: f64,
    /// `measured - predicted`.
    pub residual: f64,
}

/// One rule's outcome in the bottleneck classifier: whether it fired and
/// the evidence lines (human-readable, one observation each) behind the
/// decision.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RuleOutcome {
    /// Class this rule argues for (a [`BOTTLENECK_CLASSES`] entry).
    pub class: String,
    /// Whether the rule's conditions held on this report.
    pub fired: bool,
    /// The observations that made (or would have made) the call.
    pub evidence: Vec<String>,
}

/// The optional model-vs-measured diagnosis section of a [`RunReport`],
/// produced by `phj-analyze`: Theorem-1/2 predictions recomputed from
/// the config fingerprint, predicted-vs-measured residuals, and a
/// rule-engine bottleneck classification. Like `regions`/`faults`/
/// `timeseries`, the JSON key is omitted entirely when absent.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct AnalysisSection {
    /// Full miss latency `T` the predictions assumed (cycles).
    pub t_full: u64,
    /// Pipelined additional-miss latency `T_next` assumed (cycles).
    pub t_next: u64,
    /// The scheme string the predictions were evaluated for.
    pub scheme: String,
    /// The calibration constants used (after any `--cost-model`
    /// overrides), for provenance.
    pub cost_model: Vec<(String, u64)>,
    /// Per-phase theorem predictions (empty for native runs, where the
    /// simulator's cost model does not apply).
    pub predictions: Vec<PhasePrediction>,
    /// Predicted-vs-measured rows.
    pub residuals: Vec<ResidualRow>,
    /// The one primary bottleneck class assigned to the run.
    pub primary: String,
    /// Evidence lines behind the primary classification.
    pub evidence: Vec<String>,
    /// Every rule's outcome, in evaluation (priority) order.
    pub rules: Vec<RuleOutcome>,
}

/// Internal consistency of an `analysis` section: the primary class must
/// be a known class whose rule exists and fired with evidence, every
/// float must be finite (no NaN/Inf ever reaches the JSON), residuals
/// must actually be `measured - predicted`, and predictions must be
/// structurally meaningful (`k ≥ 1` stages, `G ≥ 1`, `D ≥ 1`, coverage
/// in `[0, 1]`).
fn validate_analysis(sec: &AnalysisSection) -> Result<(), String> {
    if !BOTTLENECK_CLASSES.contains(&sec.primary.as_str()) {
        return Err(format!("analysis primary '{}' is not a known class", sec.primary));
    }
    if sec.evidence.is_empty() {
        return Err(format!("analysis primary '{}' carries no evidence", sec.primary));
    }
    let rule = sec
        .rules
        .iter()
        .find(|r| r.class == sec.primary)
        .ok_or_else(|| format!("analysis primary '{}' has no rule outcome", sec.primary))?;
    if !rule.fired {
        return Err(format!("analysis primary '{}' rule did not fire", sec.primary));
    }
    for r in &sec.rules {
        if !BOTTLENECK_CLASSES.contains(&r.class.as_str()) {
            return Err(format!("analysis rule class '{}' is unknown", r.class));
        }
        if r.fired && r.evidence.is_empty() {
            return Err(format!("analysis rule '{}' fired without evidence", r.class));
        }
    }
    if sec.rules.iter().filter(|r| r.class == sec.primary).count() > 1 {
        return Err(format!("analysis rule '{}' appears more than once", sec.primary));
    }
    if !sec.predictions.is_empty() && sec.t_next == 0 {
        return Err("analysis predictions require t_next > 0".into());
    }
    for p in &sec.predictions {
        if p.stage_costs.len() < 2 {
            return Err(format!("phase '{}' has fewer than 2 stage costs", p.phase));
        }
        if p.g_min < 1 || p.d_min < 1 {
            return Err(format!("phase '{}' predicts G or D below 1", p.phase));
        }
        if !p.predicted_coverage.is_finite()
            || !(0.0..=1.0).contains(&p.predicted_coverage)
        {
            return Err(format!(
                "phase '{}' predicted coverage {} outside [0, 1]",
                p.phase, p.predicted_coverage
            ));
        }
    }
    for r in &sec.residuals {
        if !(r.predicted.is_finite() && r.measured.is_finite() && r.residual.is_finite()) {
            return Err(format!("residual '{}' contains a non-finite value", r.metric));
        }
        let expect = r.measured - r.predicted;
        let scale = 1.0f64.max(r.measured.abs()).max(r.predicted.abs());
        if (r.residual - expect).abs() > 1e-9 * scale {
            return Err(format!(
                "residual '{}' is {} but measured - predicted is {}",
                r.metric, r.residual, expect
            ));
        }
    }
    Ok(())
}

/// A complete, serializable description of one pipeline run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// What ran (`"join"`, `"agg"`, `"tune"`, or a bench slug).
    pub command: String,
    /// Config fingerprint: ordered key–value pairs (scheme, G, D, tuple
    /// size, memory-model parameters…). Strings so the report layer does
    /// not depend on the algorithm crates.
    pub config: Vec<(String, String)>,
    /// True when the run drove the cycle-level simulator (cycle numbers
    /// are meaningful); false for native runs (wall-clock only).
    pub simulated: bool,
    /// Whole-run memory-model delta.
    pub totals: Snapshot,
    /// Whole-run wall-clock time in nanoseconds.
    pub wall_ns: u64,
    /// Input tuples processed (build + probe), for rate derivation.
    pub tuples: u64,
    /// Join matches (or aggregate groups) produced.
    pub matches: u64,
    /// The recorded phase spans, in open order.
    pub spans: Vec<SpanRecord>,
    /// Memory-access attribution (`None` unless the run profiled
    /// regions; the JSON key is omitted entirely when absent, keeping
    /// unprofiled reports byte-identical to pre-attribution ones).
    pub regions: Option<RegionsSection>,
    /// Fault-injection and degradation counters (`None` unless the run
    /// injected faults, retried I/O, or degraded; omitted from the JSON
    /// when absent, same convention as `regions`).
    pub faults: Option<FaultsSection>,
    /// Sampled live-telemetry series (`None` unless the run enabled the
    /// sampler; omitted from the JSON when absent, same convention as
    /// `regions` and `faults`).
    pub timeseries: Option<TimeseriesSection>,
    /// Model-vs-measured diagnosis (`None` unless an analyzer attached
    /// one; omitted from the JSON when absent, same convention as the
    /// other optional sections).
    pub analysis: Option<AnalysisSection>,
    /// Flight-recorder summary (`None` unless the run had the process
    /// flight recorder installed; omitted from the JSON when absent,
    /// same convention as the other optional sections).
    pub flightrec: Option<FlightrecSection>,
    /// Per-query daemon lifecycle trace (`None` unless a tracing-enabled
    /// server attached one; omitted from the JSON when absent, same
    /// convention as the other optional sections).
    pub query_trace: Option<QueryTraceSection>,
}

impl RunReport {
    /// Build a report from a finished recorder. `totals` is the
    /// whole-run snapshot delta (typically the engine's final snapshot,
    /// since it starts at zero).
    pub fn from_recorder(
        command: &str,
        recorder: Recorder,
        totals: Snapshot,
        wall_ns: u64,
    ) -> Self {
        RunReport {
            command: command.to_string(),
            config: Vec::new(),
            simulated: false,
            totals,
            wall_ns,
            tuples: 0,
            matches: 0,
            spans: recorder.finish(),
            regions: None,
            faults: None,
            timeseries: None,
            analysis: None,
            flightrec: None,
            query_trace: None,
        }
    }

    /// Append a config fingerprint entry.
    pub fn config_kv(&mut self, key: &str, value: impl std::fmt::Display) {
        self.config.push((key.to_string(), value.to_string()));
    }

    /// Fraction of miss latency hidden by prefetching, in `[0, 1]`:
    /// `pf_hidden_cycles / (pf_hidden_cycles + dcache_stall)`. Zero when
    /// nothing was prefetched *and* nothing stalled (e.g. native runs).
    pub fn prefetch_coverage(&self) -> f64 {
        coverage(&self.totals)
    }

    /// Fraction of prefetches whose line was evicted before any demand
    /// use: `pf_evicted_unused / prefetches`; zero when no prefetches
    /// were issued.
    pub fn pollution_rate(&self) -> f64 {
        pollution(&self.totals.stats)
    }

    /// Input tuples per wall-clock second (zero when untimed).
    pub fn tuples_per_sec(&self) -> f64 {
        if self.wall_ns == 0 {
            0.0
        } else {
            self.tuples as f64 / (self.wall_ns as f64 / 1e9)
        }
    }

    /// Simulated cycles per input tuple (`None` for native runs or empty
    /// inputs).
    pub fn cycles_per_tuple(&self) -> Option<f64> {
        let cycles = self.totals.breakdown.total();
        if self.simulated && self.tuples > 0 {
            Some(cycles as f64 / self.tuples as f64)
        } else {
            None
        }
    }

    /// Serialize to a JSON document.
    pub fn to_json(&self) -> Json {
        let spans = self
            .spans
            .iter()
            .map(|s| {
                let mut pairs = vec![
                    ("name", Json::Str(s.name.clone())),
                    (
                        "parent",
                        s.parent.map_or(Json::Null, |p| Json::U64(p as u64)),
                    ),
                    ("depth", Json::U64(s.depth as u64)),
                    ("start_ns", Json::U64(s.start_ns)),
                    ("wall_ns", Json::U64(s.wall_ns)),
                    ("breakdown", breakdown_json(&s.delta.breakdown)),
                    ("cache", cache_json(&s.delta.stats)),
                    ("prefetch_coverage", Json::F64(coverage(&s.delta))),
                ];
                // Only profiled runs carry the key at all.
                if let Some(h) = &s.latency {
                    pairs.push(("latency", hist_json(h)));
                }
                pairs.push((
                    "meta",
                    Json::Obj(
                        s.meta
                            .iter()
                            .map(|(k, v)| (k.clone(), Json::Str(v.clone())))
                            .collect(),
                    ),
                ));
                Json::obj(pairs)
            })
            .collect();
        let mut doc = Json::obj(vec![
            ("schema_version", Json::U64(SCHEMA_VERSION)),
            ("command", Json::Str(self.command.clone())),
            ("simulated", Json::Bool(self.simulated)),
            (
                "config",
                Json::Obj(
                    self.config
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::Str(v.clone())))
                        .collect(),
                ),
            ),
            ("wall_ns", Json::U64(self.wall_ns)),
            ("tuples", Json::U64(self.tuples)),
            ("matches", Json::U64(self.matches)),
            ("breakdown", breakdown_json(&self.totals.breakdown)),
            ("cache", cache_json(&self.totals.stats)),
            (
                "derived",
                Json::obj(vec![
                    ("tuples_per_sec", Json::F64(self.tuples_per_sec())),
                    (
                        "cycles_per_tuple",
                        self.cycles_per_tuple().map_or(Json::Null, Json::F64),
                    ),
                    ("prefetch_coverage", Json::F64(self.prefetch_coverage())),
                    ("pollution_rate", Json::F64(self.pollution_rate())),
                ]),
            ),
            ("spans", Json::Arr(spans)),
        ]);
        if let Some(sec) = &self.regions {
            if let Json::Obj(members) = &mut doc {
                members.push(("regions".into(), regions_json(sec)));
            }
        }
        if let Some(sec) = &self.faults {
            if let Json::Obj(members) = &mut doc {
                members.push(("faults".into(), faults_json(sec)));
            }
        }
        if let Some(sec) = &self.timeseries {
            if let Json::Obj(members) = &mut doc {
                members.push(("timeseries".into(), timeseries_json(sec)));
            }
        }
        if let Some(sec) = &self.analysis {
            if let Json::Obj(members) = &mut doc {
                members.push(("analysis".into(), analysis_json(sec)));
            }
        }
        if let Some(sec) = &self.flightrec {
            if let Json::Obj(members) = &mut doc {
                members.push(("flightrec".into(), flightrec_json(sec)));
            }
        }
        if let Some(sec) = &self.query_trace {
            if let Json::Obj(members) = &mut doc {
                members.push(("query_trace".into(), query_trace_json(sec)));
            }
        }
        doc
    }

    /// Serialize to pretty-printed JSON text.
    pub fn render(&self) -> String {
        self.to_json().render_pretty()
    }

    /// Parse a report back from JSON text (the inverse of [`Self::render`]
    /// for every field the report model carries).
    pub fn parse(text: &str) -> Result<RunReport, String> {
        let doc = json::parse(text).map_err(|e| e.to_string())?;
        let version = field_u64(&doc, "schema_version")?;
        if version != SCHEMA_VERSION {
            return Err(format!("unsupported schema_version {version}"));
        }
        let spans = doc
            .get("spans")
            .and_then(Json::as_arr)
            .ok_or("missing spans array")?
            .iter()
            .map(parse_span)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(RunReport {
            command: field_str(&doc, "command")?,
            config: parse_kv(&doc, "config")?,
            simulated: matches!(doc.get("simulated"), Some(Json::Bool(true))),
            totals: Snapshot {
                breakdown: parse_breakdown(doc.get("breakdown").ok_or("missing breakdown")?)?,
                stats: parse_cache(doc.get("cache").ok_or("missing cache")?)?,
            },
            wall_ns: field_u64(&doc, "wall_ns")?,
            tuples: field_u64(&doc, "tuples")?,
            matches: field_u64(&doc, "matches")?,
            spans,
            regions: match doc.get("regions") {
                Some(sec) => Some(parse_regions(sec)?),
                None => None,
            },
            faults: match doc.get("faults") {
                Some(sec) => Some(parse_faults(sec)?),
                None => None,
            },
            timeseries: match doc.get("timeseries") {
                Some(sec) => Some(parse_timeseries(sec)?),
                None => None,
            },
            analysis: match doc.get("analysis") {
                Some(sec) => Some(parse_analysis(sec)?),
                None => None,
            },
            flightrec: match doc.get("flightrec") {
                Some(sec) => Some(parse_flightrec(sec)?),
                None => None,
            },
            query_trace: match doc.get("query_trace") {
                Some(sec) => Some(parse_query_trace(sec)?),
                None => None,
            },
        })
    }

    /// Structural sanity checks; `Err` carries the first violation.
    ///
    /// * at least one span, exactly one root (depth 0, no parent);
    /// * parents precede children and depths are parent + 1;
    /// * children's cycle totals sum to at most their parent's, per
    ///   worker lane — children carrying a `worker` meta are parallel
    ///   siblings, so each lane must fit within the parent but lanes do
    ///   not sum with each other (untagged children share one lane,
    ///   preserving the sequential rule);
    /// * the root span's cycle total equals the report's total (the root
    ///   wraps the whole run).
    pub fn validate(&self) -> Result<(), String> {
        if self.spans.is_empty() {
            return Err("no spans recorded".into());
        }
        let roots: Vec<usize> = (0..self.spans.len())
            .filter(|&i| self.spans[i].parent.is_none())
            .collect();
        if roots.len() != 1 {
            return Err(format!("expected exactly one root span, found {}", roots.len()));
        }
        let mut lane_cycles: std::collections::BTreeMap<(usize, Option<&str>), u64> =
            std::collections::BTreeMap::new();
        for (i, s) in self.spans.iter().enumerate() {
            match s.parent {
                None => {
                    if s.depth != 0 {
                        return Err(format!("root span '{}' has depth {}", s.name, s.depth));
                    }
                }
                Some(p) => {
                    if p >= i {
                        return Err(format!("span '{}' parent {} does not precede it", s.name, p));
                    }
                    if s.depth != self.spans[p].depth + 1 {
                        return Err(format!("span '{}' depth {} under parent depth {}",
                            s.name, s.depth, self.spans[p].depth));
                    }
                    let lane = s
                        .meta
                        .iter()
                        .find(|(k, _)| k == "worker")
                        .map(|(_, v)| v.as_str());
                    *lane_cycles.entry((p, lane)).or_insert(0) += s.delta.breakdown.total();
                }
            }
        }
        for (&(p, lane), &cycles) in &lane_cycles {
            if cycles > self.spans[p].delta.breakdown.total() {
                return Err(format!(
                    "children of span '{}'{} account {} cycles > parent's {}",
                    self.spans[p].name,
                    lane.map(|w| format!(" (worker {w})")).unwrap_or_default(),
                    cycles,
                    self.spans[p].delta.breakdown.total()
                ));
            }
        }
        let root = roots[0];
        let root_cycles = self.spans[root].delta.breakdown.total();
        if self.simulated && root_cycles != self.totals.breakdown.total() {
            return Err(format!(
                "root span cycles {} != run total {}",
                root_cycles,
                self.totals.breakdown.total()
            ));
        }
        if let Some(sec) = &self.regions {
            self.validate_regions(sec)?;
        }
        if let Some(sec) = &self.timeseries {
            validate_timeseries(sec)?;
        }
        if let Some(sec) = &self.analysis {
            validate_analysis(sec)?;
        }
        if let Some(sec) = &self.flightrec {
            validate_flightrec(sec)?;
        }
        if let Some(sec) = &self.query_trace {
            validate_query_trace(sec)?;
        }
        Ok(())
    }

    /// Internal consistency of a `regions` section against the run
    /// totals: every demand line is charged to exactly one region, so the
    /// per-region hit/miss counters must sum exactly to the global cache
    /// stats, and each region's histogram must hold one sample per demand
    /// line.
    fn validate_regions(&self, sec: &RegionsSection) -> Result<(), String> {
        let mut sums = RegionStats::default();
        for r in &sec.regions {
            if r.hist.count() != r.stats.demand_lines() {
                return Err(format!(
                    "region '{}' histogram has {} samples for {} demand lines",
                    r.name,
                    r.hist.count(),
                    r.stats.demand_lines()
                ));
            }
            sums.l1_hits += r.stats.l1_hits;
            sums.l1_inflight_hits += r.stats.l1_inflight_hits;
            sums.l2_hits += r.stats.l2_hits;
            sums.mem_misses += r.stats.mem_misses;
            sums.tlb_demand_walks += r.stats.tlb_demand_walks;
        }
        let g = &self.totals.stats;
        let checks = [
            ("l1_hits", sums.l1_hits, g.l1_hits),
            ("l1_inflight_hits", sums.l1_inflight_hits, g.l1_inflight_hits),
            ("l2_hits", sums.l2_hits, g.l2_hits),
            ("mem_misses", sums.mem_misses, g.mem_misses),
            ("demand lines", sums.demand_lines(), g.visit_lines),
            ("tlb_demand_walks", sums.tlb_demand_walks, g.tlb_demand_walks),
        ];
        for (what, region_sum, total) in checks {
            if region_sum != total {
                return Err(format!(
                    "regions sum {region_sum} {what} but the run total is {total}"
                ));
            }
        }
        Ok(())
    }
}

/// Internal consistency of a `timeseries` section: each row's
/// min/max/last must be exactly the reduction of its points, point
/// counts must fit the ring capacity, and timestamps must be
/// non-decreasing (the sampler ring appends in time order).
fn validate_timeseries(sec: &TimeseriesSection) -> Result<(), String> {
    for row in &sec.series {
        if row.points.is_empty() {
            return Err(format!("timeseries row '{}' has no points", row.name));
        }
        if sec.capacity > 0 && row.points.len() as u64 > sec.capacity {
            return Err(format!(
                "timeseries row '{}' holds {} points over ring capacity {}",
                row.name,
                row.points.len(),
                sec.capacity
            ));
        }
        let min = row.points.iter().map(|&(_, v)| v).min().unwrap_or(0);
        let max = row.points.iter().map(|&(_, v)| v).max().unwrap_or(0);
        let last = row.points.last().map_or(0, |&(_, v)| v);
        if (row.min, row.max, row.last) != (min, max, last) {
            return Err(format!(
                "timeseries row '{}' summary ({}, {}, {}) disagrees with its points ({min}, {max}, {last})",
                row.name, row.min, row.max, row.last
            ));
        }
        if row.points.windows(2).any(|w| w[0].0 > w[1].0) {
            return Err(format!("timeseries row '{}' timestamps go backwards", row.name));
        }
    }
    Ok(())
}

/// Coverage for one snapshot delta (see
/// [`RunReport::prefetch_coverage`]).
pub fn coverage(s: &Snapshot) -> f64 {
    let hidden = s.stats.pf_hidden_cycles;
    let exposed = s.breakdown.dcache_stall;
    if hidden + exposed == 0 {
        0.0
    } else {
        hidden as f64 / (hidden + exposed) as f64
    }
}

/// Pollution rate for one stats delta (see
/// [`RunReport::pollution_rate`]).
pub fn pollution(s: &CacheStats) -> f64 {
    if s.prefetches == 0 {
        0.0
    } else {
        s.pf_evicted_unused as f64 / s.prefetches as f64
    }
}

fn breakdown_json(b: &Breakdown) -> Json {
    Json::obj(vec![
        ("busy", Json::U64(b.busy)),
        ("dcache_stall", Json::U64(b.dcache_stall)),
        ("dtlb_stall", Json::U64(b.dtlb_stall)),
        ("other_stall", Json::U64(b.other_stall)),
        ("total", Json::U64(b.total())),
    ])
}

fn cache_json(s: &CacheStats) -> Json {
    Json::obj(vec![
        ("visits", Json::U64(s.visits)),
        ("visit_lines", Json::U64(s.visit_lines)),
        ("l1_hits", Json::U64(s.l1_hits)),
        ("l1_inflight_hits", Json::U64(s.l1_inflight_hits)),
        ("l2_hits", Json::U64(s.l2_hits)),
        ("mem_misses", Json::U64(s.mem_misses)),
        ("l1_conflict_misses", Json::U64(s.l1_conflict_misses)),
        ("prefetches", Json::U64(s.prefetches)),
        ("pf_dropped", Json::U64(s.pf_dropped)),
        ("pf_from_l2", Json::U64(s.pf_from_l2)),
        ("pf_from_mem", Json::U64(s.pf_from_mem)),
        ("pf_evicted_unused", Json::U64(s.pf_evicted_unused)),
        ("pf_hidden_cycles", Json::U64(s.pf_hidden_cycles)),
        ("tlb_demand_walks", Json::U64(s.tlb_demand_walks)),
        ("tlb_prefetch_walks", Json::U64(s.tlb_prefetch_walks)),
        ("hw_prefetches", Json::U64(s.hw_prefetches)),
        ("writebacks", Json::U64(s.writebacks)),
        ("flushes", Json::U64(s.flushes)),
    ])
}

fn hist_json(h: &LatencyHistogram) -> Json {
    let (p50, p95, p99) = h.percentiles();
    Json::obj(vec![
        ("count", Json::U64(h.count())),
        ("p50", Json::U64(p50)),
        ("p95", Json::U64(p95)),
        ("p99", Json::U64(p99)),
        ("buckets", Json::Arr(h.buckets.iter().map(|&c| Json::U64(c)).collect())),
    ])
}

fn region_json(r: &RegionReport) -> Json {
    let s = &r.stats;
    Json::obj(vec![
        ("name", Json::Str(r.name.clone())),
        ("l1_hits", Json::U64(s.l1_hits)),
        ("l1_inflight_hits", Json::U64(s.l1_inflight_hits)),
        ("l2_hits", Json::U64(s.l2_hits)),
        ("mem_misses", Json::U64(s.mem_misses)),
        ("demand_lines", Json::U64(s.demand_lines())),
        ("tlb_demand_walks", Json::U64(s.tlb_demand_walks)),
        ("stall_cycles", Json::U64(s.stall_cycles)),
        ("prefetches", Json::U64(s.prefetches)),
        ("pf_dropped", Json::U64(s.pf_dropped)),
        ("tlb_prefetch_walks", Json::U64(s.tlb_prefetch_walks)),
        ("pf_hidden", Json::U64(s.pf_hidden)),
        ("pf_partial", Json::U64(s.pf_partial)),
        ("pf_late", Json::U64(s.pf_late)),
        ("pf_polluting", Json::U64(s.pf_polluting)),
        ("pf_hidden_cycles", Json::U64(s.pf_hidden_cycles)),
        ("hist", hist_json(&r.hist)),
    ])
}

fn skew_json(row: &SkewRow) -> Json {
    Json::obj(vec![
        ("index", Json::U64(row.index)),
        ("build_tuples", Json::U64(row.build_tuples)),
        ("probe_tuples", Json::U64(row.probe_tuples)),
        ("cycles", Json::U64(row.cycles)),
        ("l2_hits", Json::U64(row.l2_hits)),
        ("mem_misses", Json::U64(row.mem_misses)),
    ])
}

fn regions_json(sec: &RegionsSection) -> Json {
    Json::obj(vec![
        ("regions", Json::Arr(sec.regions.iter().map(region_json).collect())),
        ("skew", Json::Arr(sec.skew.iter().map(skew_json).collect())),
    ])
}

fn degradation_json(row: &DegradationRow) -> Json {
    Json::obj(vec![
        ("partition", Json::Str(row.partition.clone())),
        ("depth", Json::U64(row.depth)),
        ("bytes", Json::U64(row.bytes)),
        ("budget", Json::U64(row.budget)),
        ("action", Json::Str(row.action.clone())),
        ("detail", Json::U64(row.detail)),
    ])
}

fn faults_json(sec: &FaultsSection) -> Json {
    Json::obj(vec![
        ("faults_injected", Json::U64(sec.faults_injected)),
        ("read_retries", Json::U64(sec.read_retries)),
        ("write_retries", Json::U64(sec.write_retries)),
        ("slow_stall_us", Json::U64(sec.slow_stall_us)),
        (
            "degradation",
            Json::Arr(sec.degradation.iter().map(degradation_json).collect()),
        ),
    ])
}

fn timeseries_row_json(row: &TimeseriesRow) -> Json {
    Json::obj(vec![
        ("name", Json::Str(row.name.clone())),
        ("min", Json::U64(row.min)),
        ("max", Json::U64(row.max)),
        ("last", Json::U64(row.last)),
        (
            "points",
            Json::Arr(
                row.points
                    .iter()
                    .map(|&(t, v)| Json::Arr(vec![Json::U64(t), Json::U64(v)]))
                    .collect(),
            ),
        ),
    ])
}

fn timeseries_json(sec: &TimeseriesSection) -> Json {
    Json::obj(vec![
        ("interval_ms", Json::U64(sec.interval_ms)),
        ("capacity", Json::U64(sec.capacity)),
        ("series", Json::Arr(sec.series.iter().map(timeseries_row_json).collect())),
    ])
}

fn parse_timeseries_row(doc: &Json) -> Result<TimeseriesRow, String> {
    Ok(TimeseriesRow {
        name: field_str(doc, "name")?,
        min: field_u64(doc, "min")?,
        max: field_u64(doc, "max")?,
        last: field_u64(doc, "last")?,
        points: doc
            .get("points")
            .and_then(Json::as_arr)
            .ok_or("timeseries row missing points array")?
            .iter()
            .map(|p| match p.as_arr() {
                Some([t, v]) => Ok((
                    t.as_u64().ok_or("non-integer point timestamp")?,
                    v.as_u64().ok_or("non-integer point value")?,
                )),
                _ => Err("timeseries point is not a [t, v] pair".to_string()),
            })
            .collect::<Result<Vec<_>, _>>()?,
    })
}

fn parse_timeseries(doc: &Json) -> Result<TimeseriesSection, String> {
    Ok(TimeseriesSection {
        interval_ms: field_u64(doc, "interval_ms")?,
        capacity: field_u64(doc, "capacity")?,
        series: doc
            .get("series")
            .and_then(Json::as_arr)
            .ok_or("timeseries section missing series array")?
            .iter()
            .map(parse_timeseries_row)
            .collect::<Result<Vec<_>, _>>()?,
    })
}

fn parse_hist(doc: &Json) -> Result<LatencyHistogram, String> {
    let arr = doc
        .get("buckets")
        .and_then(Json::as_arr)
        .ok_or("histogram missing buckets array")?;
    if arr.len() != LATENCY_BUCKETS {
        return Err(format!("histogram has {} buckets, expected {LATENCY_BUCKETS}", arr.len()));
    }
    let mut h = LatencyHistogram::default();
    for (i, v) in arr.iter().enumerate() {
        h.buckets[i] = v.as_u64().ok_or("non-integer histogram bucket")?;
    }
    Ok(h)
}

fn parse_region(doc: &Json) -> Result<RegionReport, String> {
    Ok(RegionReport {
        name: field_str(doc, "name")?,
        stats: RegionStats {
            l1_hits: field_u64(doc, "l1_hits")?,
            l1_inflight_hits: field_u64(doc, "l1_inflight_hits")?,
            l2_hits: field_u64(doc, "l2_hits")?,
            mem_misses: field_u64(doc, "mem_misses")?,
            tlb_demand_walks: field_u64(doc, "tlb_demand_walks")?,
            stall_cycles: field_u64(doc, "stall_cycles")?,
            prefetches: field_u64(doc, "prefetches")?,
            pf_dropped: field_u64(doc, "pf_dropped")?,
            tlb_prefetch_walks: field_u64(doc, "tlb_prefetch_walks")?,
            pf_hidden: field_u64(doc, "pf_hidden")?,
            pf_partial: field_u64(doc, "pf_partial")?,
            pf_late: field_u64(doc, "pf_late")?,
            pf_polluting: field_u64(doc, "pf_polluting")?,
            pf_hidden_cycles: field_u64(doc, "pf_hidden_cycles")?,
        },
        hist: parse_hist(doc.get("hist").ok_or("region missing hist")?)?,
    })
}

fn parse_skew(doc: &Json) -> Result<SkewRow, String> {
    Ok(SkewRow {
        index: field_u64(doc, "index")?,
        build_tuples: field_u64(doc, "build_tuples")?,
        probe_tuples: field_u64(doc, "probe_tuples")?,
        cycles: field_u64(doc, "cycles")?,
        l2_hits: field_u64(doc, "l2_hits")?,
        mem_misses: field_u64(doc, "mem_misses")?,
    })
}

fn parse_regions(doc: &Json) -> Result<RegionsSection, String> {
    Ok(RegionsSection {
        regions: doc
            .get("regions")
            .and_then(Json::as_arr)
            .ok_or("regions section missing regions array")?
            .iter()
            .map(parse_region)
            .collect::<Result<Vec<_>, _>>()?,
        skew: doc
            .get("skew")
            .and_then(Json::as_arr)
            .ok_or("regions section missing skew array")?
            .iter()
            .map(parse_skew)
            .collect::<Result<Vec<_>, _>>()?,
    })
}

fn parse_degradation(doc: &Json) -> Result<DegradationRow, String> {
    Ok(DegradationRow {
        partition: field_str(doc, "partition")?,
        depth: field_u64(doc, "depth")?,
        bytes: field_u64(doc, "bytes")?,
        budget: field_u64(doc, "budget")?,
        action: field_str(doc, "action")?,
        detail: field_u64(doc, "detail")?,
    })
}

fn parse_faults(doc: &Json) -> Result<FaultsSection, String> {
    Ok(FaultsSection {
        faults_injected: field_u64(doc, "faults_injected")?,
        read_retries: field_u64(doc, "read_retries")?,
        write_retries: field_u64(doc, "write_retries")?,
        slow_stall_us: field_u64(doc, "slow_stall_us")?,
        degradation: doc
            .get("degradation")
            .and_then(Json::as_arr)
            .ok_or("faults section missing degradation array")?
            .iter()
            .map(parse_degradation)
            .collect::<Result<Vec<_>, _>>()?,
    })
}

fn flightrec_json(sec: &FlightrecSection) -> Json {
    Json::obj(vec![
        ("mode", Json::Str(sec.mode.clone())),
        ("capacity", Json::U64(sec.capacity)),
        ("threads", Json::U64(sec.threads)),
        ("written", Json::U64(sec.written)),
        ("dropped", Json::U64(sec.dropped)),
        (
            "counts",
            Json::Obj(
                sec.counts.iter().map(|(k, v)| (k.clone(), Json::U64(*v))).collect(),
            ),
        ),
    ])
}

fn parse_flightrec(doc: &Json) -> Result<FlightrecSection, String> {
    let counts = match doc.get("counts") {
        Some(Json::Obj(pairs)) => pairs
            .iter()
            .map(|(k, v)| {
                Ok((k.clone(), v.as_u64().ok_or("non-integer flightrec count")?))
            })
            .collect::<Result<Vec<_>, String>>()?,
        _ => return Err("flightrec section missing counts object".into()),
    };
    Ok(FlightrecSection {
        mode: field_str(doc, "mode")?,
        capacity: field_u64(doc, "capacity")?,
        threads: field_u64(doc, "threads")?,
        written: field_u64(doc, "written")?,
        dropped: field_u64(doc, "dropped")?,
        counts,
    })
}

fn query_trace_json(sec: &QueryTraceSection) -> Json {
    Json::obj(vec![
        ("trace_id", Json::U64(sec.trace_id)),
        ("query_id", Json::U64(sec.query_id)),
        ("queue_wait_ns", Json::U64(sec.queue_wait_ns)),
        ("grant_wait_ns", Json::U64(sec.grant_wait_ns)),
        ("exec_ns", Json::U64(sec.exec_ns)),
        ("serialize_ns", Json::U64(sec.serialize_ns)),
        ("shed_count", Json::U64(sec.shed_count)),
        (
            "states",
            Json::Arr(
                sec.states
                    .iter()
                    .map(|(state, t_ns)| {
                        Json::obj(vec![
                            ("state", Json::Str(state.clone())),
                            ("t_ns", Json::U64(*t_ns)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

fn parse_query_trace(doc: &Json) -> Result<QueryTraceSection, String> {
    let states = doc
        .get("states")
        .and_then(Json::as_arr)
        .ok_or("query_trace section missing states array")?
        .iter()
        .map(|s| Ok((field_str(s, "state")?, field_u64(s, "t_ns")?)))
        .collect::<Result<Vec<_>, String>>()?;
    Ok(QueryTraceSection {
        trace_id: field_u64(doc, "trace_id")?,
        query_id: field_u64(doc, "query_id")?,
        queue_wait_ns: field_u64(doc, "queue_wait_ns")?,
        grant_wait_ns: field_u64(doc, "grant_wait_ns")?,
        exec_ns: field_u64(doc, "exec_ns")?,
        serialize_ns: field_u64(doc, "serialize_ns")?,
        shed_count: field_u64(doc, "shed_count")?,
        states,
    })
}

fn prediction_json(p: &PhasePrediction) -> Json {
    Json::obj(vec![
        ("phase", Json::Str(p.phase.clone())),
        ("stage_costs", Json::Arr(p.stage_costs.iter().map(|&c| Json::U64(c)).collect())),
        ("g_min", Json::U64(p.g_min)),
        ("first_miss_hidden", Json::Bool(p.first_miss_hidden)),
        ("d_min", Json::U64(p.d_min)),
        ("predicted_coverage", Json::F64(p.predicted_coverage)),
    ])
}

fn residual_json(r: &ResidualRow) -> Json {
    Json::obj(vec![
        ("metric", Json::Str(r.metric.clone())),
        ("predicted", Json::F64(r.predicted)),
        ("measured", Json::F64(r.measured)),
        ("residual", Json::F64(r.residual)),
    ])
}

fn rule_json(r: &RuleOutcome) -> Json {
    Json::obj(vec![
        ("class", Json::Str(r.class.clone())),
        ("fired", Json::Bool(r.fired)),
        ("evidence", Json::Arr(r.evidence.iter().map(|e| Json::Str(e.clone())).collect())),
    ])
}

fn analysis_json(sec: &AnalysisSection) -> Json {
    Json::obj(vec![
        ("t_full", Json::U64(sec.t_full)),
        ("t_next", Json::U64(sec.t_next)),
        ("scheme", Json::Str(sec.scheme.clone())),
        (
            "cost_model",
            Json::Obj(sec.cost_model.iter().map(|(k, v)| (k.clone(), Json::U64(*v))).collect()),
        ),
        ("predictions", Json::Arr(sec.predictions.iter().map(prediction_json).collect())),
        ("residuals", Json::Arr(sec.residuals.iter().map(residual_json).collect())),
        ("primary", Json::Str(sec.primary.clone())),
        ("evidence", Json::Arr(sec.evidence.iter().map(|e| Json::Str(e.clone())).collect())),
        ("rules", Json::Arr(sec.rules.iter().map(rule_json).collect())),
    ])
}

fn field_f64(doc: &Json, key: &str) -> Result<f64, String> {
    doc.get(key).and_then(Json::as_f64).ok_or_else(|| format!("missing f64 field '{key}'"))
}

fn str_arr(doc: &Json, key: &str) -> Result<Vec<String>, String> {
    doc.get(key)
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("missing array field '{key}'"))?
        .iter()
        .map(|e| e.as_str().map(str::to_string).ok_or_else(|| format!("'{key}' holds a non-string")))
        .collect()
}

fn parse_prediction(doc: &Json) -> Result<PhasePrediction, String> {
    Ok(PhasePrediction {
        phase: field_str(doc, "phase")?,
        stage_costs: doc
            .get("stage_costs")
            .and_then(Json::as_arr)
            .ok_or("prediction missing stage_costs array")?
            .iter()
            .map(|c| c.as_u64().ok_or("non-integer stage cost".to_string()))
            .collect::<Result<Vec<_>, _>>()?,
        g_min: field_u64(doc, "g_min")?,
        first_miss_hidden: matches!(doc.get("first_miss_hidden"), Some(Json::Bool(true))),
        d_min: field_u64(doc, "d_min")?,
        predicted_coverage: field_f64(doc, "predicted_coverage")?,
    })
}

fn parse_residual(doc: &Json) -> Result<ResidualRow, String> {
    Ok(ResidualRow {
        metric: field_str(doc, "metric")?,
        predicted: field_f64(doc, "predicted")?,
        measured: field_f64(doc, "measured")?,
        residual: field_f64(doc, "residual")?,
    })
}

fn parse_rule(doc: &Json) -> Result<RuleOutcome, String> {
    Ok(RuleOutcome {
        class: field_str(doc, "class")?,
        fired: matches!(doc.get("fired"), Some(Json::Bool(true))),
        evidence: str_arr(doc, "evidence")?,
    })
}

fn parse_analysis(doc: &Json) -> Result<AnalysisSection, String> {
    let cost_model = match doc.get("cost_model") {
        Some(Json::Obj(members)) => members
            .iter()
            .map(|(k, v)| {
                v.as_u64()
                    .map(|n| (k.clone(), n))
                    .ok_or_else(|| format!("cost_model entry '{k}' is not a u64"))
            })
            .collect::<Result<Vec<_>, _>>()?,
        _ => return Err("analysis section missing cost_model object".into()),
    };
    Ok(AnalysisSection {
        t_full: field_u64(doc, "t_full")?,
        t_next: field_u64(doc, "t_next")?,
        scheme: field_str(doc, "scheme")?,
        cost_model,
        predictions: doc
            .get("predictions")
            .and_then(Json::as_arr)
            .ok_or("analysis section missing predictions array")?
            .iter()
            .map(parse_prediction)
            .collect::<Result<Vec<_>, _>>()?,
        residuals: doc
            .get("residuals")
            .and_then(Json::as_arr)
            .ok_or("analysis section missing residuals array")?
            .iter()
            .map(parse_residual)
            .collect::<Result<Vec<_>, _>>()?,
        primary: field_str(doc, "primary")?,
        evidence: str_arr(doc, "evidence")?,
        rules: doc
            .get("rules")
            .and_then(Json::as_arr)
            .ok_or("analysis section missing rules array")?
            .iter()
            .map(parse_rule)
            .collect::<Result<Vec<_>, _>>()?,
    })
}

fn field_u64(doc: &Json, key: &str) -> Result<u64, String> {
    doc.get(key).and_then(Json::as_u64).ok_or_else(|| format!("missing u64 field '{key}'"))
}

fn field_str(doc: &Json, key: &str) -> Result<String, String> {
    doc.get(key)
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("missing string field '{key}'"))
}

fn parse_kv(doc: &Json, key: &str) -> Result<Vec<(String, String)>, String> {
    match doc.get(key) {
        Some(Json::Obj(members)) => members
            .iter()
            .map(|(k, v)| {
                v.as_str()
                    .map(|s| (k.clone(), s.to_string()))
                    .ok_or_else(|| format!("non-string value in '{key}'"))
            })
            .collect(),
        _ => Err(format!("missing object field '{key}'")),
    }
}

fn parse_breakdown(doc: &Json) -> Result<Breakdown, String> {
    Ok(Breakdown {
        busy: field_u64(doc, "busy")?,
        dcache_stall: field_u64(doc, "dcache_stall")?,
        dtlb_stall: field_u64(doc, "dtlb_stall")?,
        other_stall: field_u64(doc, "other_stall")?,
    })
}

fn parse_cache(doc: &Json) -> Result<CacheStats, String> {
    Ok(CacheStats {
        visits: field_u64(doc, "visits")?,
        visit_lines: field_u64(doc, "visit_lines")?,
        l1_hits: field_u64(doc, "l1_hits")?,
        l1_inflight_hits: field_u64(doc, "l1_inflight_hits")?,
        l2_hits: field_u64(doc, "l2_hits")?,
        mem_misses: field_u64(doc, "mem_misses")?,
        l1_conflict_misses: field_u64(doc, "l1_conflict_misses")?,
        prefetches: field_u64(doc, "prefetches")?,
        pf_dropped: field_u64(doc, "pf_dropped")?,
        pf_from_l2: field_u64(doc, "pf_from_l2")?,
        pf_from_mem: field_u64(doc, "pf_from_mem")?,
        pf_evicted_unused: field_u64(doc, "pf_evicted_unused")?,
        pf_hidden_cycles: field_u64(doc, "pf_hidden_cycles")?,
        tlb_demand_walks: field_u64(doc, "tlb_demand_walks")?,
        tlb_prefetch_walks: field_u64(doc, "tlb_prefetch_walks")?,
        hw_prefetches: field_u64(doc, "hw_prefetches")?,
        writebacks: field_u64(doc, "writebacks")?,
        flushes: field_u64(doc, "flushes")?,
    })
}

fn parse_span(doc: &Json) -> Result<SpanRecord, String> {
    let mut span = SpanRecord::reconstruct(
        field_str(doc, "name")?,
        match doc.get("parent") {
            Some(Json::Null) | None => None,
            Some(v) => Some(v.as_u64().ok_or("bad span parent")? as usize),
        },
        field_u64(doc, "depth")? as usize,
        field_u64(doc, "start_ns")?,
        field_u64(doc, "wall_ns")?,
        Snapshot {
            breakdown: parse_breakdown(doc.get("breakdown").ok_or("span missing breakdown")?)?,
            stats: parse_cache(doc.get("cache").ok_or("span missing cache")?)?,
        },
    );
    if let Some(h) = doc.get("latency") {
        span = span.with_latency(Some(parse_hist(h)?));
    }
    if let Some(Json::Obj(members)) = doc.get("meta") {
        for (k, v) in members {
            span.meta.push((k.clone(), v.as_str().unwrap_or_default().to_string()));
        }
    }
    Ok(span)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sim_snapshot() -> Snapshot {
        Snapshot {
            breakdown: Breakdown { busy: 100, dcache_stall: 60, dtlb_stall: 12, other_stall: 3 },
            stats: CacheStats {
                prefetches: 10,
                pf_evicted_unused: 2,
                pf_hidden_cycles: 90,
                mem_misses: 4,
                ..Default::default()
            },
        }
    }

    fn report_with_spans() -> RunReport {
        let mut rec = Recorder::new();
        let root = rec.begin("run", Snapshot::default());
        let inner = rec.begin("build", Snapshot::default());
        rec.meta("tuples", 7);
        rec.end(
            inner,
            Snapshot {
                breakdown: Breakdown { busy: 40, ..Default::default() },
                ..Default::default()
            },
        );
        rec.end(root, sim_snapshot());
        let mut report = RunReport::from_recorder("join", rec, sim_snapshot(), 5_000);
        report.simulated = true;
        report.tuples = 1_000;
        report.matches = 500;
        report.config_kv("scheme", "group");
        report.config_kv("g", 16);
        report
    }

    #[test]
    fn derived_metrics() {
        let r = report_with_spans();
        // coverage = 90 / (90 + 60)
        assert!((r.prefetch_coverage() - 0.6).abs() < 1e-12);
        // pollution = 2 / 10
        assert!((r.pollution_rate() - 0.2).abs() < 1e-12);
        // 1000 tuples in 5 µs
        assert!((r.tuples_per_sec() - 2e8).abs() < 1.0);
        // 175 cycles / 1000 tuples
        assert!((r.cycles_per_tuple().unwrap() - 0.175).abs() < 1e-12);
    }

    #[test]
    fn coverage_edge_cases() {
        // Zero prefetches, zero misses: no latency at all → coverage 0.
        assert_eq!(coverage(&Snapshot::default()), 0.0);
        // Misses but no prefetching: nothing hidden.
        let all_exposed = Snapshot {
            breakdown: Breakdown { dcache_stall: 500, ..Default::default() },
            ..Default::default()
        };
        assert_eq!(coverage(&all_exposed), 0.0);
        // Prefetching hid everything: no residual stall → coverage 1.
        let all_hidden = Snapshot {
            stats: CacheStats { pf_hidden_cycles: 300, ..Default::default() },
            ..Default::default()
        };
        assert_eq!(coverage(&all_hidden), 1.0);
        // Pollution with zero prefetches is 0, not NaN.
        assert_eq!(pollution(&CacheStats::default()), 0.0);
        let p = CacheStats { prefetches: 4, pf_evicted_unused: 4, ..Default::default() };
        assert_eq!(pollution(&p), 1.0);
    }

    #[test]
    fn report_round_trips_through_json() {
        let r = report_with_spans();
        let text = r.render();
        let back = RunReport::parse(&text).expect("parse");
        assert_eq!(back.command, r.command);
        assert_eq!(back.config, r.config);
        assert_eq!(back.simulated, r.simulated);
        assert_eq!(back.totals, r.totals);
        assert_eq!(back.wall_ns, r.wall_ns);
        assert_eq!(back.tuples, r.tuples);
        assert_eq!(back.matches, r.matches);
        assert_eq!(back.spans.len(), r.spans.len());
        for (a, b) in back.spans.iter().zip(&r.spans) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.parent, b.parent);
            assert_eq!(a.depth, b.depth);
            assert_eq!(a.wall_ns, b.wall_ns);
            assert_eq!(a.delta, b.delta);
            assert_eq!(a.meta, b.meta);
        }
        // And the round-tripped report validates like the original.
        assert_eq!(back.validate(), r.validate());
    }

    #[test]
    fn validate_accepts_well_formed_reports() {
        report_with_spans().validate().expect("valid");
    }

    #[test]
    fn validate_rejects_structural_violations() {
        let mut r = report_with_spans();
        r.spans.clear();
        assert!(r.validate().unwrap_err().contains("no spans"));

        let mut r = report_with_spans();
        r.spans[1].delta.breakdown.busy = r.spans[0].delta.breakdown.total() + 1;
        assert!(r.validate().unwrap_err().contains("children"));

        let mut r = report_with_spans();
        r.totals.breakdown.busy += 1;
        assert!(r.validate().unwrap_err().contains("run total"));

        let mut r = report_with_spans();
        let orphan = r.spans[1].clone();
        r.spans.push(orphan); // second depth-1 span is fine…
        r.spans.last_mut().unwrap().parent = None; // …a second root is not
        assert!(r.validate().unwrap_err().contains("root"));
    }

    /// A simulated report whose regions section is internally consistent
    /// with its totals: 10 demand lines split 7/3 across two regions.
    fn profiled_report() -> RunReport {
        let totals = Snapshot {
            breakdown: Breakdown { busy: 100, dcache_stall: 150, ..Default::default() },
            stats: CacheStats {
                visits: 10,
                visit_lines: 10,
                l1_hits: 6,
                l2_hits: 3,
                mem_misses: 1,
                tlb_demand_walks: 2,
                ..Default::default()
            },
        };
        let mut cells_hist = LatencyHistogram::default();
        for _ in 0..6 {
            cells_hist.record(0);
        }
        cells_hist.record(8);
        let mut other_hist = LatencyHistogram::default();
        other_hist.record(8);
        other_hist.record(8);
        other_hist.record(150);
        let mut run_hist = cells_hist;
        run_hist.merge(&other_hist);
        let mut rec = Recorder::new();
        let root = rec.begin_profiled("run", Snapshot::default(), Some(LatencyHistogram::default()));
        rec.end_profiled(root, totals, Some(run_hist));
        let mut report = RunReport::from_recorder("join", rec, totals, 1_000);
        report.simulated = true;
        report.regions = Some(RegionsSection {
            regions: vec![
                RegionReport {
                    name: "hash_cells".into(),
                    stats: RegionStats {
                        l1_hits: 6,
                        l2_hits: 1,
                        stall_cycles: 8,
                        ..Default::default()
                    },
                    hist: cells_hist,
                },
                RegionReport {
                    name: "other".into(),
                    stats: RegionStats {
                        l2_hits: 2,
                        mem_misses: 1,
                        tlb_demand_walks: 2,
                        stall_cycles: 166,
                        ..Default::default()
                    },
                    hist: other_hist,
                },
            ],
            skew: vec![SkewRow {
                index: 0,
                build_tuples: 4,
                probe_tuples: 6,
                cycles: 250,
                l2_hits: 3,
                mem_misses: 1,
            }],
        });
        report
    }

    #[test]
    fn regions_section_round_trips_and_validates() {
        let r = profiled_report();
        r.validate().expect("consistent regions section");
        let text = r.render();
        assert!(text.contains("\"regions\""));
        assert!(text.contains("\"latency\""));
        let back = RunReport::parse(&text).expect("parse");
        assert_eq!(back.regions, r.regions);
        assert_eq!(back.spans[0].latency, r.spans[0].latency);
        back.validate().expect("round-tripped report still validates");
    }

    #[test]
    fn unprofiled_reports_never_mention_attribution_keys() {
        let text = report_with_spans().render();
        assert!(!text.contains("regions"));
        assert!(!text.contains("latency"));
        assert!(!text.contains("faults"));
    }

    fn fault_section() -> FaultsSection {
        FaultsSection {
            faults_injected: 17,
            read_retries: 9,
            write_retries: 3,
            slow_stall_us: 420,
            degradation: vec![
                DegradationRow {
                    partition: "3".into(),
                    depth: 0,
                    bytes: 180_224,
                    budget: 32_768,
                    action: "repartition".into(),
                    detail: 6,
                },
                DegradationRow {
                    partition: "3.1".into(),
                    depth: 1,
                    bytes: 172_032,
                    budget: 32_768,
                    action: "nlj_fallback".into(),
                    detail: 6,
                },
            ],
        }
    }

    #[test]
    fn faults_section_round_trips() {
        let mut r = report_with_spans();
        r.faults = Some(fault_section());
        r.validate().expect("faults section does not affect validity");
        let text = r.render();
        assert!(text.contains("\"faults\""));
        assert!(text.contains("\"nlj_fallback\""));
        let back = RunReport::parse(&text).expect("parse");
        assert_eq!(back.faults, r.faults);
    }

    #[test]
    fn empty_faults_section_still_renders_when_attached() {
        // A fault-plan run where nothing fired still records that the
        // plan was attached (all-zero section), distinguishable from a
        // run with no plan at all (key absent).
        let mut r = report_with_spans();
        r.faults = Some(FaultsSection::default());
        let text = r.render();
        assert!(text.contains("\"faults\""));
        let back = RunReport::parse(&text).expect("parse");
        assert_eq!(back.faults, Some(FaultsSection::default()));
    }

    fn query_trace_section() -> QueryTraceSection {
        QueryTraceSection {
            trace_id: 0xABCD_1234,
            query_id: 7,
            queue_wait_ns: 1_500,
            grant_wait_ns: 2_500,
            exec_ns: 90_000,
            serialize_ns: 600,
            shed_count: 1,
            states: vec![
                ("received".into(), 0),
                ("queued".into(), 10),
                ("admitted".into(), 4_010),
                ("executing".into(), 4_020),
                ("responding".into(), 94_020),
                ("done".into(), 94_620),
            ],
        }
    }

    #[test]
    fn query_trace_section_round_trips_and_validates() {
        let mut r = report_with_spans();
        r.query_trace = Some(query_trace_section());
        r.validate().expect("query_trace section is consistent");
        let text = r.render();
        assert!(text.contains("\"query_trace\""));
        assert!(text.contains("\"trace_id\": 2882343476"));
        assert!(text.contains("\"state\": \"executing\""));
        let back = RunReport::parse(&text).expect("parse");
        assert_eq!(back.query_trace, r.query_trace);
        back.validate().expect("round-tripped report still validates");
        // Untraced reports never mention the key.
        assert!(!report_with_spans().render().contains("query_trace"));
    }

    #[test]
    fn validate_rejects_malformed_query_trace() {
        let mut r = report_with_spans();
        r.query_trace = Some(QueryTraceSection::default());
        assert!(r.validate().unwrap_err().contains("no state transitions"));

        let mut r = report_with_spans();
        let mut sec = query_trace_section();
        sec.states[2].0 = "levitating".into();
        r.query_trace = Some(sec);
        assert!(r.validate().unwrap_err().contains("unknown state"));

        let mut r = report_with_spans();
        let mut sec = query_trace_section();
        sec.states.swap(1, 4);
        r.query_trace = Some(sec);
        assert!(r.validate().unwrap_err().contains("monotone"));

        let mut r = report_with_spans();
        let mut sec = query_trace_section();
        sec.states.remove(0);
        r.query_trace = Some(sec);
        assert!(r.validate().unwrap_err().contains("not 'received'"));
    }

    #[test]
    fn parse_rejects_structurally_malformed_query_trace() {
        let mut r = report_with_spans();
        r.query_trace = Some(query_trace_section());
        let text = r.render();
        let no_states = text.replace("\"states\"", "\"stales\"");
        assert!(RunReport::parse(&no_states).unwrap_err().contains("states"));
        let bad_t = text.replace("\"t_ns\": 4010", "\"t_ns\": \"soon\"");
        assert!(RunReport::parse(&bad_t).unwrap_err().contains("t_ns"));
    }

    #[test]
    fn validate_rejects_inconsistent_regions() {
        // A counter that no longer sums to the run total (TLB walks are
        // not demand lines, so the histogram check stays satisfied).
        let mut r = profiled_report();
        r.regions.as_mut().unwrap().regions[0].stats.tlb_demand_walks += 1;
        assert!(r.validate().unwrap_err().contains("regions sum"));

        // A histogram out of step with its region's demand lines.
        let mut r = profiled_report();
        r.regions.as_mut().unwrap().regions[0].hist.record(4);
        assert!(r.validate().unwrap_err().contains("histogram"));
    }

    #[test]
    fn validate_groups_children_by_worker_lane() {
        // A parallel phase whose per-worker children each take nearly the
        // whole phase (critical path): lanes must not be summed together.
        let phase = Snapshot {
            breakdown: Breakdown { busy: 100, ..Default::default() },
            ..Default::default()
        };
        let lane = |busy| Snapshot {
            breakdown: Breakdown { busy, ..Default::default() },
            ..Default::default()
        };
        let mut rec = Recorder::new();
        let root = rec.begin("run", Snapshot::default());
        rec.end(root, phase);
        let mut report = RunReport::from_recorder("join", rec, phase, 1_000);
        report.simulated = true;
        for (w, busy) in [(0u64, 100u64), (1, 90)] {
            let mut s = SpanRecord::reconstruct(
                "pair".into(),
                Some(0),
                1,
                0,
                0,
                lane(busy),
            );
            s.meta.push(("worker".into(), w.to_string()));
            report.spans.push(s);
        }
        // 100 + 90 > 100, but each lane individually fits.
        report.validate().expect("parallel lanes validate independently");
        // An over-budget single lane still fails.
        report.spans[1].delta.breakdown.busy = 101;
        let err = report.validate().unwrap_err();
        assert!(err.contains("worker 0"), "{err}");
        // Untagged children still share one lane and sum.
        report.spans[1].delta.breakdown.busy = 60;
        for s in &mut report.spans[1..] {
            s.meta.clear();
        }
        assert!(report.validate().unwrap_err().contains("children"));
    }

    #[test]
    fn regions_section_merge_sums_counters_and_hists() {
        let a_sec = profiled_report().regions.unwrap();
        let mut merged = RegionsSection::default();
        merged.merge(&a_sec);
        merged.merge(&a_sec);
        assert_eq!(merged.regions.len(), a_sec.regions.len());
        for (m, a) in merged.regions.iter().zip(&a_sec.regions) {
            assert_eq!(m.stats.l1_hits, 2 * a.stats.l1_hits);
            assert_eq!(m.stats.mem_misses, 2 * a.stats.mem_misses);
            assert_eq!(m.hist.count(), 2 * a.hist.count());
        }
        assert_eq!(merged.skew.len(), 2 * a_sec.skew.len());

        // Doubling the totals alongside keeps region conservation intact.
        let mut r = profiled_report();
        let totals = r.totals;
        r.totals = totals + totals;
        r.spans[0].delta = r.totals;
        if let Some(h) = &mut r.spans[0].latency {
            let copy = *h;
            h.merge(&copy);
        }
        r.regions = Some(merged);
        r.validate().expect("merged section conserves against summed totals");
    }

    fn timeseries_section() -> TimeseriesSection {
        TimeseriesSection {
            interval_ms: 10,
            capacity: 64,
            series: vec![
                TimeseriesRow {
                    name: "phj_exec_tasks_total".into(),
                    min: 0,
                    max: 12,
                    last: 12,
                    points: vec![(0, 0), (10_000_000, 5), (20_000_000, 12)],
                },
                TimeseriesRow {
                    name: "phj_exec_workers".into(),
                    min: 4,
                    max: 4,
                    last: 4,
                    points: vec![(0, 4), (10_000_000, 4), (20_000_000, 4)],
                },
            ],
        }
    }

    #[test]
    fn timeseries_section_round_trips_and_validates() {
        let mut r = report_with_spans();
        r.timeseries = Some(timeseries_section());
        r.validate().expect("consistent timeseries validates");
        let text = r.render();
        assert!(text.contains("\"timeseries\""));
        assert!(text.contains("\"interval_ms\""));
        let back = RunReport::parse(&text).expect("parse");
        assert_eq!(back.timeseries, r.timeseries);
        back.validate().expect("round-tripped timeseries still validates");
    }

    #[test]
    fn untelemetered_reports_never_mention_timeseries() {
        assert!(!report_with_spans().render().contains("timeseries"));
    }

    #[test]
    fn validate_rejects_inconsistent_timeseries() {
        // Summary out of step with the points.
        let mut r = report_with_spans();
        let mut sec = timeseries_section();
        sec.series[0].max = 99;
        r.timeseries = Some(sec);
        assert!(r.validate().unwrap_err().contains("disagrees"));

        // A row with no points at all.
        let mut sec = timeseries_section();
        sec.series[0].points.clear();
        sec.series[0].min = 0;
        sec.series[0].max = 0;
        sec.series[0].last = 0;
        r.timeseries = Some(sec);
        assert!(r.validate().unwrap_err().contains("no points"));

        // More points than the ring could hold.
        let mut sec = timeseries_section();
        sec.capacity = 2;
        r.timeseries = Some(sec);
        assert!(r.validate().unwrap_err().contains("capacity"));

        // Timestamps running backwards.
        let mut sec = timeseries_section();
        sec.series[0].points[1].0 = 30_000_000;
        r.timeseries = Some(sec);
        assert!(r.validate().unwrap_err().contains("backwards"));
    }

    fn analysis_section() -> AnalysisSection {
        AnalysisSection {
            t_full: 150,
            t_next: 10,
            scheme: "group(G=16)".into(),
            cost_model: vec![("hash_fn".into(), 30), ("mod".into(), 68)],
            predictions: vec![PhasePrediction {
                phase: "probe".into(),
                stage_costs: vec![114, 8, 23, 115],
                g_min: 16,
                first_miss_hidden: true,
                d_min: 1,
                predicted_coverage: 1.0,
            }],
            residuals: vec![ResidualRow {
                metric: "prefetch_coverage".into(),
                predicted: 1.0,
                measured: 0.95,
                residual: -0.05000000000000004,
            }],
            primary: "latency_bound".into(),
            evidence: vec!["dcache stalls dominate".into()],
            rules: vec![
                RuleOutcome { class: "degraded".into(), fired: false, evidence: vec![] },
                RuleOutcome {
                    class: "latency_bound".into(),
                    fired: true,
                    evidence: vec!["dcache stalls dominate".into()],
                },
            ],
        }
    }

    #[test]
    fn analysis_section_round_trips_and_validates() {
        let mut r = report_with_spans();
        r.analysis = Some(analysis_section());
        r.validate().expect("consistent analysis validates");
        let text = r.render();
        assert!(text.contains("\"analysis\""));
        assert!(text.contains("\"g_min\""));
        let back = RunReport::parse(&text).expect("parse");
        assert_eq!(back.analysis, r.analysis);
        back.validate().expect("round-tripped analysis still validates");
    }

    #[test]
    fn unanalyzed_reports_never_mention_analysis() {
        assert!(!report_with_spans().render().contains("analysis"));
    }

    #[test]
    fn validate_rejects_inconsistent_analysis() {
        let mut r = report_with_spans();

        // Unknown primary class.
        let mut sec = analysis_section();
        sec.primary = "vibes_bound".into();
        r.analysis = Some(sec);
        assert!(r.validate().unwrap_err().contains("not a known class"));

        // Primary whose rule never fired.
        let mut sec = analysis_section();
        sec.rules[1].fired = false;
        r.analysis = Some(sec);
        assert!(r.validate().unwrap_err().contains("did not fire"));

        // Fired rule with no evidence.
        let mut sec = analysis_section();
        sec.rules[1].evidence.clear();
        sec.evidence.clear();
        r.analysis = Some(sec);
        assert!(r.validate().unwrap_err().contains("evidence"));

        // Residual that is not measured - predicted.
        let mut sec = analysis_section();
        sec.residuals[0].residual = 0.5;
        r.analysis = Some(sec);
        assert!(r.validate().unwrap_err().contains("measured - predicted"));

        // Non-finite residual.
        let mut sec = analysis_section();
        sec.residuals[0].measured = f64::NAN;
        r.analysis = Some(sec);
        assert!(r.validate().unwrap_err().contains("non-finite"));

        // Coverage outside [0, 1].
        let mut sec = analysis_section();
        sec.predictions[0].predicted_coverage = 1.5;
        r.analysis = Some(sec);
        assert!(r.validate().unwrap_err().contains("outside"));

        // Predictions with t_next = 0.
        let mut sec = analysis_section();
        sec.t_next = 0;
        r.analysis = Some(sec);
        assert!(r.validate().unwrap_err().contains("t_next"));
    }

    #[test]
    fn parse_rejects_wrong_schema_and_garbage() {
        assert!(RunReport::parse("{}").is_err());
        assert!(RunReport::parse("not json").is_err());
        let mut r = report_with_spans();
        r.spans.truncate(0);
        let doc = r.render().replace("\"schema_version\": 1", "\"schema_version\": 999");
        assert!(RunReport::parse(&doc).unwrap_err().contains("schema_version"));
    }
}
