//! Structured run reports: config fingerprint + per-span metrics +
//! derived rates, serialized as JSON.

use crate::json::{self, Json};
use crate::span::{Recorder, SpanRecord};
use phj_memsim::{Breakdown, CacheStats, Snapshot};

/// Report format version (bump on breaking layout changes).
pub const SCHEMA_VERSION: u64 = 1;

/// A complete, serializable description of one pipeline run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// What ran (`"join"`, `"agg"`, `"tune"`, or a bench slug).
    pub command: String,
    /// Config fingerprint: ordered key–value pairs (scheme, G, D, tuple
    /// size, memory-model parameters…). Strings so the report layer does
    /// not depend on the algorithm crates.
    pub config: Vec<(String, String)>,
    /// True when the run drove the cycle-level simulator (cycle numbers
    /// are meaningful); false for native runs (wall-clock only).
    pub simulated: bool,
    /// Whole-run memory-model delta.
    pub totals: Snapshot,
    /// Whole-run wall-clock time in nanoseconds.
    pub wall_ns: u64,
    /// Input tuples processed (build + probe), for rate derivation.
    pub tuples: u64,
    /// Join matches (or aggregate groups) produced.
    pub matches: u64,
    /// The recorded phase spans, in open order.
    pub spans: Vec<SpanRecord>,
}

impl RunReport {
    /// Build a report from a finished recorder. `totals` is the
    /// whole-run snapshot delta (typically the engine's final snapshot,
    /// since it starts at zero).
    pub fn from_recorder(
        command: &str,
        recorder: Recorder,
        totals: Snapshot,
        wall_ns: u64,
    ) -> Self {
        RunReport {
            command: command.to_string(),
            config: Vec::new(),
            simulated: false,
            totals,
            wall_ns,
            tuples: 0,
            matches: 0,
            spans: recorder.finish(),
        }
    }

    /// Append a config fingerprint entry.
    pub fn config_kv(&mut self, key: &str, value: impl std::fmt::Display) {
        self.config.push((key.to_string(), value.to_string()));
    }

    /// Fraction of miss latency hidden by prefetching, in `[0, 1]`:
    /// `pf_hidden_cycles / (pf_hidden_cycles + dcache_stall)`. Zero when
    /// nothing was prefetched *and* nothing stalled (e.g. native runs).
    pub fn prefetch_coverage(&self) -> f64 {
        coverage(&self.totals)
    }

    /// Fraction of prefetches whose line was evicted before any demand
    /// use: `pf_evicted_unused / prefetches`; zero when no prefetches
    /// were issued.
    pub fn pollution_rate(&self) -> f64 {
        pollution(&self.totals.stats)
    }

    /// Input tuples per wall-clock second (zero when untimed).
    pub fn tuples_per_sec(&self) -> f64 {
        if self.wall_ns == 0 {
            0.0
        } else {
            self.tuples as f64 / (self.wall_ns as f64 / 1e9)
        }
    }

    /// Simulated cycles per input tuple (`None` for native runs or empty
    /// inputs).
    pub fn cycles_per_tuple(&self) -> Option<f64> {
        let cycles = self.totals.breakdown.total();
        if self.simulated && self.tuples > 0 {
            Some(cycles as f64 / self.tuples as f64)
        } else {
            None
        }
    }

    /// Serialize to a JSON document.
    pub fn to_json(&self) -> Json {
        let spans = self
            .spans
            .iter()
            .map(|s| {
                Json::obj(vec![
                    ("name", Json::Str(s.name.clone())),
                    (
                        "parent",
                        s.parent.map_or(Json::Null, |p| Json::U64(p as u64)),
                    ),
                    ("depth", Json::U64(s.depth as u64)),
                    ("start_ns", Json::U64(s.start_ns)),
                    ("wall_ns", Json::U64(s.wall_ns)),
                    ("breakdown", breakdown_json(&s.delta.breakdown)),
                    ("cache", cache_json(&s.delta.stats)),
                    ("prefetch_coverage", Json::F64(coverage(&s.delta))),
                    (
                        "meta",
                        Json::Obj(
                            s.meta
                                .iter()
                                .map(|(k, v)| (k.clone(), Json::Str(v.clone())))
                                .collect(),
                        ),
                    ),
                ])
            })
            .collect();
        Json::obj(vec![
            ("schema_version", Json::U64(SCHEMA_VERSION)),
            ("command", Json::Str(self.command.clone())),
            ("simulated", Json::Bool(self.simulated)),
            (
                "config",
                Json::Obj(
                    self.config
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::Str(v.clone())))
                        .collect(),
                ),
            ),
            ("wall_ns", Json::U64(self.wall_ns)),
            ("tuples", Json::U64(self.tuples)),
            ("matches", Json::U64(self.matches)),
            ("breakdown", breakdown_json(&self.totals.breakdown)),
            ("cache", cache_json(&self.totals.stats)),
            (
                "derived",
                Json::obj(vec![
                    ("tuples_per_sec", Json::F64(self.tuples_per_sec())),
                    (
                        "cycles_per_tuple",
                        self.cycles_per_tuple().map_or(Json::Null, Json::F64),
                    ),
                    ("prefetch_coverage", Json::F64(self.prefetch_coverage())),
                    ("pollution_rate", Json::F64(self.pollution_rate())),
                ]),
            ),
            ("spans", Json::Arr(spans)),
        ])
    }

    /// Serialize to pretty-printed JSON text.
    pub fn render(&self) -> String {
        self.to_json().render_pretty()
    }

    /// Parse a report back from JSON text (the inverse of [`Self::render`]
    /// for every field the report model carries).
    pub fn parse(text: &str) -> Result<RunReport, String> {
        let doc = json::parse(text).map_err(|e| e.to_string())?;
        let version = field_u64(&doc, "schema_version")?;
        if version != SCHEMA_VERSION {
            return Err(format!("unsupported schema_version {version}"));
        }
        let spans = doc
            .get("spans")
            .and_then(Json::as_arr)
            .ok_or("missing spans array")?
            .iter()
            .map(parse_span)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(RunReport {
            command: field_str(&doc, "command")?,
            config: parse_kv(&doc, "config")?,
            simulated: matches!(doc.get("simulated"), Some(Json::Bool(true))),
            totals: Snapshot {
                breakdown: parse_breakdown(doc.get("breakdown").ok_or("missing breakdown")?)?,
                stats: parse_cache(doc.get("cache").ok_or("missing cache")?)?,
            },
            wall_ns: field_u64(&doc, "wall_ns")?,
            tuples: field_u64(&doc, "tuples")?,
            matches: field_u64(&doc, "matches")?,
            spans,
        })
    }

    /// Structural sanity checks; `Err` carries the first violation.
    ///
    /// * at least one span, exactly one root (depth 0, no parent);
    /// * parents precede children and depths are parent + 1;
    /// * children's cycle totals sum to at most their parent's;
    /// * the root span's cycle total equals the report's total (the root
    ///   wraps the whole run).
    pub fn validate(&self) -> Result<(), String> {
        if self.spans.is_empty() {
            return Err("no spans recorded".into());
        }
        let roots: Vec<usize> = (0..self.spans.len())
            .filter(|&i| self.spans[i].parent.is_none())
            .collect();
        if roots.len() != 1 {
            return Err(format!("expected exactly one root span, found {}", roots.len()));
        }
        let mut child_cycles = vec![0u64; self.spans.len()];
        for (i, s) in self.spans.iter().enumerate() {
            match s.parent {
                None => {
                    if s.depth != 0 {
                        return Err(format!("root span '{}' has depth {}", s.name, s.depth));
                    }
                }
                Some(p) => {
                    if p >= i {
                        return Err(format!("span '{}' parent {} does not precede it", s.name, p));
                    }
                    if s.depth != self.spans[p].depth + 1 {
                        return Err(format!("span '{}' depth {} under parent depth {}",
                            s.name, s.depth, self.spans[p].depth));
                    }
                    child_cycles[p] += s.delta.breakdown.total();
                }
            }
        }
        for (i, s) in self.spans.iter().enumerate() {
            if child_cycles[i] > s.delta.breakdown.total() {
                return Err(format!(
                    "children of span '{}' account {} cycles > parent's {}",
                    s.name,
                    child_cycles[i],
                    s.delta.breakdown.total()
                ));
            }
        }
        let root = roots[0];
        let root_cycles = self.spans[root].delta.breakdown.total();
        if self.simulated && root_cycles != self.totals.breakdown.total() {
            return Err(format!(
                "root span cycles {} != run total {}",
                root_cycles,
                self.totals.breakdown.total()
            ));
        }
        Ok(())
    }
}

/// Coverage for one snapshot delta (see
/// [`RunReport::prefetch_coverage`]).
pub fn coverage(s: &Snapshot) -> f64 {
    let hidden = s.stats.pf_hidden_cycles;
    let exposed = s.breakdown.dcache_stall;
    if hidden + exposed == 0 {
        0.0
    } else {
        hidden as f64 / (hidden + exposed) as f64
    }
}

/// Pollution rate for one stats delta (see
/// [`RunReport::pollution_rate`]).
pub fn pollution(s: &CacheStats) -> f64 {
    if s.prefetches == 0 {
        0.0
    } else {
        s.pf_evicted_unused as f64 / s.prefetches as f64
    }
}

fn breakdown_json(b: &Breakdown) -> Json {
    Json::obj(vec![
        ("busy", Json::U64(b.busy)),
        ("dcache_stall", Json::U64(b.dcache_stall)),
        ("dtlb_stall", Json::U64(b.dtlb_stall)),
        ("other_stall", Json::U64(b.other_stall)),
        ("total", Json::U64(b.total())),
    ])
}

fn cache_json(s: &CacheStats) -> Json {
    Json::obj(vec![
        ("visits", Json::U64(s.visits)),
        ("visit_lines", Json::U64(s.visit_lines)),
        ("l1_hits", Json::U64(s.l1_hits)),
        ("l1_inflight_hits", Json::U64(s.l1_inflight_hits)),
        ("l2_hits", Json::U64(s.l2_hits)),
        ("mem_misses", Json::U64(s.mem_misses)),
        ("l1_conflict_misses", Json::U64(s.l1_conflict_misses)),
        ("prefetches", Json::U64(s.prefetches)),
        ("pf_dropped", Json::U64(s.pf_dropped)),
        ("pf_from_l2", Json::U64(s.pf_from_l2)),
        ("pf_from_mem", Json::U64(s.pf_from_mem)),
        ("pf_evicted_unused", Json::U64(s.pf_evicted_unused)),
        ("pf_hidden_cycles", Json::U64(s.pf_hidden_cycles)),
        ("tlb_demand_walks", Json::U64(s.tlb_demand_walks)),
        ("tlb_prefetch_walks", Json::U64(s.tlb_prefetch_walks)),
        ("hw_prefetches", Json::U64(s.hw_prefetches)),
        ("writebacks", Json::U64(s.writebacks)),
        ("flushes", Json::U64(s.flushes)),
    ])
}

fn field_u64(doc: &Json, key: &str) -> Result<u64, String> {
    doc.get(key).and_then(Json::as_u64).ok_or_else(|| format!("missing u64 field '{key}'"))
}

fn field_str(doc: &Json, key: &str) -> Result<String, String> {
    doc.get(key)
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("missing string field '{key}'"))
}

fn parse_kv(doc: &Json, key: &str) -> Result<Vec<(String, String)>, String> {
    match doc.get(key) {
        Some(Json::Obj(members)) => members
            .iter()
            .map(|(k, v)| {
                v.as_str()
                    .map(|s| (k.clone(), s.to_string()))
                    .ok_or_else(|| format!("non-string value in '{key}'"))
            })
            .collect(),
        _ => Err(format!("missing object field '{key}'")),
    }
}

fn parse_breakdown(doc: &Json) -> Result<Breakdown, String> {
    Ok(Breakdown {
        busy: field_u64(doc, "busy")?,
        dcache_stall: field_u64(doc, "dcache_stall")?,
        dtlb_stall: field_u64(doc, "dtlb_stall")?,
        other_stall: field_u64(doc, "other_stall")?,
    })
}

fn parse_cache(doc: &Json) -> Result<CacheStats, String> {
    Ok(CacheStats {
        visits: field_u64(doc, "visits")?,
        visit_lines: field_u64(doc, "visit_lines")?,
        l1_hits: field_u64(doc, "l1_hits")?,
        l1_inflight_hits: field_u64(doc, "l1_inflight_hits")?,
        l2_hits: field_u64(doc, "l2_hits")?,
        mem_misses: field_u64(doc, "mem_misses")?,
        l1_conflict_misses: field_u64(doc, "l1_conflict_misses")?,
        prefetches: field_u64(doc, "prefetches")?,
        pf_dropped: field_u64(doc, "pf_dropped")?,
        pf_from_l2: field_u64(doc, "pf_from_l2")?,
        pf_from_mem: field_u64(doc, "pf_from_mem")?,
        pf_evicted_unused: field_u64(doc, "pf_evicted_unused")?,
        pf_hidden_cycles: field_u64(doc, "pf_hidden_cycles")?,
        tlb_demand_walks: field_u64(doc, "tlb_demand_walks")?,
        tlb_prefetch_walks: field_u64(doc, "tlb_prefetch_walks")?,
        hw_prefetches: field_u64(doc, "hw_prefetches")?,
        writebacks: field_u64(doc, "writebacks")?,
        flushes: field_u64(doc, "flushes")?,
    })
}

fn parse_span(doc: &Json) -> Result<SpanRecord, String> {
    let mut span = SpanRecord::reconstruct(
        field_str(doc, "name")?,
        match doc.get("parent") {
            Some(Json::Null) | None => None,
            Some(v) => Some(v.as_u64().ok_or("bad span parent")? as usize),
        },
        field_u64(doc, "depth")? as usize,
        field_u64(doc, "start_ns")?,
        field_u64(doc, "wall_ns")?,
        Snapshot {
            breakdown: parse_breakdown(doc.get("breakdown").ok_or("span missing breakdown")?)?,
            stats: parse_cache(doc.get("cache").ok_or("span missing cache")?)?,
        },
    );
    if let Some(Json::Obj(members)) = doc.get("meta") {
        for (k, v) in members {
            span.meta.push((k.clone(), v.as_str().unwrap_or_default().to_string()));
        }
    }
    Ok(span)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sim_snapshot() -> Snapshot {
        Snapshot {
            breakdown: Breakdown { busy: 100, dcache_stall: 60, dtlb_stall: 12, other_stall: 3 },
            stats: CacheStats {
                prefetches: 10,
                pf_evicted_unused: 2,
                pf_hidden_cycles: 90,
                mem_misses: 4,
                ..Default::default()
            },
        }
    }

    fn report_with_spans() -> RunReport {
        let mut rec = Recorder::new();
        let root = rec.begin("run", Snapshot::default());
        let inner = rec.begin("build", Snapshot::default());
        rec.meta("tuples", 7);
        rec.end(
            inner,
            Snapshot {
                breakdown: Breakdown { busy: 40, ..Default::default() },
                ..Default::default()
            },
        );
        rec.end(root, sim_snapshot());
        let mut report = RunReport::from_recorder("join", rec, sim_snapshot(), 5_000);
        report.simulated = true;
        report.tuples = 1_000;
        report.matches = 500;
        report.config_kv("scheme", "group");
        report.config_kv("g", 16);
        report
    }

    #[test]
    fn derived_metrics() {
        let r = report_with_spans();
        // coverage = 90 / (90 + 60)
        assert!((r.prefetch_coverage() - 0.6).abs() < 1e-12);
        // pollution = 2 / 10
        assert!((r.pollution_rate() - 0.2).abs() < 1e-12);
        // 1000 tuples in 5 µs
        assert!((r.tuples_per_sec() - 2e8).abs() < 1.0);
        // 175 cycles / 1000 tuples
        assert!((r.cycles_per_tuple().unwrap() - 0.175).abs() < 1e-12);
    }

    #[test]
    fn coverage_edge_cases() {
        // Zero prefetches, zero misses: no latency at all → coverage 0.
        assert_eq!(coverage(&Snapshot::default()), 0.0);
        // Misses but no prefetching: nothing hidden.
        let all_exposed = Snapshot {
            breakdown: Breakdown { dcache_stall: 500, ..Default::default() },
            ..Default::default()
        };
        assert_eq!(coverage(&all_exposed), 0.0);
        // Prefetching hid everything: no residual stall → coverage 1.
        let all_hidden = Snapshot {
            stats: CacheStats { pf_hidden_cycles: 300, ..Default::default() },
            ..Default::default()
        };
        assert_eq!(coverage(&all_hidden), 1.0);
        // Pollution with zero prefetches is 0, not NaN.
        assert_eq!(pollution(&CacheStats::default()), 0.0);
        let p = CacheStats { prefetches: 4, pf_evicted_unused: 4, ..Default::default() };
        assert_eq!(pollution(&p), 1.0);
    }

    #[test]
    fn report_round_trips_through_json() {
        let r = report_with_spans();
        let text = r.render();
        let back = RunReport::parse(&text).expect("parse");
        assert_eq!(back.command, r.command);
        assert_eq!(back.config, r.config);
        assert_eq!(back.simulated, r.simulated);
        assert_eq!(back.totals, r.totals);
        assert_eq!(back.wall_ns, r.wall_ns);
        assert_eq!(back.tuples, r.tuples);
        assert_eq!(back.matches, r.matches);
        assert_eq!(back.spans.len(), r.spans.len());
        for (a, b) in back.spans.iter().zip(&r.spans) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.parent, b.parent);
            assert_eq!(a.depth, b.depth);
            assert_eq!(a.wall_ns, b.wall_ns);
            assert_eq!(a.delta, b.delta);
            assert_eq!(a.meta, b.meta);
        }
        // And the round-tripped report validates like the original.
        assert_eq!(back.validate(), r.validate());
    }

    #[test]
    fn validate_accepts_well_formed_reports() {
        report_with_spans().validate().expect("valid");
    }

    #[test]
    fn validate_rejects_structural_violations() {
        let mut r = report_with_spans();
        r.spans.clear();
        assert!(r.validate().unwrap_err().contains("no spans"));

        let mut r = report_with_spans();
        r.spans[1].delta.breakdown.busy = r.spans[0].delta.breakdown.total() + 1;
        assert!(r.validate().unwrap_err().contains("children"));

        let mut r = report_with_spans();
        r.totals.breakdown.busy += 1;
        assert!(r.validate().unwrap_err().contains("run total"));

        let mut r = report_with_spans();
        let orphan = r.spans[1].clone();
        r.spans.push(orphan); // second depth-1 span is fine…
        r.spans.last_mut().unwrap().parent = None; // …a second root is not
        assert!(r.validate().unwrap_err().contains("root"));
    }

    #[test]
    fn parse_rejects_wrong_schema_and_garbage() {
        assert!(RunReport::parse("{}").is_err());
        assert!(RunReport::parse("not json").is_err());
        let mut r = report_with_spans();
        r.spans.truncate(0);
        let doc = r.render().replace("\"schema_version\": 1", "\"schema_version\": 999");
        assert!(RunReport::parse(&doc).unwrap_err().contains("schema_version"));
    }
}
