//! Phase spans: nested begin/end intervals with memory-model deltas.
//!
//! A [`Recorder`] collects [`SpanRecord`]s as the join pipeline runs: the
//! GRACE driver opens a span per pass, the partition pass opens one per
//! relation, the join phase one per partition pair, and build/probe nest
//! inside those. Each span captures wall-clock time (always) and the
//! delta of the memory model's [`Snapshot`] between entry and exit — so
//! under the simulator every span carries its own cycle
//! [`Breakdown`](phj_memsim::Breakdown) and
//! [`CacheStats`](phj_memsim::CacheStats), while under [`NativeModel`]
//! the snapshots are zero and wall-clock is the signal.
//!
//! The algorithms take `Option<&mut Recorder>` so the hot paths stay
//! recorder-free when observability is off; the [`span_begin`] /
//! [`span_end`] / [`span_meta`] helpers make that optional threading a
//! one-liner at each phase boundary.
//!
//! [`NativeModel`]: phj_memsim::NativeModel

use phj_memsim::{LatencyHistogram, MemoryModel, Snapshot};
use std::time::Instant;

/// Identifier of a span within its recorder (index into
/// [`Recorder::spans`]).
pub type SpanId = usize;

/// One recorded phase interval.
#[derive(Debug, Clone)]
pub struct SpanRecord {
    /// Phase name (`"grace_join"`, `"partition"`, `"build"`, …).
    pub name: String,
    /// Index of the enclosing span, if any.
    pub parent: Option<SpanId>,
    /// Nesting depth (roots are 0).
    pub depth: usize,
    /// Wall-clock start, nanoseconds since the recorder was created.
    pub start_ns: u64,
    /// Wall-clock duration in nanoseconds.
    pub wall_ns: u64,
    /// Memory-model snapshot at span entry (running totals).
    pub enter: Snapshot,
    /// Snapshot delta over the span (saturating; all-zero under a
    /// non-simulating model).
    pub delta: Snapshot,
    /// Free-form key–value annotations (partition index, tuple counts…).
    pub meta: Vec<(String, String)>,
    /// Exposed-latency histogram over the span (demand lines only).
    /// `None` unless the model profiles regions — absent spans keep
    /// unprofiled reports byte-identical.
    pub latency: Option<LatencyHistogram>,
    /// Model's running latency histogram at entry (for the exit diff).
    enter_hist: Option<LatencyHistogram>,
    closed: bool,
}

impl SpanRecord {
    /// Whether `end` has been called for this span.
    pub fn is_closed(&self) -> bool {
        self.closed
    }

    /// Rebuild a (closed) span from its serialized fields — the
    /// deserialization path of
    /// [`RunReport::parse`](crate::report::RunReport::parse).
    pub fn reconstruct(
        name: String,
        parent: Option<SpanId>,
        depth: usize,
        start_ns: u64,
        wall_ns: u64,
        delta: Snapshot,
    ) -> SpanRecord {
        SpanRecord {
            name,
            parent,
            depth,
            start_ns,
            wall_ns,
            enter: Snapshot::default(),
            delta,
            meta: Vec::new(),
            latency: None,
            enter_hist: None,
            closed: true,
        }
    }

    /// Attach a latency histogram (deserialization path).
    pub fn with_latency(mut self, latency: Option<LatencyHistogram>) -> SpanRecord {
        self.latency = latency;
        self
    }
}

/// Collects nested spans. Create one per run, thread it (optionally)
/// through the pipeline, then hand it to
/// [`RunReport::from_recorder`](crate::report::RunReport::from_recorder).
#[derive(Debug)]
pub struct Recorder {
    origin: Instant,
    spans: Vec<SpanRecord>,
    stack: Vec<SpanId>,
}

impl Default for Recorder {
    fn default() -> Self {
        Self::new()
    }
}

impl Recorder {
    /// A fresh recorder; wall-clock zero is now.
    pub fn new() -> Self {
        Self::with_origin(Instant::now())
    }

    /// A fresh recorder whose wall-clock zero is `origin`. Per-worker
    /// recorders in a parallel run share the driving recorder's origin
    /// ([`Self::origin`]) so their `start_ns` values live on one time
    /// axis and the merged trace shows genuine overlap.
    pub fn with_origin(origin: Instant) -> Self {
        Recorder { origin, spans: Vec::new(), stack: Vec::new() }
    }

    /// This recorder's wall-clock zero.
    pub fn origin(&self) -> Instant {
        self.origin
    }

    /// Open a span named `name`, nested inside the currently open span
    /// (if any). `enter` is the memory model's snapshot at this instant.
    pub fn begin(&mut self, name: &str, enter: Snapshot) -> SpanId {
        self.begin_profiled(name, enter, None)
    }

    /// [`Self::begin`] also capturing the model's running latency
    /// histogram (when it profiles), so the matching end can diff it into
    /// the span's own histogram.
    pub fn begin_profiled(
        &mut self,
        name: &str,
        enter: Snapshot,
        enter_hist: Option<LatencyHistogram>,
    ) -> SpanId {
        let id = self.spans.len();
        self.spans.push(SpanRecord {
            name: name.to_string(),
            parent: self.stack.last().copied(),
            depth: self.stack.len(),
            start_ns: self.origin.elapsed().as_nanos() as u64,
            wall_ns: 0,
            enter,
            delta: Snapshot::default(),
            meta: Vec::new(),
            latency: None,
            enter_hist,
            closed: false,
        });
        self.stack.push(id);
        id
    }

    /// Close span `id` with the model's snapshot at exit. Spans must
    /// close innermost-first; closing anything but the innermost open
    /// span panics (it means a phase wrapper leaked a span).
    pub fn end(&mut self, id: SpanId, exit: Snapshot) {
        self.end_profiled(id, exit, None)
    }

    /// [`Self::end`] with the model's latency histogram at exit: the span
    /// keeps the entry→exit diff (the histogram is monotone).
    pub fn end_profiled(
        &mut self,
        id: SpanId,
        exit: Snapshot,
        exit_hist: Option<LatencyHistogram>,
    ) {
        let top = self.stack.pop().expect("Recorder::end with no open span");
        assert_eq!(top, id, "spans must close innermost-first");
        let span = &mut self.spans[id];
        span.wall_ns = (self.origin.elapsed().as_nanos() as u64).saturating_sub(span.start_ns);
        span.delta = exit - span.enter;
        span.latency = match (span.enter_hist, exit_hist) {
            (Some(enter), Some(exit)) => Some(exit - enter),
            (None, exit) => exit,
            (Some(_), None) => None,
        };
        span.closed = true;
    }

    /// Annotate the innermost open span (no-op when none is open).
    pub fn meta(&mut self, key: &str, value: impl std::fmt::Display) {
        if let Some(&id) = self.stack.last() {
            self.spans[id].meta.push((key.to_string(), value.to_string()));
        }
    }

    /// Graft another recorder's (finished) spans under the currently open
    /// span — the merge step of a parallel run: each worker records into
    /// its own recorder, and the driver grafts the worker spans under the
    /// phase span it holds open.
    ///
    /// Span ids and parents are re-based; grafted roots become children
    /// of the innermost open span and are tagged with a `"worker"` meta
    /// key, so the report validator can group sibling cycle sums per
    /// worker lane and the trace export can lay each worker on its own
    /// track. `enter_offset` is added to every grafted span's entry
    /// snapshot, shifting a worker-local cycle axis (a fresh per-worker
    /// sim model starts at zero) to the run's axis at the phase start.
    ///
    /// The merge is lossless: grafted spans keep their names, deltas,
    /// meta, latency histograms, and wall-clock intervals unchanged.
    ///
    /// # Panics
    /// Panics if no span is open or any grafted span is still open.
    pub fn graft(&mut self, worker: usize, enter_offset: Snapshot, spans: Vec<SpanRecord>) {
        let top = *self.stack.last().expect("graft requires an open span");
        let base = self.spans.len();
        let depth_base = self.stack.len();
        for mut s in spans {
            assert!(s.closed, "graft of an open span");
            if s.parent.is_none() {
                s.meta.push(("worker".to_string(), worker.to_string()));
            }
            s.parent = match s.parent {
                Some(p) => Some(base + p),
                None => Some(top),
            };
            s.depth += depth_base;
            s.enter = s.enter + enter_offset;
            self.spans.push(s);
        }
    }

    /// All spans, in open order.
    pub fn spans(&self) -> &[SpanRecord] {
        &self.spans
    }

    /// Number of spans still open.
    pub fn open_spans(&self) -> usize {
        self.stack.len()
    }

    /// Consume the recorder, returning its spans. Panics if any span is
    /// still open — every `begin` must have seen its `end`.
    pub fn finish(self) -> Vec<SpanRecord> {
        assert!(self.stack.is_empty(), "Recorder::finish with {} open span(s)", self.stack.len());
        self.spans
    }
}

/// Open a span on an optional recorder, snapshotting `model`. Returns
/// `None` (for the matching [`span_end`]) when no recorder is attached.
///
/// Independently of the recorder, the phase transition is journaled to
/// the process flight recorder (`phj_flightrec`) — a no-op until a
/// binary installs one, and never on the simulated critical path — so
/// crash postmortems see phase context even from unobserved runs.
pub fn span_begin<M: MemoryModel>(
    rec: &mut Option<&mut Recorder>,
    model: &M,
    name: &str,
) -> Option<SpanId> {
    phj_flightrec::phase_enter(name);
    rec.as_deref_mut().map(|r| r.begin_profiled(name, model.snapshot(), model.latency_hist()))
}

/// Close the span opened by the matching [`span_begin`]. Also journals
/// the phase exit to the flight recorder (see [`span_begin`]).
pub fn span_end<M: MemoryModel>(
    rec: &mut Option<&mut Recorder>,
    model: &M,
    id: Option<SpanId>,
) {
    phj_flightrec::phase_exit();
    if let (Some(r), Some(id)) = (rec.as_deref_mut(), id) {
        r.end_profiled(id, model.snapshot(), model.latency_hist());
    }
}

/// Annotate the innermost open span of an optional recorder.
pub fn span_meta(rec: &mut Option<&mut Recorder>, key: &str, value: impl std::fmt::Display) {
    if let Some(r) = rec.as_deref_mut() {
        r.meta(key, value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phj_memsim::{Breakdown, CacheStats};

    fn snap(busy: u64, prefetches: u64) -> Snapshot {
        Snapshot {
            breakdown: Breakdown { busy, ..Default::default() },
            stats: CacheStats { prefetches, ..Default::default() },
        }
    }

    #[test]
    fn nesting_records_parents_and_depths() {
        let mut r = Recorder::new();
        let a = r.begin("join", snap(0, 0));
        let b = r.begin("partition", snap(10, 1));
        r.meta("rel", 0);
        r.end(b, snap(30, 2));
        let c = r.begin("pair", snap(30, 2));
        let d = r.begin("build", snap(31, 2));
        r.end(d, snap(40, 3));
        r.end(c, snap(45, 3));
        r.end(a, snap(50, 4));
        let spans = r.finish();
        let shape: Vec<(&str, Option<usize>, usize)> =
            spans.iter().map(|s| (s.name.as_str(), s.parent, s.depth)).collect();
        assert_eq!(
            shape,
            vec![
                ("join", None, 0),
                ("partition", Some(0), 1),
                ("pair", Some(0), 1),
                ("build", Some(2), 2),
            ]
        );
        assert_eq!(spans[1].meta, vec![("rel".to_string(), "0".to_string())]);
        assert_eq!(spans[1].delta.breakdown.busy, 20);
        assert_eq!(spans[1].delta.stats.prefetches, 1);
        assert_eq!(spans[0].delta.breakdown.busy, 50);
        assert!(spans.iter().all(|s| s.is_closed()));
    }

    #[test]
    #[should_panic(expected = "innermost-first")]
    fn out_of_order_end_panics() {
        let mut r = Recorder::new();
        let a = r.begin("outer", Snapshot::default());
        let _b = r.begin("inner", Snapshot::default());
        r.end(a, Snapshot::default());
    }

    #[test]
    #[should_panic(expected = "open span")]
    fn finish_with_open_span_panics() {
        let mut r = Recorder::new();
        r.begin("left-open", Snapshot::default());
        let _ = r.finish();
    }

    #[test]
    fn optional_helpers_are_noops_without_recorder() {
        let mut rec: Option<&mut Recorder> = None;
        let model = phj_memsim::NativeModel;
        let id = span_begin(&mut rec, &model, "x");
        assert_eq!(id, None);
        span_meta(&mut rec, "k", 1);
        span_end(&mut rec, &model, id); // must not panic
    }

    #[test]
    fn optional_helpers_record_through_some() {
        let mut recorder = Recorder::new();
        let model = phj_memsim::NativeModel;
        {
            let mut rec = Some(&mut recorder);
            let id = span_begin(&mut rec, &model, "phase");
            span_meta(&mut rec, "tuples", 42);
            span_end(&mut rec, &model, id);
        }
        let spans = recorder.finish();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].name, "phase");
        assert_eq!(spans[0].meta[0], ("tuples".to_string(), "42".to_string()));
        // NativeModel snapshots are zero, so the delta is zero.
        assert_eq!(spans[0].delta, Snapshot::default());
    }

    #[test]
    fn graft_rebases_ids_depths_and_offsets() {
        // Worker recorder: two top-level spans, one nested child.
        let mut w = Recorder::new();
        let a = w.begin("pair", snap(0, 0));
        let b = w.begin("build", snap(1, 0));
        w.end(b, snap(5, 2));
        w.end(a, snap(9, 3));
        let c = w.begin("pair", snap(9, 3));
        w.end(c, snap(12, 4));
        let worker_spans = w.finish();

        let mut main = Recorder::new();
        let run = main.begin("run", snap(0, 0));
        let phase = main.begin("join_pass", snap(100, 7));
        main.graft(3, snap(100, 7), worker_spans);
        main.end(phase, snap(112, 11));
        main.end(run, snap(112, 11));
        let spans = main.finish();
        // Layout: 0 run, 1 join_pass, 2 pair, 3 build, 4 pair.
        assert_eq!(spans[2].parent, Some(1));
        assert_eq!(spans[3].parent, Some(2), "nested child follows its root");
        assert_eq!(spans[4].parent, Some(1));
        assert_eq!(spans[2].depth, 2);
        assert_eq!(spans[3].depth, 3);
        // Grafted roots are worker-tagged; nested children are not.
        let worker_of = |s: &SpanRecord| {
            s.meta.iter().find(|(k, _)| k == "worker").map(|(_, v)| v.clone())
        };
        assert_eq!(worker_of(&spans[2]).as_deref(), Some("3"));
        assert_eq!(worker_of(&spans[3]), None);
        assert_eq!(worker_of(&spans[4]).as_deref(), Some("3"));
        // Entry snapshots shift to the run axis; deltas are untouched.
        assert_eq!(spans[2].enter.breakdown.busy, 100);
        assert_eq!(spans[4].enter.breakdown.busy, 109);
        assert_eq!(spans[2].delta.breakdown.busy, 9);
        assert_eq!(spans[3].delta.stats.prefetches, 2);
    }

    #[test]
    #[should_panic(expected = "requires an open span")]
    fn graft_without_open_span_panics() {
        let mut r = Recorder::new();
        r.graft(0, Snapshot::default(), Vec::new());
    }

    #[test]
    fn wall_clock_is_monotone_nonnegative() {
        let mut r = Recorder::new();
        let a = r.begin("t", Snapshot::default());
        std::thread::sleep(std::time::Duration::from_millis(1));
        r.end(a, Snapshot::default());
        let spans = r.finish();
        assert!(spans[0].wall_ns >= 1_000_000, "slept ≥ 1 ms: {}", spans[0].wall_ns);
    }
}
