//! ASCII rendering of a report's memory-access attribution: a region ×
//! latency heatmap, a top-N miss-hotspot table, and partition skew bars.
//!
//! The heatmap answers the paper's central diagnostic question — *which
//! data structure is the join stalling on, and for how long per access* —
//! at a glance in a terminal, without loading the JSON into anything.

use crate::report::{RegionsSection, RunReport, SkewRow};
use phj_memsim::LATENCY_BUCKETS;

/// Shade ramp for heatmap cells, lightest to darkest.
const SHADES: &[u8] = b" .:-=+*#%@";

/// Default width budget (in characters) for the variable-width parts of
/// the renderers: heatmap columns and skew bars.
pub const DEFAULT_WIDTH: usize = 30;

/// Render the attribution section of `report` as ASCII: heatmap +
/// hotspots + skew. `None` when the report has no `regions` section
/// (the run did not profile).
pub fn render(report: &RunReport) -> Option<String> {
    render_width(report, DEFAULT_WIDTH)
}

/// [`render`] with an explicit width budget (the CLI's `--width`).
pub fn render_width(report: &RunReport, width: usize) -> Option<String> {
    report.regions.as_ref().map(|sec| render_section_width(sec, width))
}

/// Render a [`RegionsSection`] directly at the default width.
pub fn render_section(sec: &RegionsSection) -> String {
    render_section_width(sec, DEFAULT_WIDTH)
}

/// Render a [`RegionsSection`] with an explicit width budget.
pub fn render_section_width(sec: &RegionsSection, width: usize) -> String {
    let width = width.max(6);
    let mut out = String::new();
    heatmap(sec, width, &mut out);
    hotspots(sec, &mut out);
    skew(&sec.skew, width, &mut out);
    out
}

/// The region × log2-latency grid. Rows are regions with at least one
/// demand line; columns cover the occupied bucket range, clamped to the
/// width budget (keeping the high-latency tail, which is where the
/// diagnosis lives); cell shade is log-scaled against the densest cell.
fn heatmap(sec: &RegionsSection, width: usize, out: &mut String) {
    let rows: Vec<_> = sec.regions.iter().filter(|r| r.stats.demand_lines() > 0).collect();
    if rows.is_empty() {
        out.push_str("memory-access attribution: no demand accesses recorded\n");
        return;
    }
    // Occupied bucket range across all shown regions.
    let mut lo = LATENCY_BUCKETS;
    let mut hi = 0usize;
    let mut max_cell = 0u64;
    for r in &rows {
        for (i, &c) in r.hist.buckets.iter().enumerate() {
            if c > 0 {
                lo = lo.min(i);
                hi = hi.max(i);
                max_cell = max_cell.max(c);
            }
        }
    }
    let name_w = rows.iter().map(|r| r.name.len()).max().unwrap_or(0).max(6);
    out.push_str("exposed latency per demand line (columns: log2 cycle buckets)\n");
    if max_cell == 0 {
        // Regions exist but every histogram is empty: there is no bucket
        // range to grid (lo > hi), so render the no-samples marker per
        // region instead of underflowing the width arithmetic.
        for r in &rows {
            out.push_str(&format!("{:>name_w$} | -\n", r.name));
        }
        out.push('\n');
        return;
    }
    // Clamp the column count to the width budget (6 chars per column).
    let max_cols = (width / 6).max(1);
    if hi - lo + 1 > max_cols {
        lo = hi + 1 - max_cols;
    }
    out.push_str(&format!("{:>name_w$} |", "cycles"));
    for i in lo..=hi {
        out.push_str(&format!("{:>6}", bucket_label(i)));
    }
    out.push('\n');
    out.push_str(&format!("{:-<w$}\n", "", w = name_w + 2 + 6 * (hi - lo + 1)));
    for r in &rows {
        out.push_str(&format!("{:>name_w$} |", r.name));
        if r.hist.count() == 0 {
            // Demand lines but no latency samples for this region alone:
            // mark it rather than printing an all-blank row.
            out.push_str(" -");
        } else {
            for i in lo..=hi {
                let c = r.hist.buckets[i];
                out.push_str(&format!("{:>5}{}", "", shade(c, max_cell) as char));
            }
        }
        out.push('\n');
    }
    out.push('\n');
}

/// Miss-hotspot table: regions ranked by memory misses, with share of the
/// total and their latency percentiles.
fn hotspots(sec: &RegionsSection, out: &mut String) {
    let total_misses: u64 = sec.regions.iter().map(|r| r.stats.mem_misses).sum();
    let total_l2: u64 = sec.regions.iter().map(|r| r.stats.l2_hits).sum();
    out.push_str(&format!(
        "miss hotspots ({total_misses} memory misses, {total_l2} L2 hits)\n"
    ));
    let mut ranked: Vec<_> = sec.regions.iter().filter(|r| r.stats.demand_lines() > 0).collect();
    ranked.sort_by(|a, b| {
        (b.stats.mem_misses, b.stats.l2_hits).cmp(&(a.stats.mem_misses, a.stats.l2_hits))
    });
    out.push_str(&format!(
        "{:>20} {:>10} {:>6} {:>10} {:>8} {:>8} {:>8}\n",
        "region", "mem_misses", "share", "l2_hits", "p50", "p95", "p99"
    ));
    for r in ranked {
        let share = if total_misses == 0 {
            0.0
        } else {
            100.0 * r.stats.mem_misses as f64 / total_misses as f64
        };
        let (p50, p95, p99) = r.hist.percentiles();
        out.push_str(&format!(
            "{:>20} {:>10} {:>5.1}% {:>10} {:>8} {:>8} {:>8}\n",
            r.name, r.stats.mem_misses, share, r.stats.l2_hits, p50, p95, p99
        ));
    }
    out.push('\n');
}

/// Per-partition skew bars: probes and misses per pair, normalized to the
/// heaviest pair and scaled to the width budget. A pair that recorded no
/// cycles at all gets the no-samples marker instead of a bar.
fn skew(rows: &[SkewRow], width: usize, out: &mut String) {
    if rows.is_empty() {
        return;
    }
    let max_cycles = rows.iter().map(|r| r.cycles).max().unwrap_or(0).max(1);
    out.push_str(&format!("partition skew ({} pairs)\n", rows.len()));
    out.push_str(&format!(
        "{:>5} {:>12} {:>12} {:>12} {:>12}  cycles\n",
        "pair", "build", "probe", "mem_misses", "cycles"
    ));
    for r in rows {
        let bar = if r.cycles == 0 {
            "-".to_string()
        } else {
            let bar_len = ((r.cycles as f64 / max_cycles as f64) * width as f64).round() as usize;
            "#".repeat(bar_len.clamp(1, width))
        };
        out.push_str(&format!(
            "{:>5} {:>12} {:>12} {:>12} {:>12}  {}\n",
            r.index, r.build_tuples, r.probe_tuples, r.mem_misses, r.cycles, bar,
        ));
    }
}

/// Column label for bucket `i`: the log2 exponent of its upper bound
/// (`0`, `1`, `2`, `4`, `8`, …, in cycles).
fn bucket_label(i: usize) -> String {
    if i == 0 {
        "hit".to_string()
    } else if i == LATENCY_BUCKETS - 1 {
        "inf".to_string()
    } else {
        format!("<{}", 1u64 << i)
    }
}

/// Log-scaled shade: empty cells are blank; the densest cell gets the
/// darkest glyph.
fn shade(count: u64, max: u64) -> u8 {
    if count == 0 {
        return SHADES[0];
    }
    let steps = (SHADES.len() - 1) as f64;
    let frac = ((count as f64).ln_1p() / (max as f64).ln_1p()).clamp(0.0, 1.0);
    SHADES[((frac * steps).ceil() as usize).clamp(1, SHADES.len() - 1)]
}

/// Expose the total histogram shade ramp for tests.
#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::RegionReport;
    use phj_memsim::{LatencyHistogram, RegionStats};

    fn section() -> RegionsSection {
        let mut hot = LatencyHistogram::default();
        for _ in 0..800 {
            hot.record(150);
        }
        for _ in 0..200 {
            hot.record(0);
        }
        let mut cold = LatencyHistogram::default();
        for _ in 0..50 {
            cold.record(0);
        }
        RegionsSection {
            regions: vec![
                RegionReport {
                    name: "hash_bucket_headers".into(),
                    stats: RegionStats {
                        l1_hits: 200,
                        mem_misses: 800,
                        stall_cycles: 120_000,
                        ..Default::default()
                    },
                    hist: hot,
                },
                RegionReport {
                    name: "probe_tuples".into(),
                    stats: RegionStats { l1_hits: 50, ..Default::default() },
                    hist: cold,
                },
                RegionReport {
                    name: "other".into(),
                    stats: RegionStats::default(),
                    hist: LatencyHistogram::default(),
                },
            ],
            skew: vec![
                SkewRow {
                    index: 0,
                    build_tuples: 100,
                    probe_tuples: 200,
                    cycles: 5_000,
                    l2_hits: 3,
                    mem_misses: 40,
                },
                SkewRow {
                    index: 1,
                    build_tuples: 900,
                    probe_tuples: 1800,
                    cycles: 50_000,
                    l2_hits: 30,
                    mem_misses: 400,
                },
            ],
        }
    }

    #[test]
    fn renders_all_three_sections() {
        let text = render_section(&section());
        assert!(text.contains("exposed latency per demand line"));
        assert!(text.contains("miss hotspots"));
        assert!(text.contains("partition skew (2 pairs)"));
        // Regions with no demand lines are hidden from the grid.
        let grid = text.split("miss hotspots").next().unwrap();
        assert!(!grid.contains("\n other"), "empty region hidden: {grid}");
    }

    #[test]
    fn hotspot_table_ranks_by_misses() {
        let text = render_section(&section());
        let hot = text.find("hash_bucket_headers").unwrap();
        let tuples = text.find("probe_tuples").unwrap();
        assert!(hot < tuples, "heaviest region listed first");
        assert!(text.contains("800 memory misses"));
        assert!(text.contains("100.0%"));
    }

    #[test]
    fn skew_bars_scale_with_cycles() {
        let text = render_section(&section());
        let lines: Vec<&str> = text.lines().collect();
        let light = lines.iter().find(|l| l.trim_start().starts_with("0 ")).unwrap();
        let heavy = lines.iter().find(|l| l.trim_start().starts_with("1 ")).unwrap();
        let bars = |l: &str| l.chars().filter(|&c| c == '#').count();
        assert!(bars(heavy) > bars(light), "heavy: {heavy} light: {light}");
        assert_eq!(bars(heavy), 30, "heaviest pair gets the full bar");
    }

    #[test]
    fn empty_section_says_so() {
        let text = render_section(&RegionsSection::default());
        assert!(text.contains("no demand accesses"));
    }

    #[test]
    fn shade_monotone() {
        assert_eq!(shade(0, 100), b' ');
        let mid = shade(10, 1000);
        let top = shade(1000, 1000);
        assert_eq!(top, *SHADES.last().unwrap());
        assert!(SHADES.iter().position(|&s| s == mid) < SHADES.iter().position(|&s| s == top));
    }

    /// A section whose regions have demand lines but empty latency
    /// histograms — the shape that used to underflow the grid-width
    /// arithmetic and panic.
    fn zero_sample_section() -> RegionsSection {
        RegionsSection {
            regions: vec![RegionReport {
                name: "hash_cells".into(),
                stats: RegionStats { l1_hits: 10, ..Default::default() },
                hist: LatencyHistogram::default(),
            }],
            skew: vec![SkewRow { index: 0, cycles: 0, ..Default::default() }],
        }
    }

    #[test]
    fn zero_sample_regions_render_dash_instead_of_panicking() {
        let text = render_section(&zero_sample_section());
        assert!(text.contains("hash_cells | -"), "{text}");
        // The zero-cycle skew row gets the marker too, not a phantom bar.
        let skew_line = text.lines().find(|l| l.trim_start().starts_with("0 ")).unwrap();
        assert!(skew_line.trim_end().ends_with('-'), "{skew_line}");
        assert!(!skew_line.contains('#'), "{skew_line}");
        assert!(!text.contains("NaN"));
    }

    #[test]
    fn mixed_empty_and_populated_regions_mark_the_empty_row() {
        let mut sec = section();
        // Give the empty "other" region demand lines so it joins the grid
        // with an empty histogram.
        sec.regions[2].stats.l1_hits = 5;
        let text = render_section(&sec);
        let grid = text.split("miss hotspots").next().unwrap();
        let other = grid.lines().find(|l| l.contains("other")).unwrap();
        assert!(other.trim_end().ends_with("| -"), "{other}");
    }

    #[test]
    fn width_clamps_heatmap_columns_and_skew_bars() {
        let mut sec = section();
        // Spread samples across many buckets so clamping has work to do.
        for shift in 0..12 {
            sec.regions[0].hist.record(1u64 << shift);
        }
        for width in [20usize, 200] {
            let text = render_section_width(&sec, width);
            let header = text
                .lines()
                .find(|l| l.contains("cycles |"))
                .expect("grid header");
            let cols = header.split('|').nth(1).unwrap().split_whitespace().count();
            assert!(cols <= (width / 6).max(1), "width {width}: {cols} cols\n{header}");
            let bars = text
                .lines()
                .filter(|l| l.contains('#'))
                .map(|l| l.chars().filter(|&c| c == '#').count())
                .max()
                .unwrap();
            assert!(bars <= width, "width {width}: longest bar {bars}");
            // The heaviest pair still gets the full bar at any width.
            assert_eq!(bars, width, "width {width}");
        }
    }

    #[test]
    fn render_none_without_regions() {
        let rec = crate::span::Recorder::new();
        let report =
            RunReport::from_recorder("join", rec, phj_memsim::Snapshot::default(), 0);
        assert!(render(&report).is_none());
    }
}
