//! A small JSON document model with an encoder and a parser.
//!
//! The workspace builds offline, so there is no serde; this module is the
//! serialization layer for run reports and trace files. Objects preserve
//! insertion order (reports are meant to be diffed as text), integers
//! round-trip exactly through a dedicated `u64` variant, and the parser
//! accepts anything the encoder emits plus ordinary hand-written JSON.

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer (cycle counts, event counts). Encoded
    /// without a decimal point and parsed back exactly.
    U64(u64),
    /// Any other number.
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion-ordered, keys not deduplicated.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Build an object from key–value pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Member lookup (first match) on objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `u64` (also accepts an integral `F64`).
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Json::U64(v) => Some(v),
            Json::F64(v) if v >= 0.0 && v.fract() == 0.0 && v <= u64::MAX as f64 => Some(v as u64),
            _ => None,
        }
    }

    /// The value as `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Json::U64(v) => Some(v as f64),
            Json::F64(v) => Some(v),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serialize compactly (no whitespace).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    /// Serialize with two-space indentation.
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(v) => out.push_str(&v.to_string()),
            Json::F64(v) => write_f64(*v, out),
            Json::Str(s) => write_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    fn write_pretty(&self, out: &mut String, depth: usize) {
        match self {
            Json::Arr(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    indent(out, depth + 1);
                    item.write_pretty(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push(']');
            }
            Json::Obj(members) if !members.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    indent(out, depth + 1);
                    write_string(k, out);
                    out.push_str(": ");
                    v.write_pretty(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push('}');
            }
            other => other.write(out),
        }
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_f64(v: f64, out: &mut String) {
    if v.is_finite() {
        // `{}` on f64 is shortest-round-trip in Rust — exactly what a
        // machine-readable report wants. Keep integral floats visibly
        // floats (a coverage of exactly 1 encodes as "1.0").
        let s = format!("{v}");
        out.push_str(&s);
        if !s.contains(['.', 'e', 'E']) {
            out.push_str(".0");
        }
    } else {
        // JSON has no NaN/Infinity; reports encode them as null.
        out.push_str("null");
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure: byte offset plus message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the failure in the input.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parse a complete JSON document (trailing whitespace allowed, trailing
/// garbage rejected).
pub fn parse(input: &str) -> Result<Json, ParseError> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> ParseError {
        ParseError { offset: self.pos, message: message.to_string() }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> Result<(), ParseError> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected '{kw}'")))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.eat_keyword("true").map(|_| Json::Bool(true)),
            Some(b'f') => self.eat_keyword("false").map(|_| Json::Bool(false)),
            Some(b'n') => self.eat_keyword("null").map(|_| Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.eat(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let val = self.value()?;
            members.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.eat(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            // Fast path: copy a run of plain bytes.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                // The input is valid UTF-8 and we only stopped at ASCII
                // delimiters, so this slice is valid UTF-8.
                s.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).unwrap());
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                self.eat(b'\\')?;
                                self.eat(b'u')?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let cp = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(cp).ok_or_else(|| self.err("bad code point"))?
                            } else {
                                char::from_u32(hi).ok_or_else(|| self.err("bad code point"))?
                            };
                            s.push(c);
                            continue; // hex4 advanced past the escape
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => return Err(self.err("control character in string")),
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let b = self.peek().ok_or_else(|| self.err("truncated \\u escape"))?;
            let d = (b as char).to_digit(16).ok_or_else(|| self.err("bad hex digit"))?;
            v = v * 16 + d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut integral = true;
        if self.peek() == Some(b'.') {
            integral = false;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            integral = false;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if integral && !text.starts_with('-') {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Json::U64(v));
            }
        }
        text.parse::<f64>()
            .map(Json::F64)
            .map_err(|_| ParseError { offset: start, message: format!("bad number '{text}'") })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_compact_documents() {
        let doc = Json::obj(vec![
            ("name", Json::Str("probe".into())),
            ("cycles", Json::U64(1234)),
            ("rate", Json::F64(0.5)),
            ("tags", Json::Arr(vec![Json::Bool(true), Json::Null])),
        ]);
        assert_eq!(
            doc.render(),
            r#"{"name":"probe","cycles":1234,"rate":0.5,"tags":[true,null]}"#
        );
    }

    #[test]
    fn escapes_and_unescapes_strings() {
        let nasty = "a\"b\\c\nd\te\rf\u{1}g λ 🚀";
        let rendered = Json::Str(nasty.into()).render();
        assert!(rendered.contains("\\\""));
        assert!(rendered.contains("\\\\"));
        assert!(rendered.contains("\\n"));
        assert!(rendered.contains("\\u0001"));
        assert_eq!(parse(&rendered).unwrap(), Json::Str(nasty.into()));
    }

    #[test]
    fn parses_unicode_escapes_and_surrogates() {
        assert_eq!(parse(r#""λ""#).unwrap(), Json::Str("λ".into()));
        assert_eq!(parse(r#""😀""#).unwrap(), Json::Str("😀".into()));
        assert!(parse(r#""\ud83d x""#).is_err(), "lone high surrogate rejected");
    }

    #[test]
    fn u64_round_trips_exactly() {
        let big = u64::MAX - 1;
        let doc = Json::U64(big);
        assert_eq!(parse(&doc.render()).unwrap().as_u64(), Some(big));
    }

    #[test]
    fn round_trips_nested_documents() {
        let doc = Json::obj(vec![
            ("spans", Json::Arr(vec![
                Json::obj(vec![("name", Json::Str("build".into())), ("n", Json::U64(0))]),
                Json::obj(vec![("name", Json::Str("probe".into())), ("n", Json::U64(7))]),
            ])),
            ("f", Json::F64(-12.25)),
        ]);
        let compact = parse(&doc.render()).unwrap();
        let pretty = parse(&doc.render_pretty()).unwrap();
        assert_eq!(compact, doc);
        assert_eq!(pretty, doc);
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["", "{", "[1,", "{\"a\":}", "12 34", "\"abc", "{'a':1}", "nulll"] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn accessors_navigate() {
        let doc = parse(r#"{"a": {"b": [1, 2.5, "x"]}}"#).unwrap();
        let arr = doc.get("a").unwrap().get("b").unwrap().as_arr().unwrap();
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(arr[1].as_f64(), Some(2.5));
        assert_eq!(arr[2].as_str(), Some("x"));
        assert_eq!(doc.get("missing"), None);
    }

    #[test]
    fn nonfinite_floats_become_null() {
        assert_eq!(Json::F64(f64::NAN).render(), "null");
        assert_eq!(Json::F64(f64::INFINITY).render(), "null");
    }

    #[test]
    fn integral_floats_keep_a_decimal_point() {
        assert_eq!(Json::F64(1.0).render(), "1.0");
        assert_eq!(Json::F64(0.0).render(), "0.0");
        assert_eq!(Json::F64(-3.0).render(), "-3.0");
    }
}
