//! `chrome://tracing` / Perfetto export.
//!
//! Emits the Trace Event Format's JSON object form: a `traceEvents`
//! array of `"ph": "X"` (complete) events, one per recorded span. Spans
//! from a sequential run share one thread track; spans grafted from a
//! parallel worker (tagged with a `worker` meta, see
//! [`Recorder::graft`](crate::Recorder::graft)) — and their whole
//! subtrees — draw on a per-worker track instead, so parallel phases
//! render as stacked lanes. Load the file at <https://ui.perfetto.dev>
//! or `chrome://tracing` to see the phase hierarchy on a timeline.
//!
//! Timebase: the trace format counts microseconds. Simulated runs map
//! **1 simulated cycle → 1 µs** (positions and widths are then exact
//! cycle counts, just read "µs" as "cycles"); native runs use real
//! wall-clock microseconds.

use crate::json::Json;
use crate::report::{coverage, RunReport};

/// Render `report` as a Trace Event Format JSON document.
pub fn trace_json(report: &RunReport) -> Json {
    let mut events = Vec::with_capacity(report.spans.len() + 1);
    // Name the (single) track after the command.
    events.push(Json::obj(vec![
        ("ph", Json::Str("M".into())),
        ("pid", Json::U64(1)),
        ("tid", Json::U64(1)),
        ("name", Json::Str("process_name".into())),
        (
            "args",
            Json::obj(vec![("name", Json::Str(format!("phj {}", report.command)))]),
        ),
    ]));
    // Each span's thread track: a span carrying a `worker` meta (and its
    // whole subtree, via parent inheritance) lands on that worker's lane
    // (tid 2 + worker); everything else stays on the main track (tid 1).
    let mut tids = vec![1u64; report.spans.len()];
    let mut workers: Vec<u64> = Vec::new();
    for (i, s) in report.spans.iter().enumerate() {
        let own = s
            .meta
            .iter()
            .find(|(k, _)| k == "worker")
            .and_then(|(_, v)| v.parse::<u64>().ok());
        tids[i] = match own {
            Some(w) => {
                if !workers.contains(&w) {
                    workers.push(w);
                }
                2 + w
            }
            None => s.parent.map_or(1, |p| tids[p]),
        };
    }
    workers.sort_unstable();
    let thread_name = |tid: u64, name: String| {
        Json::obj(vec![
            ("ph", Json::Str("M".into())),
            ("pid", Json::U64(1)),
            ("tid", Json::U64(tid)),
            ("name", Json::Str("thread_name".into())),
            ("args", Json::obj(vec![("name", Json::Str(name))])),
        ])
    };
    if !workers.is_empty() {
        events.push(thread_name(1, "main".into()));
        for &w in &workers {
            events.push(thread_name(2 + w, format!("worker {w}")));
        }
    }
    // Simulated spans are placed by cycle counts (enter/exit snapshots);
    // native spans by wall clock.
    for (i, s) in report.spans.iter().enumerate() {
        let (ts, dur) = if report.simulated {
            (
                Json::U64(s.enter.breakdown.total()),
                Json::U64(s.delta.breakdown.total()),
            )
        } else {
            (
                Json::F64(s.start_ns as f64 / 1e3),
                Json::F64(s.wall_ns as f64 / 1e3),
            )
        };
        let mut args = vec![
            ("busy".to_string(), Json::U64(s.delta.breakdown.busy)),
            ("dcache_stall".to_string(), Json::U64(s.delta.breakdown.dcache_stall)),
            ("dtlb_stall".to_string(), Json::U64(s.delta.breakdown.dtlb_stall)),
            ("other_stall".to_string(), Json::U64(s.delta.breakdown.other_stall)),
            ("prefetches".to_string(), Json::U64(s.delta.stats.prefetches)),
            ("prefetch_coverage".to_string(), Json::F64(coverage(&s.delta))),
        ];
        for (k, v) in &s.meta {
            args.push((k.clone(), Json::Str(v.clone())));
        }
        events.push(Json::obj(vec![
            ("ph", Json::Str("X".into())),
            ("pid", Json::U64(1)),
            ("tid", Json::U64(tids[i])),
            ("name", Json::Str(s.name.clone())),
            ("cat", Json::Str(if report.simulated { "sim" } else { "native" }.into())),
            ("ts", ts),
            ("dur", dur),
            ("args", Json::Obj(args)),
        ]));
    }
    // Region attribution rides along as counter tracks: one "C" event at
    // t=0 (all zeros) and one at run end (the cumulative totals), so the
    // viewer draws a ramp per region for misses and stall cycles.
    if let Some(sec) = &report.regions {
        let end_ts = if report.simulated {
            Json::U64(report.totals.breakdown.total())
        } else {
            Json::F64(report.wall_ns as f64 / 1e3)
        };
        for (name, value_of) in [
            ("region mem_misses", &(|r: &crate::report::RegionReport| r.stats.mem_misses)
                as &dyn Fn(&crate::report::RegionReport) -> u64),
            ("region stall_cycles", &|r: &crate::report::RegionReport| r.stats.stall_cycles),
        ] {
            for (ts, zero) in [(Json::U64(0), true), (end_ts.clone(), false)] {
                let args = sec
                    .regions
                    .iter()
                    .filter(|r| value_of(r) > 0)
                    .map(|r| (r.name.clone(), Json::U64(if zero { 0 } else { value_of(r) })))
                    .collect::<Vec<_>>();
                if args.is_empty() {
                    continue;
                }
                events.push(Json::obj(vec![
                    ("ph", Json::Str("C".into())),
                    ("pid", Json::U64(1)),
                    ("tid", Json::U64(1)),
                    ("name", Json::Str(name.into())),
                    ("ts", ts),
                    ("args", Json::Obj(args)),
                ]));
            }
        }
    }
    // Sampled telemetry becomes one counter track per metric, on its own
    // process (pid 2): sample timestamps are host wall time, which only
    // shares a timebase with the span tracks for native runs — a separate
    // process keeps the cycle-positioned sim timeline uncorrupted.
    if let Some(sec) = &report.timeseries {
        if !sec.series.is_empty() {
            events.push(Json::obj(vec![
                ("ph", Json::Str("M".into())),
                ("pid", Json::U64(2)),
                ("tid", Json::U64(1)),
                ("name", Json::Str("process_name".into())),
                (
                    "args",
                    Json::obj(vec![("name", Json::Str("phj telemetry".into()))]),
                ),
            ]));
            for row in &sec.series {
                for &(t_ns, v) in &row.points {
                    events.push(Json::obj(vec![
                        ("ph", Json::Str("C".into())),
                        ("pid", Json::U64(2)),
                        ("tid", Json::U64(1)),
                        ("name", Json::Str(row.name.clone())),
                        ("ts", Json::F64(t_ns as f64 / 1e3)),
                        ("args", Json::obj(vec![("value", Json::U64(v))])),
                    ]));
                }
            }
        }
    }
    Json::obj(vec![
        ("traceEvents", Json::Arr(events)),
        (
            "displayTimeUnit",
            Json::Str(if report.simulated { "ns" } else { "ms" }.into()),
        ),
    ])
}

/// [`trace_json`] rendered to compact text (the file format).
pub fn trace_text(report: &RunReport) -> String {
    trace_json(report).render()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;
    use crate::span::Recorder;
    use phj_memsim::{Breakdown, Snapshot};

    fn snap(busy: u64) -> Snapshot {
        Snapshot {
            breakdown: Breakdown { busy, ..Default::default() },
            ..Default::default()
        }
    }

    fn sim_report() -> RunReport {
        let mut rec = Recorder::new();
        let run = rec.begin("run", snap(0));
        let build = rec.begin("build", snap(5));
        rec.meta("partition", 3);
        rec.end(build, snap(45));
        let probe = rec.begin("probe", snap(45));
        rec.end(probe, snap(100));
        rec.end(run, snap(100));
        let mut r = RunReport::from_recorder("join", rec, snap(100), 1_000);
        r.simulated = true;
        r
    }

    #[test]
    fn sim_events_are_cycle_positioned() {
        let doc = trace_json(&sim_report());
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        // Metadata event + 3 spans.
        assert_eq!(events.len(), 4);
        let build = events
            .iter()
            .find(|e| e.get("name").and_then(Json::as_str) == Some("build"))
            .unwrap();
        assert_eq!(build.get("ph").unwrap().as_str(), Some("X"));
        assert_eq!(build.get("ts").unwrap().as_u64(), Some(5));
        assert_eq!(build.get("dur").unwrap().as_u64(), Some(40));
        // Span meta rides along in args.
        assert_eq!(
            build.get("args").unwrap().get("partition").unwrap().as_str(),
            Some("3")
        );
        // The document itself is valid JSON.
        assert!(json::parse(&trace_text(&sim_report())).is_ok());
    }

    #[test]
    fn region_counter_events_ride_along_when_profiled() {
        use crate::report::{RegionReport, RegionsSection};
        use phj_memsim::{LatencyHistogram, RegionStats};
        let mut r = sim_report();
        r.regions = Some(RegionsSection {
            regions: vec![
                RegionReport {
                    name: "hash_cells".into(),
                    stats: RegionStats { mem_misses: 7, stall_cycles: 1_050, ..Default::default() },
                    hist: LatencyHistogram::default(),
                },
                RegionReport {
                    name: "other".into(),
                    stats: RegionStats::default(),
                    hist: LatencyHistogram::default(),
                },
            ],
            skew: Vec::new(),
        });
        let doc = trace_json(&r);
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        let counters: Vec<_> = events
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("C"))
            .collect();
        // Two tracks (misses + stall cycles) × two samples (t=0 and end).
        assert_eq!(counters.len(), 4);
        let end = counters
            .iter()
            .find(|e| {
                e.get("name").and_then(Json::as_str) == Some("region mem_misses")
                    && e.get("ts").and_then(Json::as_u64) == Some(100)
            })
            .expect("end-of-run miss counter");
        let args = end.get("args").unwrap();
        assert_eq!(args.get("hash_cells").and_then(Json::as_u64), Some(7));
        // Zero-valued regions are left off the track entirely.
        assert!(args.get("other").is_none());
    }

    #[test]
    fn worker_spans_get_their_own_thread_tracks() {
        let mut r = sim_report();
        // Tag "build" as worker 2's root; "probe" (its sibling) stays on
        // the main track. A child of "build" must inherit the lane.
        r.spans[1].meta.push(("worker".into(), "2".into()));
        let mut child = r.spans[2].clone();
        child.parent = Some(1);
        child.depth = 2;
        r.spans.push(child);
        let doc = trace_json(&r);
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        let tid_of = |name: &str| {
            events
                .iter()
                .filter(|e| e.get("ph").and_then(Json::as_str) == Some("X"))
                .find(|e| e.get("name").and_then(Json::as_str) == Some(name))
                .unwrap()
                .get("tid")
                .and_then(Json::as_u64)
                .unwrap()
        };
        assert_eq!(tid_of("run"), 1);
        assert_eq!(tid_of("build"), 4); // 2 + worker 2
        assert_eq!(tid_of("probe"), 1);
        // The appended child (a second "probe" record) inherits tid 4 —
        // check it directly by position: metadata events precede spans.
        let span_events: Vec<_> = events
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("X"))
            .collect();
        assert_eq!(span_events.last().unwrap().get("tid").and_then(Json::as_u64), Some(4));
        // Thread-name metadata names both lanes.
        let names: Vec<_> = events
            .iter()
            .filter(|e| {
                e.get("name").and_then(Json::as_str) == Some("thread_name")
            })
            .map(|e| {
                (
                    e.get("tid").and_then(Json::as_u64).unwrap(),
                    e.get("args").unwrap().get("name").and_then(Json::as_str).unwrap().to_string(),
                )
            })
            .collect();
        assert!(names.contains(&(1, "main".to_string())));
        assert!(names.contains(&(4, "worker 2".to_string())));
    }

    #[test]
    fn timeseries_counter_tracks_land_on_their_own_process() {
        use crate::report::{TimeseriesRow, TimeseriesSection};
        let mut r = sim_report();
        r.timeseries = Some(TimeseriesSection {
            interval_ms: 10,
            capacity: 64,
            series: vec![TimeseriesRow {
                name: "phj_exec_tasks_total".into(),
                min: 0,
                max: 9,
                last: 9,
                points: vec![(0, 0), (10_000_000, 4), (20_000_000, 9)],
            }],
        });
        let doc = trace_json(&r);
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        let telemetry: Vec<_> = events
            .iter()
            .filter(|e| e.get("pid").and_then(Json::as_u64) == Some(2))
            .collect();
        // One process_name meta + three counter samples.
        assert_eq!(telemetry.len(), 4);
        let samples: Vec<_> = telemetry
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("C"))
            .collect();
        assert_eq!(samples.len(), 3);
        for s in &samples {
            assert_eq!(s.get("name").and_then(Json::as_str), Some("phj_exec_tasks_total"));
        }
        // Wall-time ns map to trace µs.
        assert_eq!(samples[1].get("ts").and_then(Json::as_f64), Some(10_000.0));
        assert_eq!(samples[2].get("args").unwrap().get("value").and_then(Json::as_u64), Some(9));
        // The sim span tracks stay on pid 1, untouched.
        assert!(events
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("X"))
            .all(|e| e.get("pid").and_then(Json::as_u64) == Some(1)));
        assert!(json::parse(&trace_text(&r)).is_ok());
    }

    /// Span, meta, and metric names containing quotes, backslashes, and
    /// non-ASCII must survive export: the rendered trace parses as JSON
    /// and the names come back verbatim through the in-tree parser.
    #[test]
    fn hostile_names_round_trip_through_the_parser() {
        use crate::report::{TimeseriesRow, TimeseriesSection};
        let hostile = [
            r#"span "with quotes""#,
            r"back\slash\",
            "naïve-λ-メトリクス",
            "ctrl\tchars\nembedded",
        ];
        let mut rec = Recorder::new();
        let run = rec.begin(hostile[0], snap(0));
        rec.meta(hostile[1], hostile[2]);
        rec.end(run, snap(10));
        let mut r = RunReport::from_recorder("join", rec, snap(10), 1_000);
        r.simulated = true;
        r.timeseries = Some(TimeseriesSection {
            interval_ms: 10,
            capacity: 8,
            series: hostile
                .iter()
                .map(|&name| TimeseriesRow {
                    name: name.into(),
                    min: 1,
                    max: 1,
                    last: 1,
                    points: vec![(0, 1)],
                })
                .collect(),
        });
        let text = trace_text(&r);
        let doc = json::parse(&text).expect("hostile names must still render valid JSON");
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        let names: Vec<&str> = events
            .iter()
            .filter_map(|e| e.get("name").and_then(Json::as_str))
            .collect();
        for h in hostile {
            assert!(names.contains(&h), "name {h:?} lost in round-trip");
        }
        // The hostile meta key/value pair survives inside span args too.
        let span = events
            .iter()
            .find(|e| e.get("ph").and_then(Json::as_str) == Some("X"))
            .unwrap();
        assert_eq!(
            span.get("args").unwrap().get(hostile[1]).and_then(Json::as_str),
            Some(hostile[2])
        );
    }

    #[test]
    fn native_events_use_wall_clock_microseconds() {
        let mut rec = Recorder::new();
        let id = rec.begin("run", Snapshot::default());
        rec.end(id, Snapshot::default());
        let mut r = RunReport::from_recorder("join", rec, Snapshot::default(), 2_500);
        r.spans[0].start_ns = 1_500;
        r.spans[0].wall_ns = 2_500;
        let doc = trace_json(&r);
        let run = &doc.get("traceEvents").unwrap().as_arr().unwrap()[1];
        assert_eq!(run.get("ts").unwrap().as_f64(), Some(1.5));
        assert_eq!(run.get("dur").unwrap().as_f64(), Some(2.5));
        assert_eq!(run.get("cat").unwrap().as_str(), Some("native"));
    }
}
