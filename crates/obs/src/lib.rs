#![warn(missing_docs)]

//! Observability for the join pipeline: phase spans, structured run
//! reports, and trace-event export.
//!
//! The paper's evaluation lives or dies on *attribution* — knowing which
//! phase spent which cycles where (Figs 1, 11, 15) and how much miss
//! latency prefetching actually hid. This crate packages that attribution
//! as a first-class, machine-readable artifact instead of ad-hoc printouts:
//!
//! * [`span::Recorder`] — nested phase spans (join → partition pass →
//!   per-partition build/probe), each capturing wall-clock time plus the
//!   delta of the memory model's [`Snapshot`](phj_memsim::Snapshot)
//!   (cycle breakdown + cache/prefetch counters) between entry and exit.
//!   Algorithms thread an `Option<&mut Recorder>`, so the hot path pays
//!   nothing when observability is off.
//! * [`report::RunReport`] — a config fingerprint (scheme, G, D, tuple
//!   size, memory parameters), whole-run totals, per-span metrics, and
//!   derived rates: tuples/sec, cycles/tuple, **prefetch coverage**
//!   (fraction of miss latency hidden: `pf_hidden / (pf_hidden +
//!   dcache_stall)`), and **pollution rate** (`pf_evicted_unused /
//!   prefetches`). Serialized with the in-tree [`json`] encoder (the
//!   workspace builds offline; there is no serde).
//! * [`trace`] — the same spans as a `chrome://tracing` / Perfetto
//!   Trace Event file, cycle-positioned for simulated runs.
//!
//! Everything is std-only and depends only on `phj-memsim` (for the
//! snapshot types), so every layer of the workspace — core algorithms,
//! CLI, bench harness — can produce or consume reports.

pub mod heatmap;
pub mod json;
pub mod postmortem;
pub mod report;
pub mod span;
pub mod spark;
pub mod trace;

pub use json::Json;
pub use postmortem::Postmortem;
pub use report::{
    AnalysisSection, DegradationRow, FaultsSection, FlightrecSection, PhasePrediction,
    QueryTraceSection, RegionReport, RegionsSection, ResidualRow, RuleOutcome, RunReport, SkewRow,
    TimeseriesRow, TimeseriesSection, BOTTLENECK_CLASSES, QUERY_STATES, SCHEMA_VERSION,
};
pub use spark::{render_timeseries, sparkline};
pub use span::{span_begin, span_end, span_meta, Recorder, SpanId, SpanRecord};
pub use trace::{trace_json, trace_text};
