//! Span deltas against the real cycle-level engine: what a span records
//! must equal what the engine did between its boundaries.

use phj_memsim::{MemConfig, SimEngine};
use phj_obs::{Recorder, RunReport};

const A: usize = 0x10000; // line-aligned, distinct pages
const B: usize = 0x40000;

#[test]
fn span_deltas_partition_engine_activity() {
    let mut e = SimEngine::new(MemConfig::paper());
    let mut rec = Recorder::new();

    let run = rec.begin("run", e.snapshot());

    // Phase 1: pure computation.
    let busy_phase = rec.begin("busy", e.snapshot());
    e.busy(500);
    rec.end(busy_phase, e.snapshot());

    // Phase 2: a demand miss.
    let miss_phase = rec.begin("miss", e.snapshot());
    e.visit(A, 8);
    rec.end(miss_phase, e.snapshot());

    // Phase 3: a fully covered prefetch.
    let pf_phase = rec.begin("prefetched", e.snapshot());
    e.prefetch(B, 8);
    e.busy(1000);
    e.visit(B, 8);
    rec.end(pf_phase, e.snapshot());

    rec.end(run, e.snapshot());
    let spans = rec.finish();

    let busy = &spans[1].delta;
    assert_eq!(busy.breakdown.busy, 500);
    assert_eq!(busy.breakdown.total(), 500, "phase 1 is computation only");
    assert_eq!(busy.stats.visits, 0);

    let miss = &spans[2].delta;
    assert_eq!(miss.stats.visits, 1);
    assert_eq!(miss.stats.mem_misses, 1);
    assert!(miss.breakdown.dcache_stall > 0, "demand miss stalls");
    assert!(miss.breakdown.dtlb_stall > 0, "first touch of a page walks");
    assert_eq!(miss.stats.pf_hidden_cycles, 0);

    let pf = &spans[3].delta;
    assert_eq!(pf.stats.prefetches, 1);
    assert_eq!(pf.breakdown.dcache_stall, 0, "fill fully overlapped");
    assert!(pf.stats.pf_hidden_cycles > 0, "hidden latency credited to this span");

    // The phases partition the run exactly: root delta = sum of children.
    let root = &spans[0].delta;
    assert_eq!(
        root.breakdown.total(),
        busy.breakdown.total() + miss.breakdown.total() + pf.breakdown.total()
    );
    assert_eq!(root.breakdown.total(), e.now(), "root span covers the whole run");
    assert_eq!(
        root.stats.visits,
        busy.stats.visits + miss.stats.visits + pf.stats.visits
    );
    assert_eq!(root.stats, e.stats(), "engine started at zero");
}

#[test]
fn report_from_engine_validates_and_round_trips() {
    let mut e = SimEngine::new(MemConfig::paper());
    let mut rec = Recorder::new();
    let run = rec.begin("run", e.snapshot());
    let inner = rec.begin("work", e.snapshot());
    e.prefetch(A, 64);
    e.busy(2000);
    for i in 0..8 {
        e.visit(A + i * 8, 8);
    }
    rec.end(inner, e.snapshot());
    rec.end(run, e.snapshot());

    let mut report = RunReport::from_recorder("join", rec, e.snapshot(), 12_345);
    report.simulated = true;
    report.tuples = 8;
    report.config_kv("scheme", "group");
    report.validate().expect("engine-derived report validates");

    let back = RunReport::parse(&report.render()).expect("round-trip");
    assert_eq!(back.totals, report.totals);
    back.validate().expect("round-tripped report validates");
    assert!(report.prefetch_coverage() > 0.0, "prefetch hid some latency");
}
