#![warn(missing_docs)]

//! Synthetic relation generators for the paper's experiments (§7.1).
//!
//! "Build relations and probe relations have the same schemas: a tuple
//! consists of a 4-byte join key and a fixed-length payload. [...] The
//! join keys are randomly generated. A build tuple may match zero or more
//! probe tuples and a probe tuple may match zero or one build tuple. In
//! our experiments, we vary the tuple size, the number of probe tuples
//! matching a build tuple, and the percentage of tuples that have
//! matches."
//!
//! [`JoinSpec`] captures exactly those three knobs plus the build-side
//! size; [`JoinSpec::generate`] produces the pair of relations with a
//! deterministic seed, and reports the exact number of matches the join
//! must produce (used as a correctness oracle by tests and the harness).
//!
//! Generated relations model **intermediate partitions**: each page slot
//! carries the tuple's stashed hash code, exactly as the partition phase
//! would have left it (§7.1) — the paper's join-phase experiments "model
//! the processing of a pair of partitions in the join phase", so the
//! join may run with `use_stored_hash: true` against them.

use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use phj::hash::hash_key;
use phj_storage::{Relation, RelationBuilder, Schema, PAGE_SIZE};

/// Slot overhead per tuple in a slotted page.
const SLOT_BYTES: usize = 8;
/// Page header bytes (nslots, data_start, checksum).
const PAGE_HDR: usize = phj_storage::PAGE_HEADER_BYTES;

/// Bijective mixing of a 32-bit index into a pseudo-random distinct key.
/// Every step is invertible, so distinct indices give distinct keys —
/// disjoint index ranges give disjoint key sets.
#[inline]
pub fn key_of_index(i: u32) -> u32 {
    let mut k = i.wrapping_mul(0x9E37_79B1); // odd multiplier: bijective
    k ^= 0x5851_F42D;
    k = k.rotate_left(13);
    k = k.wrapping_mul(0x85EB_CA6B); // odd multiplier: bijective
    k.wrapping_add(0x1656_67B1)
}

/// Tuples of `tuple_size` bytes that fit in `bytes` of slotted pages.
pub fn tuples_for(bytes: usize, tuple_size: usize) -> usize {
    let per_page = (PAGE_SIZE - PAGE_HDR) / (tuple_size + SLOT_BYTES);
    assert!(per_page > 0, "tuple larger than a page");
    (bytes / PAGE_SIZE) * per_page
}

/// A join workload in the paper's experiment space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JoinSpec {
    /// Number of build tuples.
    pub build_tuples: usize,
    /// Tuple size in bytes (≥ 4; both relations share the schema).
    pub tuple_size: usize,
    /// Probe tuples matching each matched build tuple (Fig 10(b) knob).
    pub matches_per_build: usize,
    /// Percentage (0–100) of tuples that have matches (Fig 10(c) knob).
    pub pct_match: u8,
    /// RNG seed for the probe-order shuffle.
    pub seed: u64,
}

impl JoinSpec {
    /// The paper's pivot point: "tuples are 100B long and every build
    /// tuple matches two probe tuples", build partition sized to fill
    /// `build_bytes` of memory (50 MB in §7.3).
    pub fn pivot(build_bytes: usize) -> Self {
        JoinSpec {
            build_tuples: tuples_for(build_bytes, 100),
            tuple_size: 100,
            matches_per_build: 2,
            pct_match: 100,
            seed: 0xC0FFEE,
        }
    }

    /// Number of probe tuples this spec generates (constant across
    /// `pct_match`, as in Fig 10(c): unmatched probes replace matched
    /// ones one-for-one).
    pub fn probe_tuples(&self) -> usize {
        self.build_tuples * self.matches_per_build
    }

    /// The exact number of output matches the join must produce.
    pub fn expected_matches(&self) -> u64 {
        let matched_builds = self.build_tuples * self.pct_match as usize / 100;
        (matched_builds * self.matches_per_build) as u64
    }

    /// Generate the build and probe relations.
    pub fn generate(&self) -> GeneratedJoin {
        assert!(self.tuple_size >= 4);
        assert!(self.pct_match <= 100);
        let schema = Schema::key_payload(self.tuple_size);
        let mut payload = vec![0u8; self.tuple_size];

        // Build side: distinct keys from index range [0, B).
        let mut build = RelationBuilder::new(schema.clone());
        for i in 0..self.build_tuples {
            let key = key_of_index(i as u32);
            fill_tuple(&mut payload, key, i as u32);
            build.push_hashed(&payload, hash_key(&key.to_le_bytes()));
        }

        // Probe side: the first `matched_builds` build keys appear
        // `matches_per_build` times each; the rest of the probe keys come
        // from the disjoint index range [B, ...) so they match nothing.
        let matched_builds = self.build_tuples * self.pct_match as usize / 100;
        let total_probes = self.probe_tuples();
        let mut keys: Vec<u32> = Vec::with_capacity(total_probes);
        for i in 0..matched_builds {
            for _ in 0..self.matches_per_build {
                keys.push(key_of_index(i as u32));
            }
        }
        let mut next_unmatched = self.build_tuples as u32;
        while keys.len() < total_probes {
            keys.push(key_of_index(next_unmatched));
            next_unmatched += 1;
        }
        let mut rng = SmallRng::seed_from_u64(self.seed);
        keys.shuffle(&mut rng);

        let mut probe = RelationBuilder::new(schema);
        for (i, &key) in keys.iter().enumerate() {
            fill_tuple(&mut payload, key, !(i as u32));
            probe.push_hashed(&payload, hash_key(&key.to_le_bytes()));
        }

        GeneratedJoin {
            build: build.finish(),
            probe: probe.finish(),
            expected_matches: self.expected_matches(),
        }
    }
}

fn fill_tuple(buf: &mut [u8], key: u32, salt: u32) {
    buf[..4].copy_from_slice(&key.to_le_bytes());
    for (j, b) in buf[4..].iter_mut().enumerate() {
        *b = (salt as usize + j) as u8;
    }
}

/// A generated build/probe pair with its correctness oracle.
pub struct GeneratedJoin {
    /// The (smaller) build relation.
    pub build: Relation,
    /// The (larger) probe relation.
    pub probe: Relation,
    /// Exact number of matches the join must produce.
    pub expected_matches: u64,
}

/// Generate a single relation of `n` tuples of `tuple_size` bytes with
/// distinct pseudo-random keys (partition-phase input, Fig 14).
pub fn single_relation(n: usize, tuple_size: usize) -> Relation {
    let schema = Schema::key_payload(tuple_size);
    let mut b = RelationBuilder::new(schema);
    let mut payload = vec![0u8; tuple_size];
    for i in 0..n {
        let key = key_of_index(i as u32);
        fill_tuple(&mut payload, key, i as u32);
        b.push_hashed(&payload, hash_key(&key.to_le_bytes()));
    }
    b.finish()
}

/// A relation sized to `bytes` of slotted pages (e.g. "a 1 GB relation").
pub fn relation_of_bytes(bytes: usize, tuple_size: usize) -> Relation {
    single_relation(tuples_for(bytes, tuple_size), tuple_size)
}

/// A Zipf(θ) sampler over ranks `0..n` (inverse-CDF with a precomputed
/// harmonic table). θ = 0 is uniform; θ ≈ 1 is the classic heavy skew.
/// Used to stress the prefetching schemes' conflict machinery — §4.4
/// sizes the delayed-tuple list "to tolerate skews in the key
/// distribution".
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Build a sampler over `n` ranks with exponent `theta ≥ 0`.
    ///
    /// # Panics
    /// Panics if `n == 0` or `theta` is negative/non-finite.
    pub fn new(n: usize, theta: f64) -> Self {
        assert!(n > 0, "Zipf needs a non-empty domain");
        assert!(theta >= 0.0 && theta.is_finite(), "bad Zipf exponent");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for rank in 1..=n {
            acc += 1.0 / (rank as f64).powf(theta);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        Zipf { cdf }
    }

    /// Sample a rank in `0..n`.
    pub fn sample<R: rand::Rng>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

/// A relation of `n` tuples whose keys follow Zipf(θ) over `key_space`
/// distinct keys (rank 0 is the hottest key).
pub fn zipf_relation(n: usize, tuple_size: usize, key_space: usize, theta: f64, seed: u64) -> Relation {
    let schema = Schema::key_payload(tuple_size);
    let mut b = RelationBuilder::new(schema);
    let mut payload = vec![0u8; tuple_size];
    let zipf = Zipf::new(key_space, theta);
    let mut rng = SmallRng::seed_from_u64(seed);
    for i in 0..n {
        let key = key_of_index(zipf.sample(&mut rng) as u32);
        fill_tuple(&mut payload, key, i as u32);
        b.push_hashed(&payload, hash_key(&key.to_le_bytes()));
    }
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn key_bijection_has_no_collisions_in_range() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..200_000u32 {
            assert!(seen.insert(key_of_index(i)), "collision at {i}");
        }
    }

    #[test]
    fn tuples_for_accounts_slots() {
        // 100 B tuples: 75 per 8 KB page.
        assert_eq!(tuples_for(PAGE_SIZE, 100), 75);
        assert_eq!(tuples_for(10 * PAGE_SIZE, 100), 750);
        // 20 B tuples: 8184/28 = 292 per page.
        assert_eq!(tuples_for(PAGE_SIZE, 20), 292);
    }

    #[test]
    fn pivot_spec_sizes() {
        let spec = JoinSpec::pivot(50 * 1024 * 1024);
        assert_eq!(spec.tuple_size, 100);
        assert_eq!(spec.matches_per_build, 2);
        // 50 MB / 8 KB pages × 75 tuples = 480 000 tuples.
        assert_eq!(spec.build_tuples, 480_000);
        assert_eq!(spec.probe_tuples(), 960_000);
        assert_eq!(spec.expected_matches(), 960_000);
    }

    #[test]
    fn generated_join_matches_oracle() {
        let spec = JoinSpec {
            build_tuples: 2_000,
            tuple_size: 20,
            matches_per_build: 3,
            pct_match: 50,
            seed: 7,
        };
        let g = spec.generate();
        assert_eq!(g.build.num_tuples(), 2_000);
        assert_eq!(g.probe.num_tuples(), 6_000);
        // Count matches by brute force.
        let mut build_keys = HashMap::new();
        for (_, t, _) in g.build.iter() {
            *build_keys
                .entry(u32::from_le_bytes(t[..4].try_into().unwrap()))
                .or_insert(0u64) += 1;
        }
        let mut matches = 0u64;
        for (_, t, _) in g.probe.iter() {
            let k = u32::from_le_bytes(t[..4].try_into().unwrap());
            matches += build_keys.get(&k).copied().unwrap_or(0);
        }
        assert_eq!(matches, g.expected_matches);
        assert_eq!(g.expected_matches, 3_000);
    }

    #[test]
    fn probe_keys_match_zero_or_one_build_tuple() {
        let spec = JoinSpec {
            build_tuples: 500,
            tuple_size: 16,
            matches_per_build: 2,
            pct_match: 80,
            seed: 3,
        };
        let g = spec.generate();
        let keys: std::collections::HashSet<u32> = g
            .build
            .iter()
            .map(|(_, t, _)| u32::from_le_bytes(t[..4].try_into().unwrap()))
            .collect();
        assert_eq!(keys.len(), 500, "build keys distinct");
    }

    #[test]
    fn generation_is_deterministic() {
        let spec = JoinSpec {
            build_tuples: 300,
            tuple_size: 24,
            matches_per_build: 2,
            pct_match: 100,
            seed: 42,
        };
        let a = spec.generate();
        let b = spec.generate();
        assert_eq!(a.probe.to_tuple_vec(), b.probe.to_tuple_vec());
        let c = JoinSpec { seed: 43, ..spec }.generate();
        assert_ne!(a.probe.to_tuple_vec(), c.probe.to_tuple_vec(), "seed changes order");
    }

    #[test]
    fn zipf_skews_toward_low_ranks() {
        let z = Zipf::new(1000, 1.0);
        let mut rng = SmallRng::seed_from_u64(9);
        let mut counts = vec![0usize; 1000];
        for _ in 0..100_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        // Rank 0 is far hotter than rank 500, roughly by the Zipf ratio.
        assert!(counts[0] > 50 * counts[500].max(1));
        // ...while theta = 0 is flat-ish.
        let u = Zipf::new(1000, 0.0);
        let mut flat = vec![0usize; 1000];
        for _ in 0..100_000 {
            flat[u.sample(&mut rng)] += 1;
        }
        let (min, max) = (flat.iter().min().unwrap(), flat.iter().max().unwrap());
        assert!(*max < 3 * min.max(&1), "uniform: {min}..{max}");
    }

    #[test]
    fn zipf_relation_generates_valid_tuples() {
        let r = zipf_relation(5000, 24, 100, 0.99, 7);
        assert_eq!(r.num_tuples(), 5000);
        let mut distinct = std::collections::HashSet::new();
        for (_, t, h) in r.iter() {
            let k = u32::from_le_bytes(t[..4].try_into().unwrap());
            assert_eq!(h, hash_key(&k.to_le_bytes()), "stashed hash");
            distinct.insert(k);
        }
        assert!(distinct.len() <= 100);
        assert!(distinct.len() > 20);
    }

    #[test]
    fn single_relation_shape() {
        let r = single_relation(1000, 100);
        assert_eq!(r.num_tuples(), 1000);
        let r2 = relation_of_bytes(PAGE_SIZE * 4, 100);
        assert_eq!(r2.num_tuples(), 300);
    }
}
