//! Collection strategies.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Generate a `Vec` whose length is drawn from `size` and whose elements
/// are drawn from `element`.
pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
    assert!(size.start < size.end, "empty vec size range");
    VecStrategy { element, size }
}

/// See [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: std::ops::Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn pick(&self, rng: &mut TestRng) -> Self::Value {
        let span = (self.size.end - self.size.start) as u64;
        let len = self.size.start + rng.below(span) as usize;
        (0..len).map(|_| self.element.pick(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_respects_size_and_element_bounds() {
        let mut r = TestRng::from_name("collection-tests");
        let s = vec(5u32..9, 2..6);
        for _ in 0..200 {
            let v = s.pick(&mut r);
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|&x| (5..9).contains(&x)));
        }
    }
}
