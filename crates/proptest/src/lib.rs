#![warn(missing_docs)]

//! Offline stand-in for the subset of `proptest` 1.x this workspace uses.
//!
//! The build environment has no network access to a crates registry, so
//! the workspace vendors a minimal, dependency-free property-testing
//! harness with the same surface syntax: the [`proptest!`] macro with an
//! optional `#![proptest_config(ProptestConfig::with_cases(N))]` header,
//! strategies built from ranges, [`strategy::Just`], tuples,
//! [`collection::vec`], [`prelude::any`], `prop_map`, [`prop_oneof!`],
//! and the `prop_assert!`/`prop_assert_eq!` assertions.
//!
//! Differences from the real crate, deliberately accepted:
//!
//! * **no shrinking** — a failing case reports the generated inputs via
//!   the panic message only;
//! * **deterministic generation** — the RNG is seeded from the test's
//!   name, so a failure reproduces exactly on re-run (there is no
//!   persistence file because there is no nondeterminism to persist);
//! * `prop_assert!` panics (unwinds) instead of returning a `TestCaseError`.
//!
//! For the invariants this workspace checks (join == reference oracle,
//! multiset preservation, timing monotonicity) deterministic coverage of
//! a few dozen random cases is what the tests rely on, and that is
//! preserved.

pub mod collection;
pub mod prelude;
pub mod strategy;
pub mod test_runner;

/// Define property tests.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(48))]
///     #[test]
///     fn prop(x in 0u32..64, v in vec(any::<u8>(), 0..300)) { ... }
/// }
/// ```
///
/// Each test body runs `cases` times with fresh inputs drawn from the
/// strategies; inputs are a deterministic function of the test name.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]: expands one `#[test] fn` per
/// recursion step.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ($cfg:expr; ) => {};
    ($cfg:expr;
     #[test]
     fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
     $($rest:tt)*) => {
        #[test]
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng =
                $crate::test_runner::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::pick(&($strat), &mut rng);)+
                let inputs = format!(
                    concat!("case {} of ", stringify!($name), ":", $(" ", stringify!($arg), "={:?}",)+),
                    __case, $(&$arg),+
                );
                let result = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| $body));
                if let Err(e) = result {
                    eprintln!("proptest failure inputs: {inputs}");
                    ::std::panic::resume_unwind(e);
                }
            }
        }
        $crate::__proptest_items! { $cfg; $($rest)* }
    };
}

/// Choose uniformly among several strategies producing the same value
/// type. (The real crate accepts weights; the workspace only uses the
/// unweighted form.)
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Assert inside a property body (panics with the formatted message).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Assert equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Assert inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}
