//! Test configuration and the deterministic RNG behind strategies.

/// Per-test configuration. Only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    /// 64 cases — smaller than the real crate's 256, sized for the
    /// cycle-accurate simulations these properties drive.
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic RNG (SplitMix64) seeded from the test's name, so every
/// run of a given test sees the same case sequence.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from an arbitrary string (FNV-1a).
    pub fn from_name(name: &str) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..bound` (`bound > 0`).
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Modulo bias is irrelevant at test-strategy scales.
        self.next_u64() % bound
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn name_seeding_is_stable_and_distinct() {
        let mut a = TestRng::from_name("x::y");
        let mut b = TestRng::from_name("x::y");
        let mut c = TestRng::from_name("x::z");
        let sa: Vec<u64> = (0..4).map(|_| a.next_u64()).collect();
        let sb: Vec<u64> = (0..4).map(|_| b.next_u64()).collect();
        let sc: Vec<u64> = (0..4).map(|_| c.next_u64()).collect();
        assert_eq!(sa, sb);
        assert_ne!(sa, sc);
    }

    #[test]
    fn below_respects_bound() {
        let mut r = TestRng::from_name("bound");
        for _ in 0..1000 {
            assert!(r.below(7) < 7);
        }
    }
}
