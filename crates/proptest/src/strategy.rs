//! Value-generation strategies.

use crate::test_runner::TestRng;
use std::marker::PhantomData;

/// A recipe for generating values of `Self::Value`.
///
/// No shrinking: `pick` draws one value. Strategies are immutable, so a
/// single instance can be reused across cases.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draw one value.
    fn pick(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Type-erase for heterogeneous composition ([`crate::prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn pick(&self, rng: &mut TestRng) -> T {
        (**self).pick(rng)
    }
}

/// Always produce a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn pick(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn pick(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.pick(rng))
    }
}

/// See [`crate::prop_oneof!`]: uniform choice among strategies.
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Build from at least one option.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn pick(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].pick(rng)
    }
}

macro_rules! uint_ranges {
    ($($t:ty),*) => {
        $(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn pick(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn pick(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                let span = (*self.end() - *self.start()) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                *self.start() + rng.below(span + 1) as $t
            }
        }
        )*
    };
}
uint_ranges!(u8, u16, u32, u64, usize);

/// Strategy producing any value of `T` (see [`Arbitrary`]).
pub struct Any<T>(PhantomData<T>);

/// Produce arbitrary values of `T` uniformly over its domain.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary {
    /// Draw one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn pick(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! arb_int {
    ($($t:ty),*) => {
        $(impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        })*
    };
}
arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn pick(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.pick(rng),)+)
            }
        }
    };
}
tuple_strategy!(A: 0, B: 1);
tuple_strategy!(A: 0, B: 1, C: 2);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3);

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::from_name("strategy-tests")
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = rng();
        for _ in 0..1000 {
            let v = (3u32..17).pick(&mut r);
            assert!((3..17).contains(&v));
            let w = (0u8..=100).pick(&mut r);
            assert!(w <= 100);
        }
    }

    #[test]
    fn ranges_cover_their_domain() {
        let mut r = rng();
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[(0usize..8).pick(&mut r)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all of 0..8 generated");
    }

    #[test]
    fn map_just_union_tuples_compose() {
        let mut r = rng();
        let s = crate::prop_oneof![
            Just(0u32),
            (10u32..20).prop_map(|x| x * 2),
            ((100u32..110), (1u32..3)).prop_map(|(a, b)| a + b),
        ];
        let mut kinds = [false; 3];
        for _ in 0..200 {
            match s.pick(&mut r) {
                0 => kinds[0] = true,
                v if (20..40).contains(&v) => kinds[1] = true,
                v if (101..113).contains(&v) => kinds[2] = true,
                v => panic!("value {v} outside every branch"),
            }
        }
        assert!(kinds.iter().all(|&k| k), "every oneof branch taken");
    }
}
