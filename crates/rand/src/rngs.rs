//! Concrete generators.

use crate::{RngCore, SeedableRng};

/// A small, fast, deterministic generator (SplitMix64).
///
/// Not the xoshiro generator the real crate uses — only the seeding and
/// sampling *interface* is preserved, which is all this workspace relies
/// on.
#[derive(Debug, Clone)]
pub struct SmallRng {
    state: u64,
}

impl RngCore for SmallRng {
    fn next_u64(&mut self) -> u64 {
        // SplitMix64 (Steele, Lea, Flood 2014).
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl SeedableRng for SmallRng {
    fn seed_from_u64(state: u64) -> Self {
        SmallRng { state }
    }
}
