#![warn(missing_docs)]

//! Offline stand-in for the subset of `rand` 0.8 this workspace uses.
//!
//! The build environment has no network access to a crates registry, so
//! the workspace vendors a minimal, dependency-free implementation of
//! exactly the API surface its code touches: [`rngs::SmallRng`] seeded via
//! [`SeedableRng::seed_from_u64`], the [`Rng::gen`] sampling method (for
//! `f64` and the integer primitives), and [`seq::SliceRandom::shuffle`].
//!
//! The generator is SplitMix64 — deterministic for a given seed, with
//! 64-bit output quality good enough for workload synthesis and tests.
//! It makes no attempt to match the value stream of the real `rand`
//! crate; everything in this workspace that cares about determinism
//! derives it from an explicit seed, not from a published stream.

pub mod rngs;
pub mod seq;

/// The core source of randomness: a stream of `u64`s.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits (upper half of [`Self::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seeding interface: construct a generator from a `u64`.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable uniformly from an RNG (the real crate's
/// `Standard` distribution).
pub trait Standard {
    /// Draw one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {
        $(impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        })*
    };
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Convenience sampling methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value uniformly (`rng.gen::<f64>()` is uniform `[0,1)`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        let mut c = SmallRng::seed_from_u64(8);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn f64_is_roughly_uniform() {
        let mut r = SmallRng::seed_from_u64(2);
        let mut buckets = [0u32; 10];
        for _ in 0..100_000 {
            let x: f64 = r.gen();
            buckets[(x * 10.0) as usize] += 1;
        }
        for &b in &buckets {
            assert!((8_000..12_000).contains(&b), "bucket count {b}");
        }
    }

    #[test]
    fn shuffle_permutes() {
        use crate::seq::SliceRandom;
        let mut v: Vec<u32> = (0..100).collect();
        let orig = v.clone();
        let mut r = SmallRng::seed_from_u64(3);
        v.shuffle(&mut r);
        assert_ne!(v, orig, "a 100-element shuffle should move something");
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, orig, "shuffle preserves the multiset");
    }
}
