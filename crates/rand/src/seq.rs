//! Sequence helpers (`shuffle`).

use crate::RngCore;

/// Extension methods on slices that consume randomness.
pub trait SliceRandom {
    /// Shuffle the slice in place (Fisher–Yates).
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            // Modulo bias is negligible for the slice lengths used here
            // and irrelevant for test-data synthesis.
            let j = (rng.next_u64() % (i as u64 + 1)) as usize;
            self.swap(i, j);
        }
    }
}
