//! Join output sinks: where matched tuple pairs go.
//!
//! The paper's experiments materialize full output tuples ("an output
//! tuple contains all the fields of the matching build and probe tuples",
//! §7.1); [`OutputWriter`] does that into an output [`Relation`], charging
//! the memory model for the output-buffer writes (these sequential writes
//! are a real part of the join's cache behaviour). [`CountSink`] is a
//! non-materializing sink for tests and micro-benchmarks: it keeps an
//! order-insensitive checksum so any two correct schemes can be compared
//! exactly.

use phj_memsim::MemoryModel;
use phj_storage::{tuple::materialize_join_output, Page, Relation, Schema};

use crate::cost;

/// Consumer of join matches.
pub trait JoinSink {
    /// A probe tuple matched a build tuple.
    fn emit<M: MemoryModel>(&mut self, mem: &mut M, build: &[u8], probe: &[u8]);

    /// Number of matches emitted so far.
    fn matches(&self) -> u64;
}

/// Materializes output tuples into a relation.
pub struct OutputWriter {
    build_schema: Schema,
    probe_schema: Schema,
    out: Relation,
    page: Page,
    buf: Vec<u8>,
    matches: u64,
    prefetch_ahead: bool,
}

impl OutputWriter {
    /// A writer joining tuples of the given schemas.
    pub fn new(build_schema: Schema, probe_schema: Schema) -> Self {
        let out_schema = Schema::join_output(&build_schema, &probe_schema);
        OutputWriter {
            build_schema,
            probe_schema,
            out: Relation::new(out_schema),
            page: Page::new(),
            buf: Vec::new(),
            matches: 0,
            prefetch_ahead: false,
        }
    }

    /// Enable output-buffer prefetching: after each emit, prefetch the
    /// location the *next* output tuple will occupy. Output is strictly
    /// sequential, so this is one of the "multiple independent prefetches"
    /// a staged scheme issues per stage (§4.4); the baseline and simple
    /// schemes leave it off.
    pub fn with_output_prefetch(mut self) -> Self {
        self.prefetch_ahead = true;
        self
    }

    /// Finish, returning the output relation.
    pub fn finish(mut self) -> Relation {
        if self.page.nslots() > 0 {
            self.out.push_page(self.page.clone());
        }
        self.out
    }
}

impl JoinSink for OutputWriter {
    fn emit<M: MemoryModel>(&mut self, mem: &mut M, build: &[u8], probe: &[u8]) {
        materialize_join_output(
            &self.build_schema,
            &self.probe_schema,
            build,
            probe,
            &mut self.buf,
        );
        if !self.page.fits(self.buf.len()) {
            // "Write out" the full buffer (uncharged, DMA-like) and keep
            // reusing the same buffer page, as the engine's buffer
            // manager would — its lines stay cache-resident.
            self.out.push_page(self.page.clone());
            self.page.reset();
        }
        let (data_addr, slot_addr) = self.page.next_insert_addrs(self.buf.len());
        mem.write(data_addr, self.buf.len());
        mem.write(slot_addr, 8);
        mem.busy(cost::copy_cost(self.buf.len()));
        self.page
            .insert(&self.buf, 0)
            .expect("output tuple larger than a page");
        self.matches += 1;
        if self.prefetch_ahead {
            // Two tuples of lead time: back-to-back emits (group stage 3)
            // are closer together than the memory latency, so one emit of
            // lead would leave the fill chronically half-finished.
            let span = 2 * self.buf.len();
            if self.page.fits(span) {
                let (next_data, next_slot) = self.page.next_insert_addrs(span);
                mem.prefetch(next_data, span);
                mem.prefetch(next_slot, 16);
            }
        }
    }

    fn matches(&self) -> u64 {
        self.matches
    }
}

/// Hands matches to a parent operator in bounded batches — the hook for
/// pipelined query processing. §5.4: "the join phase can pause at group
/// boundaries and send outputs to the parent operator to support
/// pipelined query processing" — a staged probe emits at most `G`
/// matches' worth of output per stage, so a batch of a few `G` keeps the
/// parent fed without unbounded buffering.
pub struct BatchingSink<F: FnMut(&[(Vec<u8>, Vec<u8>)])> {
    batch: Vec<(Vec<u8>, Vec<u8>)>,
    capacity: usize,
    consumer: F,
    matches: u64,
}

impl<F: FnMut(&[(Vec<u8>, Vec<u8>)])> BatchingSink<F> {
    /// A sink delivering batches of up to `capacity` (build, probe) pairs
    /// to `consumer`.
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize, consumer: F) -> Self {
        assert!(capacity > 0, "batch capacity must be non-zero");
        BatchingSink { batch: Vec::with_capacity(capacity), capacity, consumer, matches: 0 }
    }

    /// Deliver any buffered matches and return the total count.
    pub fn finish(mut self) -> u64 {
        self.flush();
        self.matches
    }

    fn flush(&mut self) {
        if !self.batch.is_empty() {
            (self.consumer)(&self.batch);
            self.batch.clear();
        }
    }
}

impl<F: FnMut(&[(Vec<u8>, Vec<u8>)])> JoinSink for BatchingSink<F> {
    fn emit<M: MemoryModel>(&mut self, _mem: &mut M, build: &[u8], probe: &[u8]) {
        self.batch.push((build.to_vec(), probe.to_vec()));
        self.matches += 1;
        if self.batch.len() == self.capacity {
            self.flush();
        }
    }

    fn matches(&self) -> u64 {
        self.matches
    }
}

/// Order-insensitive counting/checksumming sink.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CountSink {
    matches: u64,
    /// XOR of per-pair FNV digests: equal multisets of (build, probe)
    /// pairs produce equal checksums regardless of emission order.
    checksum: u64,
}

impl CountSink {
    /// A fresh sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// The order-insensitive checksum.
    pub fn checksum(&self) -> u64 {
        self.checksum
    }

    /// Fold another sink's matches into this one. Because the checksum is
    /// an XOR of per-pair digests, merging per-worker sinks yields exactly
    /// the checksum a single sequential sink would have produced.
    pub fn merge(&mut self, other: CountSink) {
        self.matches += other.matches;
        self.checksum ^= other.checksum;
    }

    fn digest(bytes: &[u8], mut h: u64) -> u64 {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01B3);
        }
        h
    }
}

impl JoinSink for CountSink {
    fn emit<M: MemoryModel>(&mut self, _mem: &mut M, build: &[u8], probe: &[u8]) {
        self.matches += 1;
        let d = Self::digest(probe, Self::digest(build, 0xCBF2_9CE4_8422_2325));
        self.checksum ^= d.max(1); // never XOR 0: keep pair visible
    }

    fn matches(&self) -> u64 {
        self.matches
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phj_memsim::NativeModel;

    #[test]
    fn count_sink_is_order_insensitive() {
        let mut m = NativeModel;
        let mut a = CountSink::new();
        a.emit(&mut m, b"b1", b"p1");
        a.emit(&mut m, b"b2", b"p2");
        let mut b = CountSink::new();
        b.emit(&mut m, b"b2", b"p2");
        b.emit(&mut m, b"b1", b"p1");
        assert_eq!(a, b);
        assert_eq!(a.matches(), 2);
    }

    #[test]
    fn count_sink_detects_difference() {
        let mut m = NativeModel;
        let mut a = CountSink::new();
        a.emit(&mut m, b"b1", b"p1");
        let mut b = CountSink::new();
        b.emit(&mut m, b"b1", b"p2");
        assert_ne!(a.checksum(), b.checksum());
    }

    #[test]
    fn count_sink_merge_equals_sequential() {
        let mut m = NativeModel;
        let mut seq = CountSink::new();
        let mut w0 = CountSink::new();
        let mut w1 = CountSink::new();
        for i in 0u32..20 {
            let t = i.to_le_bytes();
            seq.emit(&mut m, &t, &t);
            if i % 2 == 0 { &mut w0 } else { &mut w1 }.emit(&mut m, &t, &t);
        }
        let mut merged = CountSink::new();
        merged.merge(w1);
        merged.merge(w0);
        assert_eq!(merged, seq);
    }

    #[test]
    fn count_sink_multiset_semantics() {
        // Duplicate pairs XOR to different checksums for odd/even counts.
        let mut m = NativeModel;
        let mut once = CountSink::new();
        once.emit(&mut m, b"x", b"y");
        let mut thrice = CountSink::new();
        for _ in 0..3 {
            thrice.emit(&mut m, b"x", b"y");
        }
        assert_eq!(once.checksum(), thrice.checksum());
        assert_ne!(once.matches(), thrice.matches());
    }

    #[test]
    fn batching_sink_delivers_everything_in_order() {
        let mut m = NativeModel;
        let mut seen: Vec<u32> = Vec::new();
        let mut batches = 0usize;
        {
            let mut sink = BatchingSink::new(7, |batch| {
                batches += 1;
                assert!(batch.len() <= 7);
                for (b, p) in batch {
                    assert_eq!(b, p);
                    seen.push(u32::from_le_bytes(b[..4].try_into().unwrap()));
                }
            });
            for i in 0u32..23 {
                let t = i.to_le_bytes().to_vec();
                sink.emit(&mut m, &t, &t);
            }
            assert_eq!(sink.matches(), 23);
            assert_eq!(sink.finish(), 23);
        }
        assert_eq!(batches, 4, "3 full + 1 tail batch");
        assert_eq!(seen, (0..23).collect::<Vec<_>>());
    }

    #[test]
    fn batching_sink_empty() {
        let mut called = false;
        let sink = BatchingSink::new(4, |_| called = true);
        assert_eq!(sink.finish(), 0);
        assert!(!called, "no empty batches delivered");
    }

    #[test]
    fn output_prefetch_writer_equals_plain() {
        let bs = Schema::key_payload(8);
        let ps = Schema::key_payload(8);
        let mut m = phj_memsim::SimEngine::paper();
        let mut plain = OutputWriter::new(bs.clone(), ps.clone());
        let mut pf = OutputWriter::new(bs.clone(), ps.clone()).with_output_prefetch();
        for i in 0u32..500 {
            let t = i.to_le_bytes().repeat(2);
            plain.emit(&mut m, &t, &t);
            pf.emit(&mut m, &t, &t);
        }
        assert_eq!(plain.finish().to_tuple_vec(), pf.finish().to_tuple_vec());
    }

    #[test]
    fn output_writer_materializes() {
        let bs = Schema::key_payload(8);
        let ps = Schema::key_payload(12);
        let mut w = OutputWriter::new(bs.clone(), ps.clone());
        let mut m = NativeModel;
        let bt = [1u8; 8];
        let pt = [2u8; 12];
        for _ in 0..1000 {
            w.emit(&mut m, &bt, &pt);
        }
        assert_eq!(w.matches(), 1000);
        let rel = w.finish();
        assert_eq!(rel.num_tuples(), 1000);
        assert!(rel.num_pages() > 1);
        for (_, t, _) in rel.iter() {
            assert_eq!(t.len(), 20);
            assert_eq!(&t[..8], &bt);
            assert_eq!(&t[8..], &pt);
        }
    }
}
