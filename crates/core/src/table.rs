//! The in-memory hash table (Figure 2 of the paper).
//!
//! "It consists of an array of hash buckets, each composed of a header and
//! (possibly) an array of hash cells pointed to by the header. A hash cell
//! represents a build tuple hashed to the bucket. It contains the tuple
//! pointer and a fixed-length (e.g., 4-byte) hash code computed from the
//! join key, which serves as a filter for the actual key comparisons. A
//! single hash cell is put into the bucket header. When more tuples are
//! hashed to the bucket, a hash cell array is allocated, the size of which
//! can be dynamically increased." (§3)
//!
//! Faithful to the paper, a [`HashCell`] stores a **direct pointer** to
//! the build tuple (address + length), not a page/slot reference: the
//! whole point of the staged probe is that once the cell is read, the
//! build tuple's address is known and can be prefetched without any
//! further dependent reference. The pointer is valid while the build
//! partition it was created from is alive and unmoved (its pages are
//! individually boxed); [`HashTable`] is only ever used inside one
//! build+probe over a borrowed `&Relation`, which guarantees that.
//!
//! The structure deliberately avoids chained bucket hashing: cell *arrays*
//! rather than linked lists sidestep the pointer-chasing problem (§3,
//! footnote 3). Overflow arrays live in a bump [`CellArena`] whose backing
//! storage is pre-reserved so cell addresses stay stable for the duration
//! of a build+probe (the memory model keys its cache simulation off those
//! addresses).
//!
//! The `busy` word in each header supports the read-write-conflict
//! protocols of the prefetching build loops (§4.4 busy flag + delayed
//! tuples; §5.3 waiting queues). The baseline build never leaves it set.

/// Sentinel for "no overflow array".
pub const NO_ARRAY: u32 = u32::MAX;

/// Sentinel for "bucket not busy".
pub const NOT_BUSY: u32 = 0;

/// One hash cell: the 4-byte hash-code filter plus the tuple pointer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(C)]
pub struct HashCell {
    /// Hash code of the build tuple's join key.
    pub hash: u32,
    /// Byte length of the build tuple.
    pub len: u32,
    /// Virtual address of the build tuple's bytes.
    pub addr: u64,
}

impl HashCell {
    /// Construct a cell pointing at a tuple of `len` bytes at `addr`.
    #[inline]
    pub fn new(hash: u32, addr: usize, len: u32) -> Self {
        HashCell { hash, len, addr: addr as u64 }
    }

    /// Tuple address (prefetch/visit hook).
    #[inline]
    pub fn tuple_addr(&self) -> usize {
        self.addr as usize
    }

    /// Tuple length in bytes.
    #[inline]
    pub fn tuple_len(&self) -> usize {
        self.len as usize
    }

    /// The tuple bytes behind the stored pointer.
    ///
    /// # Safety
    /// The relation whose tuple this cell was built from must still be
    /// alive and unmoved. All uses inside this crate are within a single
    /// `join_pair` over a borrowed build relation, which guarantees it.
    #[inline]
    pub(crate) unsafe fn tuple_bytes<'a>(&self) -> &'a [u8] {
        std::slice::from_raw_parts(self.addr as *const u8, self.len as usize)
    }
}

const EMPTY_CELL: HashCell = HashCell { hash: 0, len: 0, addr: 0 };

/// One bucket header: an inline first cell plus overflow-array metadata.
/// 32 bytes → two headers per cache line, as in a careful C layout.
#[derive(Debug, Clone, Copy)]
#[repr(C)]
pub struct BucketHeader {
    /// The first cell of the bucket (valid when `count > 0`).
    pub inline_cell: HashCell,
    /// Number of cells in the bucket (inline + overflow).
    pub count: u32,
    /// Conflict word: [`NOT_BUSY`], or `1 + owner` where `owner` is the
    /// group slot / pipeline state index of the in-flight inserter.
    pub busy: u32,
    /// Arena offset of the overflow array (cells `1..count`), or
    /// [`NO_ARRAY`].
    pub array: u32,
    /// Capacity of the overflow array, in cells.
    pub cap: u32,
}

const EMPTY_HEADER: BucketHeader = BucketHeader {
    inline_cell: EMPTY_CELL,
    count: 0,
    busy: NOT_BUSY,
    array: NO_ARRAY,
    cap: 0,
};

/// Bump arena for overflow cell arrays.
///
/// Growth allocates a doubled block and copies; the abandoned block is
/// wasted until the table is dropped (bounded: total waste < 3× live
/// cells). The backing `Vec` is reserved up front so it never reallocates
/// (stable addresses for the memory model); exceeding the reservation is a
/// planner bug and panics in debug builds.
pub struct CellArena {
    cells: Vec<HashCell>,
}

impl CellArena {
    fn with_capacity(cells: usize) -> Self {
        CellArena { cells: Vec::with_capacity(cells) }
    }

    /// Allocate a block of `n` cells, returning its offset.
    #[inline]
    fn alloc(&mut self, n: usize) -> u32 {
        let off = self.cells.len();
        debug_assert!(
            off + n <= self.cells.capacity(),
            "cell arena reservation exceeded (planner bug)"
        );
        self.cells.resize(off + n, EMPTY_CELL);
        off as u32
    }

    /// Address of cell `idx` (memory-model hook).
    #[inline]
    pub fn cell_addr(&self, idx: u32) -> usize {
        self.cells.as_ptr() as usize + (idx as usize) * std::mem::size_of::<HashCell>()
    }

    /// Borrow `n` cells starting at `off`.
    #[inline]
    pub fn slice(&self, off: u32, n: usize) -> &[HashCell] {
        &self.cells[off as usize..off as usize + n]
    }

    /// Mutably borrow one cell.
    #[inline]
    fn cell_mut(&mut self, idx: u32) -> &mut HashCell {
        &mut self.cells[idx as usize]
    }

    /// Live + abandoned cells allocated so far.
    pub fn allocated(&self) -> usize {
        self.cells.len()
    }
}

/// Outcome of examining a bucket header for an insert (stage 1 of the
/// build loops): either the insert completed inline, or the caller must
/// write the given overflow cell (whose address it can prefetch), or the
/// bucket is busy with a conflicting in-flight insert.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InsertStep {
    /// The cell went into the header inline; insert complete.
    DoneInline,
    /// Write the cell at this arena index, then call
    /// [`HashTable::finish_overflow_insert`].
    WriteCell(u32),
    /// The bucket's busy word names another in-flight inserter (the
    /// `owner` passed to its `begin_insert`).
    Busy(u32),
}

/// The Figure-2 hash table.
pub struct HashTable {
    buckets: Vec<BucketHeader>,
    arena: CellArena,
    items: usize,
    /// Initial overflow-array capacity (doubles on growth).
    initial_cap: u32,
}

impl HashTable {
    /// A table with `num_buckets` buckets, reserving arena space for about
    /// `expected_tuples` build tuples.
    pub fn new(num_buckets: usize, expected_tuples: usize) -> Self {
        assert!(num_buckets > 0);
        // Worst-case arena usage: every overflow array wastes < 2× its
        // final size in abandoned doublings, plus the live cells.
        let reserve = expected_tuples.saturating_mul(4).max(64);
        HashTable {
            buckets: vec![EMPTY_HEADER; num_buckets],
            arena: CellArena::with_capacity(reserve),
            items: 0,
            initial_cap: 2,
        }
    }

    /// Number of buckets.
    #[inline]
    pub fn num_buckets(&self) -> usize {
        self.buckets.len()
    }

    /// Number of inserted cells.
    #[inline]
    pub fn len(&self) -> usize {
        self.items
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.items == 0
    }

    /// Bucket number for a hash code.
    #[inline]
    pub fn bucket_of(&self, hash: u32) -> usize {
        crate::hash::bucket_of(hash, self.buckets.len())
    }

    /// Address of bucket `b`'s header (prefetch hook).
    #[inline]
    pub fn header_addr(&self, b: usize) -> usize {
        self.buckets.as_ptr() as usize + b * std::mem::size_of::<BucketHeader>()
    }

    /// Size of a bucket header in bytes.
    #[inline]
    pub fn header_len() -> usize {
        std::mem::size_of::<BucketHeader>()
    }

    /// Borrow bucket `b`'s header.
    #[inline]
    pub fn header(&self, b: usize) -> &BucketHeader {
        &self.buckets[b]
    }

    /// The overflow-array address and byte length of bucket `b`
    /// (prefetch hook). Returns `None` when the bucket has no overflow
    /// cells yet.
    #[inline]
    pub fn array_span(&self, b: usize) -> Option<(usize, usize)> {
        let h = &self.buckets[b];
        if h.array == NO_ARRAY || h.count <= 1 {
            return None;
        }
        let n = (h.count - 1) as usize;
        Some((self.arena.cell_addr(h.array), n * std::mem::size_of::<HashCell>()))
    }

    /// The overflow cells of bucket `b` (cells `1..count`).
    #[inline]
    pub fn overflow_cells(&self, b: usize) -> &[HashCell] {
        let h = &self.buckets[b];
        if h.array == NO_ARRAY || h.count <= 1 {
            &[]
        } else {
            self.arena.slice(h.array, (h.count - 1) as usize)
        }
    }

    /// The arena (for staged algorithms prefetching cell addresses).
    #[inline]
    pub fn arena(&self) -> &CellArena {
        &self.arena
    }

    /// Address and byte length of the whole bucket-header array (region
    /// tagging for miss attribution).
    #[inline]
    pub fn headers_span(&self) -> (usize, usize) {
        (
            self.buckets.as_ptr() as usize,
            self.buckets.len() * std::mem::size_of::<BucketHeader>(),
        )
    }

    /// Address and byte length of the arena's *reserved* cell storage
    /// (region tagging). Covers the full reservation rather than the cells
    /// allocated so far, so overflow arrays allocated later still fall in
    /// the tagged range (the backing `Vec` never reallocates).
    #[inline]
    pub fn arena_span(&self) -> (usize, usize) {
        (
            self.arena.cells.as_ptr() as usize,
            self.arena.cells.capacity() * std::mem::size_of::<HashCell>(),
        )
    }

    /// Stage-1 of an insert: examine the header and either complete an
    /// inline insert, reserve the overflow slot to write, or report the
    /// bucket busy.
    ///
    /// On `WriteCell(idx)`, the header's busy word is set to `1 + owner`
    /// and `count` is *not* yet incremented; the caller writes the cell
    /// (possibly a stage later, after prefetching `cell_addr(idx)`) and
    /// then calls [`Self::finish_overflow_insert`]. Growth of the overflow
    /// array happens here (it must: the slot address is the prefetch
    /// target). Growth copy bytes are reported via `grown` so the caller
    /// can charge the memcpy.
    pub fn begin_insert(
        &mut self,
        b: usize,
        cell: HashCell,
        owner: u32,
        grown: &mut usize,
    ) -> InsertStep {
        let hdr = self.buckets[b];
        if hdr.busy != NOT_BUSY {
            return InsertStep::Busy(hdr.busy - 1);
        }
        if hdr.count == 0 {
            let h = &mut self.buckets[b];
            h.inline_cell = cell;
            h.count = 1;
            self.items += 1;
            return InsertStep::DoneInline;
        }
        let over = (hdr.count - 1) as usize; // overflow cells present
        let (mut array, mut cap) = (hdr.array, hdr.cap);
        if array == NO_ARRAY {
            cap = self.initial_cap;
            array = self.arena.alloc(cap as usize);
        } else if over as u32 == cap {
            // Double, copying the old cells.
            let new_cap = cap * 2;
            let new = self.arena.alloc(new_cap as usize);
            for i in 0..cap {
                let c = *self.arena.slice(array + i, 1).first().unwrap();
                *self.arena.cell_mut(new + i) = c;
            }
            *grown += (cap as usize) * std::mem::size_of::<HashCell>();
            array = new;
            cap = new_cap;
        }
        let h = &mut self.buckets[b];
        h.busy = owner + 1;
        h.array = array;
        h.cap = cap;
        InsertStep::WriteCell(array + over as u32)
    }

    /// Stage-2 of an overflow insert: write the reserved cell, bump the
    /// count, and release the busy word.
    pub fn finish_overflow_insert(&mut self, b: usize, idx: u32, cell: HashCell) {
        *self.arena.cell_mut(idx) = cell;
        let h = &mut self.buckets[b];
        debug_assert_ne!(h.busy, NOT_BUSY, "finish without begin");
        debug_assert_eq!(h.array + (h.count - 1), idx, "out-of-order overflow write");
        h.count += 1;
        h.busy = NOT_BUSY;
        self.items += 1;
    }

    /// Straight-line insert (baseline build; also the conflict-resolution
    /// path of the prefetching builds). Returns bytes copied by any array
    /// growth so the caller can charge the memcpy.
    pub fn insert(&mut self, cell: HashCell) -> usize {
        let b = self.bucket_of(cell.hash);
        let mut grown = 0usize;
        match self.begin_insert(b, cell, 0, &mut grown) {
            InsertStep::DoneInline => {}
            InsertStep::WriteCell(idx) => self.finish_overflow_insert(b, idx, cell),
            InsertStep::Busy(_) => unreachable!("straight-line insert saw busy bucket"),
        }
        grown
    }

    /// Iterate the cells whose hash codes match, in bucket order
    /// (reference lookup used by tests and the cache-partitioned join;
    /// the staged probes do this work in stages).
    pub fn lookup(&self, hash: u32) -> impl Iterator<Item = &HashCell> + '_ {
        let b = self.bucket_of(hash);
        let h = &self.buckets[b];
        let inline =
            (h.count > 0 && h.inline_cell.hash == hash).then_some(&h.inline_cell);
        inline
            .into_iter()
            .chain(self.overflow_cells(b).iter().filter(move |c| c.hash == hash))
    }

    /// Diagnostic: distribution of bucket sizes `(size → bucket count)`.
    pub fn bucket_histogram(&self) -> std::collections::BTreeMap<u32, usize> {
        let mut m = std::collections::BTreeMap::new();
        for h in &self.buckets {
            *m.entry(h.count).or_insert(0) += 1;
        }
        m
    }

    /// Assert every busy word is released (end-of-build invariant for the
    /// conflict protocols).
    pub fn assert_quiescent(&self) {
        for (b, h) in self.buckets.iter().enumerate() {
            assert_eq!(h.busy, NOT_BUSY, "bucket {b} left busy");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell(hash: u32, i: usize) -> HashCell {
        HashCell::new(hash, 0x1000 + i * 100, 10)
    }

    #[test]
    fn header_is_32_bytes() {
        assert_eq!(std::mem::size_of::<BucketHeader>(), 32);
        assert_eq!(std::mem::size_of::<HashCell>(), 16);
    }

    #[test]
    fn inline_then_overflow() {
        let mut t = HashTable::new(1, 16);
        t.insert(cell(7, 0));
        assert_eq!(t.len(), 1);
        assert_eq!(t.header(0).count, 1);
        assert_eq!(t.header(0).array, NO_ARRAY);
        t.insert(cell(7, 1));
        t.insert(cell(9, 2));
        assert_eq!(t.len(), 3);
        assert_eq!(t.header(0).count, 3);
        assert_ne!(t.header(0).array, NO_ARRAY);
        let found: Vec<_> = t.lookup(7).map(|c| c.tuple_addr()).collect();
        assert_eq!(found, vec![0x1000, 0x1000 + 100]);
        let found9: Vec<_> = t.lookup(9).map(|c| c.tuple_addr()).collect();
        assert_eq!(found9, vec![0x1000 + 200]);
        assert!(t.lookup(8).next().is_none());
    }

    #[test]
    fn overflow_array_growth_preserves_cells() {
        let mut t = HashTable::new(1, 64);
        for i in 0..20usize {
            t.insert(cell(i as u32, i));
        }
        assert_eq!(t.len(), 20);
        for i in 0..20usize {
            let found: Vec<_> = t.lookup(i as u32).map(|c| c.tuple_addr()).collect();
            assert_eq!(found, vec![0x1000 + i * 100], "hash {i}");
        }
        // Growth doublings: 2→4→8→16→32 for 19 overflow cells.
        assert!(t.header(0).cap >= 19);
    }

    #[test]
    fn growth_reports_copied_bytes() {
        let mut t = HashTable::new(1, 64);
        t.insert(cell(1, 0)); // inline
        assert_eq!(t.insert(cell(2, 1)), 0); // allocates cap-2 array
        assert_eq!(t.insert(cell(3, 2)), 0); // fits
        let copied = t.insert(cell(4, 3)); // grows 2→4, copies 2 cells
        assert_eq!(copied, 2 * std::mem::size_of::<HashCell>());
    }

    #[test]
    fn staged_insert_protocol() {
        let mut t = HashTable::new(1, 16);
        let mut grown = 0;
        // First insert: inline, completes in stage 1.
        assert_eq!(
            t.begin_insert(0, cell(5, 0), 3, &mut grown),
            InsertStep::DoneInline
        );
        assert_eq!(t.header(0).busy, NOT_BUSY);
        // Second insert: must write an overflow cell; bucket becomes busy.
        let step = t.begin_insert(0, cell(6, 1), 3, &mut grown);
        let idx = match step {
            InsertStep::WriteCell(i) => i,
            other => panic!("expected WriteCell, got {other:?}"),
        };
        assert_eq!(t.header(0).busy, 4);
        // A conflicting insert sees Busy(owner).
        assert_eq!(t.begin_insert(0, cell(7, 2), 9, &mut grown), InsertStep::Busy(3));
        // Finish releases the bucket.
        t.finish_overflow_insert(0, idx, cell(6, 1));
        assert_eq!(t.header(0).busy, NOT_BUSY);
        assert_eq!(t.header(0).count, 2);
        assert_eq!(t.lookup(6).count(), 1);
        t.assert_quiescent();
    }

    #[test]
    fn lookup_filters_by_hash_code() {
        let mut t = HashTable::new(4, 16);
        // Hashes 1 and 5 share bucket 1 (mod 4) but differ in code.
        t.insert(cell(1, 0));
        t.insert(cell(5, 1));
        assert_eq!(t.lookup(1).map(|c| c.tuple_addr()).collect::<Vec<_>>(), vec![0x1000]);
        assert_eq!(
            t.lookup(5).map(|c| c.tuple_addr()).collect::<Vec<_>>(),
            vec![0x1000 + 100]
        );
    }

    #[test]
    fn cell_bytes_roundtrip() {
        // The pointer stored in a cell really reads the original tuple.
        let data = [42u8; 24];
        let c = HashCell::new(9, data.as_ptr() as usize, data.len() as u32);
        let bytes = unsafe { c.tuple_bytes() };
        assert_eq!(bytes, &data[..]);
    }

    #[test]
    fn addresses_are_real() {
        let mut t = HashTable::new(8, 16);
        t.insert(cell(0, 0));
        let b = t.bucket_of(0);
        assert_eq!(t.header_addr(b), t.header(b) as *const _ as usize);
        t.insert(cell(0, 1));
        t.insert(cell(0, 2));
        let (addr, len) = t.array_span(b).unwrap();
        assert_eq!(len, 2 * 16);
        assert_eq!(addr, t.overflow_cells(b).as_ptr() as usize);
    }

    #[test]
    fn histogram_counts() {
        let mut t = HashTable::new(4, 16);
        t.insert(cell(0, 0));
        t.insert(cell(4, 1)); // bucket 0 again
        t.insert(cell(1, 2));
        let h = t.bucket_histogram();
        assert_eq!(h[&0], 2);
        assert_eq!(h[&1], 1);
        assert_eq!(h[&2], 1);
    }
}
