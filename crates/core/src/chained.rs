//! Chained-bucket hash table — the design the paper *rejects*.
//!
//! Footnote 3 of §3: "The structure in Figure 2 improves upon chained
//! bucket hashing, which uses a linked list of hash cells in a bucket. It
//! avoids the pointer chasing problem of linked lists." This module
//! implements the rejected design so the ablation harness can demonstrate
//! the claim: with a linked list, the address of node *i+1* lives inside
//! node *i*, so inter-node prefetching is impossible — a staged probe can
//! hide the bucket-head miss and the *first* node miss, but every further
//! node of a chain is a fully exposed dependent miss, no matter how large
//! `G` is.

use phj_memsim::MemoryModel;
use phj_storage::Relation;

use crate::cost;
use crate::join::{charge_code0, keys_equal, tuple_hash, JoinParams, Scan};
use crate::sink::JoinSink;
use crate::table::HashCell;

const NIL: u32 = u32::MAX;

/// One chain node: a hash cell plus the next pointer. 24 bytes.
#[derive(Debug, Clone, Copy)]
#[repr(C)]
pub struct ChainNode {
    /// The cell (hash code + tuple pointer).
    pub cell: HashCell,
    next: u32,
    pad: u32,
}

/// Chained-bucket hash table: an array of list heads into a node arena.
///
/// Nodes are arena-allocated in insertion order, which is the *best case*
/// for a linked structure (a malloc-per-node layout would be worse); the
/// pointer-chasing penalty measured by the ablation is therefore a lower
/// bound.
pub struct ChainedTable {
    heads: Vec<u32>,
    arena: Vec<ChainNode>,
    items: usize,
}

impl ChainedTable {
    /// A table with `num_buckets` buckets, reserving arena space.
    pub fn new(num_buckets: usize, expected_tuples: usize) -> Self {
        let arena = Vec::with_capacity(expected_tuples.max(16));
        ChainedTable { heads: vec![NIL; num_buckets], arena, items: 0 }
    }

    /// Number of inserted cells.
    pub fn len(&self) -> usize {
        self.items
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.items == 0
    }

    /// Bucket number for a hash code.
    #[inline]
    pub fn bucket_of(&self, hash: u32) -> usize {
        crate::hash::bucket_of(hash, self.heads.len())
    }

    /// Address of the head pointer of bucket `b`.
    #[inline]
    pub fn head_addr(&self, b: usize) -> usize {
        self.heads.as_ptr() as usize + b * 4
    }

    /// Address of node `idx`.
    #[inline]
    pub fn node_addr(&self, idx: u32) -> usize {
        self.arena.as_ptr() as usize + idx as usize * std::mem::size_of::<ChainNode>()
    }

    /// Prepend a cell to its bucket's chain (classic chained hashing).
    pub fn insert(&mut self, cell: HashCell) -> u32 {
        let b = self.bucket_of(cell.hash);
        debug_assert!(
            self.arena.len() < self.arena.capacity(),
            "chained arena reservation exceeded"
        );
        let idx = self.arena.len() as u32;
        self.arena.push(ChainNode { cell, next: self.heads[b], pad: 0 });
        self.heads[b] = idx;
        self.items += 1;
        idx
    }

    /// Head node index of bucket `b`, if any.
    #[inline]
    pub fn head(&self, b: usize) -> Option<u32> {
        let h = self.heads[b];
        (h != NIL).then_some(h)
    }

    /// Node at `idx`.
    #[inline]
    pub fn node(&self, idx: u32) -> &ChainNode {
        &self.arena[idx as usize]
    }

    /// Next node after `idx`, if any.
    #[inline]
    pub fn next(&self, idx: u32) -> Option<u32> {
        let n = self.arena[idx as usize].next;
        (n != NIL).then_some(n)
    }
}

/// Build a chained table over the build partition (baseline-style loop;
/// the ablation focuses on the probe side, where pointer chasing bites).
pub fn build_chained<M: MemoryModel>(
    mem: &mut M,
    params: &JoinParams,
    build: &Relation,
    num_buckets: usize,
) -> ChainedTable {
    let mut table = ChainedTable::new(num_buckets, build.num_tuples());
    let mut scan = Scan::new(build, false);
    while let Some((pi, slot)) = scan.next(mem) {
        charge_code0(mem, params.use_stored_hash);
        let hash = tuple_hash(build, pi, slot, params.use_stored_hash);
        let t = build.page(pi).tuple(slot);
        let b = table.bucket_of(hash);
        // Read the head, write the node, write the head.
        mem.visit(table.head_addr(b), 4);
        mem.busy(cost::HEADER_CHECK);
        let idx = table.insert(HashCell::new(hash, t.as_ptr() as usize, t.len() as u32));
        mem.write(table.node_addr(idx), std::mem::size_of::<ChainNode>());
        mem.write(table.head_addr(b), 4);
        mem.busy(cost::CELL_WRITE);
    }
    table
}

/// Baseline probe of a chained table: walk each chain, fully exposed.
pub fn probe_chained_baseline<M: MemoryModel, S: JoinSink>(
    mem: &mut M,
    params: &JoinParams,
    table: &ChainedTable,
    build_rel: &Relation,
    probe_rel: &Relation,
    sink: &mut S,
) {
    let mut scan = Scan::new(probe_rel, false);
    while let Some((pi, slot)) = scan.next(mem) {
        charge_code0(mem, params.use_stored_hash);
        let hash = tuple_hash(probe_rel, pi, slot, params.use_stored_hash);
        let b = table.bucket_of(hash);
        mem.visit(table.head_addr(b), 4);
        mem.busy(cost::HEADER_CHECK);
        let pt = probe_rel.page(pi).tuple(slot);
        let mut cur = table.head(b);
        while let Some(idx) = cur {
            mem.visit(table.node_addr(idx), std::mem::size_of::<ChainNode>());
            mem.busy(cost::CELL_CHECK);
            let node = table.node(idx);
            if node.cell.hash == hash {
                mem.visit(node.cell.tuple_addr(), node.cell.tuple_len());
                mem.busy(cost::KEY_COMPARE);
                // SAFETY: cells point into `build_rel`, borrowed for the
                // duration of the probe.
                let bt = unsafe { node.cell.tuple_bytes() };
                if keys_equal(build_rel, probe_rel, bt, pt) {
                    sink.emit(mem, bt, pt);
                }
            }
            cur = table.next(idx);
        }
    }
}

/// "Group-prefetched" probe of a chained table: the best a staged scheme
/// can do against a linked list. Stage 0 prefetches head pointers;
/// stage 1 reads heads and prefetches the *first* node of each chain;
/// stage 2 must then walk the rest of each chain with **no prefetching
/// possible** — each `next` pointer is only known after the previous node
/// arrives (§3's pointer-chasing problem, made measurable).
pub fn probe_chained_group<M: MemoryModel, S: JoinSink>(
    mem: &mut M,
    params: &JoinParams,
    table: &ChainedTable,
    build_rel: &Relation,
    probe_rel: &Relation,
    g: usize,
    sink: &mut S,
) {
    let g = g.max(2);
    #[derive(Clone, Copy)]
    struct Slot {
        pi: usize,
        slot: u16,
        hash: u32,
        bucket: usize,
        first: Option<u32>,
    }
    let mut slots =
        vec![Slot { pi: 0, slot: 0, hash: 0, bucket: 0, first: None }; g];
    let mut scan = Scan::new(probe_rel, true);
    loop {
        let mut n = 0usize;
        // Stage 0: hash, prefetch head pointers.
        for s in slots.iter_mut().take(g) {
            let Some((pi, slot)) = scan.next(mem) else { break };
            charge_code0(mem, params.use_stored_hash);
            mem.busy(cost::STAGE_BOOKKEEPING);
            s.pi = pi;
            s.slot = slot;
            s.hash = tuple_hash(probe_rel, pi, slot, params.use_stored_hash);
            s.bucket = table.bucket_of(s.hash);
            mem.prefetch(table.head_addr(s.bucket), 4);
            n += 1;
        }
        if n == 0 {
            break;
        }
        // Stage 1: read heads, prefetch first nodes.
        for s in slots.iter_mut().take(n) {
            mem.visit(table.head_addr(s.bucket), 4);
            mem.busy(cost::HEADER_CHECK + cost::STAGE_BOOKKEEPING);
            s.first = table.head(s.bucket);
            if let Some(idx) = s.first {
                mem.prefetch(table.node_addr(idx), std::mem::size_of::<ChainNode>());
            }
        }
        // Stage 2: walk the chains — only the first node was hidden.
        for s in slots.iter_mut().take(n) {
            mem.busy(cost::STAGE_BOOKKEEPING);
            let pt = probe_rel.page(s.pi).tuple(s.slot);
            let mut cur = s.first;
            while let Some(idx) = cur {
                mem.visit(table.node_addr(idx), std::mem::size_of::<ChainNode>());
                mem.busy(cost::CELL_CHECK);
                let node = table.node(idx);
                if node.cell.hash == s.hash {
                    mem.visit(node.cell.tuple_addr(), node.cell.tuple_len());
                    mem.busy(cost::KEY_COMPARE);
                    // SAFETY: as above.
                    let bt = unsafe { node.cell.tuple_bytes() };
                    if keys_equal(build_rel, probe_rel, bt, pt) {
                        sink.emit(mem, bt, pt);
                    }
                }
                cur = table.next(idx);
            }
        }
        if n < g {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::join::{join_pair, JoinScheme};
    use crate::plan;
    use crate::sink::CountSink;
    use phj_memsim::{NativeModel, SimEngine};
    use phj_workload::JoinSpec;

    fn gen(n: usize) -> phj_workload::GeneratedJoin {
        JoinSpec {
            build_tuples: n,
            tuple_size: 24,
            matches_per_build: 2,
            pct_match: 100,
            seed: 8,
        }
        .generate()
    }

    fn params() -> JoinParams {
        JoinParams { scheme: JoinScheme::Baseline, use_stored_hash: true }
    }

    #[test]
    fn chained_probe_matches_cell_array_probe() {
        let g = gen(2000);
        let buckets = plan::hash_table_buckets(2000, 1);
        let mut mem = NativeModel;
        let table = build_chained(&mut mem, &params(), &g.build, buckets);
        assert_eq!(table.len(), 2000);
        let mut chained = CountSink::new();
        probe_chained_baseline(&mut mem, &params(), &table, &g.build, &g.probe, &mut chained);
        let mut grouped = CountSink::new();
        probe_chained_group(&mut mem, &params(), &table, &g.build, &g.probe, 16, &mut grouped);
        let mut reference = CountSink::new();
        join_pair(&mut mem, &params(), &g.build, &g.probe, 1, &mut reference);
        assert_eq!(chained, reference);
        assert_eq!(grouped, reference);
    }

    #[test]
    fn chain_order_is_lifo() {
        let mut t = ChainedTable::new(1, 4);
        t.insert(HashCell::new(1, 0x100, 4));
        t.insert(HashCell::new(2, 0x200, 4));
        let head = t.head(0).unwrap();
        assert_eq!(t.node(head).cell.hash, 2, "last insert at head");
        let second = t.next(head).unwrap();
        assert_eq!(t.node(second).cell.hash, 1);
        assert!(t.next(second).is_none());
    }

    #[test]
    fn pointer_chasing_limits_group_prefetching() {
        // Long chains (load factor 8): the cell-array probe with group
        // prefetching must clearly beat the chained probe with group
        // prefetching, because only the chain *head* can be prefetched.
        let g = gen(20_000);
        let buckets = plan::hash_table_buckets(20_000 / 8, 1);
        let chained_cycles = {
            let mut mem = SimEngine::paper();
            let table = build_chained(&mut mem, &params(), &g.build, buckets);
            let start = mem.breakdown();
            let mut sink = CountSink::new();
            probe_chained_group(&mut mem, &params(), &table, &g.build, &g.probe, 16, &mut sink);
            assert_eq!(sink.matches(), g.expected_matches);
            (mem.breakdown() - start).total()
        };
        let array_cycles = {
            let mut mem = SimEngine::paper();
            let jp = JoinParams { scheme: JoinScheme::Group { g: 16 }, use_stored_hash: true };
            let mut table = crate::table::HashTable::new(buckets, 20_000);
            crate::join::group::build(&mut mem, &jp, &mut table, &g.build, 16);
            let start = mem.breakdown();
            let mut sink = CountSink::new();
            crate::join::group::probe(&mut mem, &jp, &table, &g.build, &g.probe, 16, &mut sink);
            assert_eq!(sink.matches(), g.expected_matches);
            (mem.breakdown() - start).total()
        };
        assert!(
            array_cycles * 3 < chained_cycles * 2,
            "cell arrays {array_cycles} vs chains {chained_cycles}"
        );
    }
}
