//! Hashing: the join-key hash function and hash-code arithmetic.
//!
//! Per §7.1 of the paper: "A simple XOR and shift based hash function is
//! used to convert join keys of any length to 4-byte hash codes. [...]
//! Partition numbers in the partition phase are the hash codes modulo the
//! total number of partitions. Hash bucket numbers in the join phase are
//! the hash codes modulo the hash table size. Our algorithms ensure that
//! the hash table size is a relative prime to the number of partitions."

/// Compute the 4-byte hash code of a join key of any length.
///
/// XOR-and-shift over 4-byte words (with a tail fold), followed by an
/// avalanche so that low-entropy keys still spread across both partition
/// numbers and bucket numbers.
#[inline]
pub fn hash_key(key: &[u8]) -> u32 {
    hash_key_seeded(key, 0)
}

/// [`hash_key`] with a nonzero `seed` folded into the initial state.
///
/// Seed 0 reproduces `hash_key` exactly (stashed hash codes and stored
/// checksums stay valid). Recursive repartitioning uses successive seeds so
/// that keys which all collided into one partition at depth *d* spread out
/// again at depth *d*+1 — the same reason GRACE re-partitioning picks an
/// independent hash function.
#[inline]
pub fn hash_key_seeded(key: &[u8], seed: u32) -> u32 {
    let mut h: u32 = 0x9E37_79B9
        ^ seed.wrapping_mul(0x85EB_CA6B).rotate_left(11);
    let mut chunks = key.chunks_exact(4);
    for c in &mut chunks {
        let w = u32::from_le_bytes(c.try_into().unwrap());
        h ^= w;
        h = h.rotate_left(13).wrapping_mul(5).wrapping_add(0xE654_6B64);
    }
    for &b in chunks.remainder() {
        h ^= b as u32;
        h = h.rotate_left(7).wrapping_mul(0x85EB_CA6B);
    }
    // Final avalanche (xorshift-multiply).
    h ^= h >> 16;
    h = h.wrapping_mul(0x85EB_CA6B);
    h ^= h >> 13;
    h = h.wrapping_mul(0xC2B2_AE35);
    h ^ (h >> 16)
}

/// Partition number of a hash code (partition phase).
#[inline]
pub fn partition_of(hash: u32, num_partitions: usize) -> usize {
    debug_assert!(num_partitions > 0);
    hash as usize % num_partitions
}

/// Bucket number of a hash code (join phase).
#[inline]
pub fn bucket_of(hash: u32, num_buckets: usize) -> usize {
    debug_assert!(num_buckets > 0);
    hash as usize % num_buckets
}

/// Greatest common divisor (for the relative-primality constraint between
/// hash table size and partition count).
pub fn gcd(mut a: usize, mut b: usize) -> usize {
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        assert_eq!(hash_key(b"abcd"), hash_key(b"abcd"));
        assert_ne!(hash_key(b"abcd"), hash_key(b"abce"));
    }

    #[test]
    fn handles_any_length() {
        // Keys of length 0..16 all hash without panicking and differ from
        // their neighbours (not a collision guarantee; a smoke check).
        let keys: Vec<Vec<u8>> = (0..16usize).map(|n| vec![7u8; n]).collect();
        let hashes: Vec<u32> = keys.iter().map(|k| hash_key(k)).collect();
        for i in 1..hashes.len() {
            assert_ne!(hashes[i - 1], hashes[i], "len {} vs {}", i - 1, i);
        }
    }

    #[test]
    fn spreads_sequential_u32_keys() {
        // Sequential keys must spread over both partitions and buckets:
        // no partition should get more than 3x its fair share.
        let n = 10_000u32;
        let parts = 31usize;
        let mut counts = vec![0usize; parts];
        for k in 0..n {
            counts[partition_of(hash_key(&k.to_le_bytes()), parts)] += 1;
        }
        let fair = n as usize / parts;
        for (p, &c) in counts.iter().enumerate() {
            assert!(c < fair * 3, "partition {p} got {c} of fair {fair}");
            assert!(c > fair / 3, "partition {p} got {c} of fair {fair}");
        }
    }

    #[test]
    fn bucket_and_partition_are_moduli() {
        let h = 1_000_000_007u32;
        assert_eq!(partition_of(h, 800), (h as usize) % 800);
        assert_eq!(bucket_of(h, 499_979), (h as usize) % 499_979);
    }

    #[test]
    fn seed_zero_matches_unseeded() {
        for key in [&b""[..], b"a", b"abcd", b"abcdefgh", b"longer key bytes"] {
            assert_eq!(hash_key(key), hash_key_seeded(key, 0));
        }
    }

    #[test]
    fn reseeding_splits_a_collision_class() {
        // All keys landing in one partition under seed 0 must spread back
        // out under a different seed — the property recursive
        // repartitioning depends on.
        let parts = 8usize;
        let stuck: Vec<u32> = (0..40_000u32)
            .filter(|k| partition_of(hash_key(&k.to_le_bytes()), parts) == 3)
            .collect();
        assert!(stuck.len() > 1_000);
        let mut counts = vec![0usize; parts];
        for k in &stuck {
            counts[partition_of(hash_key_seeded(&k.to_le_bytes(), 1), parts)] += 1;
        }
        let fair = stuck.len() / parts;
        for (p, &c) in counts.iter().enumerate() {
            assert!(c < fair * 3, "partition {p} got {c} of fair {fair}");
            assert!(c > fair / 3, "partition {p} got {c} of fair {fair}");
        }
    }

    #[test]
    fn gcd_basic() {
        assert_eq!(gcd(12, 18), 6);
        assert_eq!(gcd(17, 31), 1);
        assert_eq!(gcd(0, 5), 5);
        assert_eq!(gcd(5, 0), 5);
        assert_eq!(gcd(48, 36), 12);
    }
}
