//! Software-pipelined hybrid hash join.
//!
//! The software-pipelined counterpart of [`crate::hybrid`]: the same
//! fused passes (partition 0's hash table built and probed on the fly
//! while the other partitions spill), but scheduled as one pipeline per
//! pass instead of groups. Both §5.3-style conflict protocols run
//! *simultaneously*: busy buckets queue waiters through the state slots,
//! and full output buffers queue waiters on their partition — the most
//! demanding composition of the paper's machinery in this crate, which
//! is exactly why it exists (it proves the waiting-queue protocols
//! compose).

use phj_memsim::MemoryModel;
use phj_storage::Relation;

use crate::cost;
use crate::hash::partition_of;
use crate::hybrid::HybridConfig;
use crate::join::{self, JoinParams, Scan};
use crate::model::swp_state_slots;
use crate::partition::{phase_hash, OutputBuffers};
use crate::plan;
use crate::sink::JoinSink;
use crate::table::{BucketHeader, HashCell, HashTable, InsertStep};

const NIL: u32 = u32::MAX;

/// Run the hybrid hash join with software-pipelined fused passes
/// (prefetch distance `d`); the spilled pairs use `cfg.spill_join`.
/// Returns the number of partitions (including in-memory partition 0).
pub fn hybrid_join_swp<M: MemoryModel, S: JoinSink>(
    mem: &mut M,
    cfg: &HybridConfig,
    d: usize,
    build: &Relation,
    probe: &Relation,
    sink: &mut S,
) -> usize {
    let p = plan::num_partitions(build.size_bytes(), cfg.mem_budget).max(1);
    let d = d.max(1);

    let expected_p0 = build.num_tuples() / p + 1;
    let buckets = plan::hash_table_buckets(expected_p0.max(1), p);
    let mut table = HashTable::new(buckets, expected_p0 * 2 + 16);
    let mut build_out = OutputBuffers::new(build, p);
    build_pass(mem, build, &mut table, &mut build_out, p, d);
    let build_parts = build_out.finish();
    table.assert_quiescent();

    let mut probe_out = OutputBuffers::new(probe, p);
    probe_pass(mem, probe, build, &table, &mut probe_out, p, d, sink);
    let probe_parts = probe_out.finish();

    let params = JoinParams { scheme: cfg.spill_join, use_stored_hash: true };
    for part in 1..p {
        join::join_pair(mem, &params, &build_parts[part], &probe_parts[part], p, sink);
    }
    p
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BuildPath {
    Done,
    /// Partition 0: examine the header at stage 1.
    TablePending,
    /// Partition 0: write the reserved overflow cell at stage 2.
    TableWrite(u32),
    /// Partition 0: parked on the bucket's waiting queue.
    TableWaiting,
    /// Spill: copy into the reserved buffer location at stage 1.
    SpillCopy(usize, (usize, usize)),
    /// Spill: parked on the partition's waiting queue.
    SpillWaiting(usize),
}

struct BuildSlot {
    pi: usize,
    slot: u16,
    cell: HashCell,
    bucket: usize,
    path: BuildPath,
    next_waiting: u32,
}

#[allow(clippy::too_many_arguments)]
fn build_pass<M: MemoryModel>(
    mem: &mut M,
    build: &Relation,
    table: &mut HashTable,
    out: &mut OutputBuffers,
    p: usize,
    d: usize,
) {
    let size = swp_state_slots(2, d);
    let mask = size - 1;
    let mut slots: Vec<BuildSlot> = (0..size)
        .map(|_| BuildSlot {
            pi: 0,
            slot: 0,
            cell: HashCell::new(0, 0, 0),
            bucket: 0,
            path: BuildPath::Done,
            next_waiting: NIL,
        })
        .collect();
    let mut scan = Scan::new(build, true);
    let mut total: Option<usize> = None;
    let mut it = 0usize;
    let bk = cost::STAGE_BOOKKEEPING + cost::SWP_EXTRA;
    loop {
        // Stage 0 for element `it`: hash, dispatch, prefetch/reserve.
        if total.is_none() {
            match scan.next(mem) {
                Some((pi, slot)) => {
                    let me = (it & mask) as u32;
                    mem.busy(cost::code0_cost(false) + bk);
                    let hash = phase_hash(build, pi, slot, false);
                    let t = build.page(pi).tuple(slot);
                    {
                        let s = &mut slots[me as usize];
                        debug_assert_eq!(s.path, BuildPath::Done, "slot reused too early");
                        s.pi = pi;
                        s.slot = slot;
                        s.cell = HashCell::new(hash, t.as_ptr() as usize, t.len() as u32);
                        s.next_waiting = NIL;
                    }
                    let part = partition_of(hash, p);
                    if part == 0 {
                        let b = table.bucket_of(hash);
                        slots[me as usize].bucket = b;
                        slots[me as usize].path = BuildPath::TablePending;
                        mem.prefetch(table.header_addr(b), HashTable::header_len());
                    } else {
                        slots[me as usize].path =
                            reserve_or_park(mem, out, &mut slots, me, part, t.len());
                    }
                }
                None => total = Some(it),
            }
        }
        // Stage 1 for element `it - D`.
        if it >= d {
            let e = it - d;
            if total.is_none_or(|t| e < t) {
                let me = (e & mask) as u32;
                mem.busy(bk);
                match slots[me as usize].path {
                    BuildPath::TablePending => {
                        let (bucket, cell) =
                            (slots[me as usize].bucket, slots[me as usize].cell);
                        mem.visit(table.header_addr(bucket), HashTable::header_len());
                        mem.busy(cost::HEADER_CHECK);
                        let mut grown = 0usize;
                        match table.begin_insert(bucket, cell, me, &mut grown) {
                            InsertStep::DoneInline => {
                                mem.write(table.header_addr(bucket), HashTable::header_len());
                                mem.busy(cost::CELL_WRITE);
                                slots[me as usize].path = BuildPath::Done;
                            }
                            InsertStep::WriteCell(idx) => {
                                if grown > 0 {
                                    let (addr, len) =
                                        table.array_span(bucket).expect("array");
                                    mem.visit(addr, len.min(grown));
                                    mem.busy(cost::copy_cost(grown));
                                }
                                mem.prefetch(table.arena().cell_addr(idx), 16);
                                slots[me as usize].path = BuildPath::TableWrite(idx);
                            }
                            InsertStep::Busy(owner) => {
                                mem.other(cost::BRANCH_MISS);
                                mem.busy(cost::SWP_EXTRA);
                                append_waiter(&mut slots, owner, me);
                                slots[me as usize].path = BuildPath::TableWaiting;
                            }
                        }
                    }
                    BuildPath::SpillCopy(part, addrs) => {
                        let t = build.page(slots[me as usize].pi).tuple(slots[me as usize].slot);
                        out.commit(mem, part, t, slots[me as usize].cell.hash, addrs);
                        slots[me as usize].path = BuildPath::Done;
                        drain_partition_queue(mem, out, &mut slots, part, build, |s| {
                            matches!(s, BuildPath::SpillWaiting(_))
                        });
                    }
                    _ => {}
                }
            }
        }
        // Stage 2 for element `it - 2D`.
        if it >= 2 * d {
            let e = it - 2 * d;
            if total.is_none_or(|t| e < t) {
                let me = e & mask;
                mem.busy(bk);
                if let BuildPath::TableWrite(idx) = slots[me].path {
                    let (bucket, cell) = (slots[me].bucket, slots[me].cell);
                    mem.write(table.arena().cell_addr(idx), 16);
                    mem.busy(cost::CELL_WRITE);
                    table.finish_overflow_insert(bucket, idx, cell);
                    slots[me].path = BuildPath::Done;
                    // Drain this bucket's waiting queue warm.
                    let mut w = slots[me].next_waiting;
                    slots[me].next_waiting = NIL;
                    while w != NIL {
                        let next = slots[w as usize].next_waiting;
                        slots[w as usize].next_waiting = NIL;
                        debug_assert_eq!(slots[w as usize].path, BuildPath::TableWaiting);
                        join::baseline::insert_one(mem, table, slots[w as usize].cell);
                        slots[w as usize].path = BuildPath::Done;
                        w = next;
                    }
                }
            }
        }
        if let Some(t) = total {
            if t == 0 || it >= t - 1 + 2 * d {
                break;
            }
        }
        it += 1;
    }
}

/// Reserve an output location for a spill tuple, or park it on the
/// partition's waiting queue (flushing immediately when nothing is in
/// flight).
fn reserve_or_park<M: MemoryModel>(
    mem: &mut M,
    out: &mut OutputBuffers,
    slots: &mut [BuildSlot],
    me: u32,
    part: usize,
    len: usize,
) -> BuildPath {
    match out.try_reserve(part, len) {
        Some(addrs) => {
            mem.prefetch(addrs.0, len);
            mem.prefetch(addrs.1, 8);
            BuildPath::SpillCopy(part, addrs)
        }
        None if out.pending(part) == 0 => {
            out.flush(part);
            let addrs = out.try_reserve(part, len).expect("fresh page fits");
            mem.prefetch(addrs.0, len);
            mem.prefetch(addrs.1, 8);
            BuildPath::SpillCopy(part, addrs)
        }
        None => {
            mem.other(cost::BRANCH_MISS);
            mem.busy(cost::SWP_EXTRA);
            let head = out.waiting(part);
            if head == NIL {
                out.set_waiting(part, me);
            } else {
                let mut cur = head;
                while slots[cur as usize].next_waiting != NIL {
                    cur = slots[cur as usize].next_waiting;
                }
                slots[cur as usize].next_waiting = me;
            }
            BuildPath::SpillWaiting(part)
        }
    }
}

/// When a partition's last in-flight copy lands, write the buffer out
/// and process its waiting queue warm.
fn drain_partition_queue<M: MemoryModel>(
    mem: &mut M,
    out: &mut OutputBuffers,
    slots: &mut [BuildSlot],
    part: usize,
    input: &Relation,
    is_waiting: impl Fn(BuildPath) -> bool,
) {
    if out.pending(part) != 0 || out.waiting(part) == NIL {
        return;
    }
    out.flush(part);
    let mut w = out.waiting(part);
    out.set_waiting(part, NIL);
    while w != NIL {
        let next = slots[w as usize].next_waiting;
        slots[w as usize].next_waiting = NIL;
        debug_assert!(is_waiting(slots[w as usize].path));
        let t = input.page(slots[w as usize].pi).tuple(slots[w as usize].slot);
        out.append_direct(mem, part, t, slots[w as usize].cell.hash);
        slots[w as usize].path = BuildPath::Done;
        w = next;
    }
}

/// Per-element probe-pass state.
struct ProbeSlot {
    pi: usize,
    slot: u16,
    hash: u32,
    bucket: usize,
    path: ProbePath,
    next_waiting: u32,
    header: BucketHeader,
    cands: Vec<HashCell>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ProbePath {
    Done,
    /// Partition 0: probing the in-memory table.
    Probe,
    /// Spill: copy at stage 1.
    SpillCopy(usize, (usize, usize)),
    /// Spill: parked on the partition's waiting queue.
    SpillWaiting(usize),
}

#[allow(clippy::too_many_arguments)]
fn probe_pass<M: MemoryModel, S: JoinSink>(
    mem: &mut M,
    probe: &Relation,
    build: &Relation,
    table: &HashTable,
    out: &mut OutputBuffers,
    p: usize,
    d: usize,
    sink: &mut S,
) {
    let size = swp_state_slots(3, d);
    let mask = size - 1;
    let empty_header = BucketHeader {
        inline_cell: HashCell::new(0, 0, 0),
        count: 0,
        busy: 0,
        array: NIL,
        cap: 0,
    };
    let mut slots: Vec<ProbeSlot> = (0..size)
        .map(|_| ProbeSlot {
            pi: 0,
            slot: 0,
            hash: 0,
            bucket: 0,
            path: ProbePath::Done,
            next_waiting: NIL,
            header: empty_header,
            cands: Vec::new(),
        })
        .collect();
    let mut scan = Scan::new(probe, true);
    let mut total: Option<usize> = None;
    let mut it = 0usize;
    let bk = cost::STAGE_BOOKKEEPING + cost::SWP_EXTRA;
    loop {
        // Stage 0: hash, dispatch, prefetch/reserve.
        if total.is_none() {
            match scan.next(mem) {
                Some((pi, slot)) => {
                    let me = (it & mask) as u32;
                    mem.busy(cost::code0_cost(false) + bk);
                    let hash = phase_hash(probe, pi, slot, false);
                    let t = probe.page(pi).tuple(slot);
                    {
                        let s = &mut slots[me as usize];
                        debug_assert_eq!(s.path, ProbePath::Done, "slot reused too early");
                        s.pi = pi;
                        s.slot = slot;
                        s.hash = hash;
                        s.next_waiting = NIL;
                        s.cands.clear();
                    }
                    let part = partition_of(hash, p);
                    if part == 0 {
                        let b = table.bucket_of(hash);
                        slots[me as usize].bucket = b;
                        slots[me as usize].path = ProbePath::Probe;
                        mem.prefetch(table.header_addr(b), HashTable::header_len());
                    } else {
                        slots[me as usize].path =
                            probe_reserve_or_park(mem, out, &mut slots, me, part, t.len());
                    }
                }
                None => total = Some(it),
            }
        }
        // Stage 1.
        if it >= d {
            let e = it - d;
            if total.is_none_or(|t| e < t) {
                let me = e & mask;
                mem.busy(bk);
                match slots[me].path {
                    ProbePath::Probe => {
                        let bucket = slots[me].bucket;
                        mem.visit(table.header_addr(bucket), HashTable::header_len());
                        mem.busy(cost::HEADER_CHECK);
                        let header = *table.header(bucket);
                        if header.count > 0 {
                            if header.inline_cell.hash == slots[me].hash {
                                mem.other(cost::BRANCH_MISS);
                                mem.prefetch(
                                    header.inline_cell.tuple_addr(),
                                    header.inline_cell.tuple_len(),
                                );
                                slots[me].cands.push(header.inline_cell);
                            }
                            if header.count > 1 {
                                let (addr, len) = table.array_span(bucket).expect("array");
                                mem.prefetch(addr, len);
                            }
                        }
                        slots[me].header = header;
                    }
                    ProbePath::SpillCopy(part, addrs) => {
                        let t = probe.page(slots[me].pi).tuple(slots[me].slot);
                        out.commit(mem, part, t, slots[me].hash, addrs);
                        slots[me].path = ProbePath::Done;
                        probe_drain_queue(mem, out, &mut slots, part, probe);
                    }
                    _ => {}
                }
            }
        }
        // Stage 2: scan cell arrays.
        if it >= 2 * d {
            let e = it - 2 * d;
            if total.is_none_or(|t| e < t) {
                let me = e & mask;
                mem.busy(bk);
                if slots[me].path == ProbePath::Probe && slots[me].header.count > 1 {
                    let bucket = slots[me].bucket;
                    let (addr, len) = table.array_span(bucket).expect("array");
                    mem.visit(addr, len);
                    mem.busy(cost::CELL_CHECK * (slots[me].header.count as u64 - 1));
                    let hash = slots[me].hash;
                    for c in table.overflow_cells(bucket) {
                        if c.hash == hash {
                            mem.other(cost::BRANCH_MISS);
                            mem.prefetch(c.tuple_addr(), c.tuple_len());
                            slots[me].cands.push(*c);
                        }
                    }
                }
            }
        }
        // Stage 3: emit matches.
        if it >= 3 * d {
            let e = it - 3 * d;
            if total.is_none_or(|t| e < t) {
                let me = e & mask;
                mem.busy(bk);
                if slots[me].path == ProbePath::Probe {
                    if !slots[me].cands.is_empty() {
                        let pt = probe.page(slots[me].pi).tuple(slots[me].slot);
                        for c in &slots[me].cands {
                            mem.visit(c.tuple_addr(), c.tuple_len());
                            mem.busy(cost::KEY_COMPARE);
                            // SAFETY: cells point into `build`, borrowed
                            // for the duration of the join.
                            let bt = unsafe { c.tuple_bytes() };
                            if join::keys_equal(build, probe, bt, pt) {
                                sink.emit(mem, bt, pt);
                            }
                        }
                    }
                    slots[me].path = ProbePath::Done;
                }
            }
        }
        if let Some(t) = total {
            if t == 0 || it >= t - 1 + 3 * d {
                break;
            }
        }
        it += 1;
    }
}

fn probe_reserve_or_park<M: MemoryModel>(
    mem: &mut M,
    out: &mut OutputBuffers,
    slots: &mut [ProbeSlot],
    me: u32,
    part: usize,
    len: usize,
) -> ProbePath {
    match out.try_reserve(part, len) {
        Some(addrs) => {
            mem.prefetch(addrs.0, len);
            mem.prefetch(addrs.1, 8);
            ProbePath::SpillCopy(part, addrs)
        }
        None if out.pending(part) == 0 => {
            out.flush(part);
            let addrs = out.try_reserve(part, len).expect("fresh page fits");
            mem.prefetch(addrs.0, len);
            mem.prefetch(addrs.1, 8);
            ProbePath::SpillCopy(part, addrs)
        }
        None => {
            mem.other(cost::BRANCH_MISS);
            mem.busy(cost::SWP_EXTRA);
            let head = out.waiting(part);
            if head == NIL {
                out.set_waiting(part, me);
            } else {
                let mut cur = head;
                while slots[cur as usize].next_waiting != NIL {
                    cur = slots[cur as usize].next_waiting;
                }
                slots[cur as usize].next_waiting = me;
            }
            ProbePath::SpillWaiting(part)
        }
    }
}

fn probe_drain_queue<M: MemoryModel>(
    mem: &mut M,
    out: &mut OutputBuffers,
    slots: &mut [ProbeSlot],
    part: usize,
    input: &Relation,
) {
    if out.pending(part) != 0 || out.waiting(part) == NIL {
        return;
    }
    out.flush(part);
    let mut w = out.waiting(part);
    out.set_waiting(part, NIL);
    while w != NIL {
        let next = slots[w as usize].next_waiting;
        slots[w as usize].next_waiting = NIL;
        debug_assert!(matches!(slots[w as usize].path, ProbePath::SpillWaiting(_)));
        let t = input.page(slots[w as usize].pi).tuple(slots[w as usize].slot);
        out.append_direct(mem, part, t, slots[w as usize].hash);
        slots[w as usize].path = ProbePath::Done;
        w = next;
    }
}

fn append_waiter(slots: &mut [BuildSlot], owner: u32, me: u32) {
    let mut cur = owner;
    while slots[cur as usize].next_waiting != NIL {
        cur = slots[cur as usize].next_waiting;
    }
    slots[cur as usize].next_waiting = me;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hybrid::{grace_equivalent, hybrid_join};
    use crate::sink::CountSink;
    use phj_memsim::{NativeModel, SimEngine};
    use phj_workload::JoinSpec;

    fn spec(n: usize) -> JoinSpec {
        JoinSpec {
            build_tuples: n,
            tuple_size: 40,
            matches_per_build: 2,
            pct_match: 75,
            seed: 654,
        }
    }

    #[test]
    fn swp_hybrid_matches_group_hybrid_and_grace() {
        let gen = spec(4000).generate();
        let cfg = HybridConfig { mem_budget: 64 * 1024, g: 16, ..Default::default() };
        let mut mem = NativeModel;
        let mut swp_sink = CountSink::new();
        let p = hybrid_join_swp(&mut mem, &cfg, 2, &gen.build, &gen.probe, &mut swp_sink);
        assert!(p > 1);
        assert_eq!(swp_sink.matches(), gen.expected_matches);
        let mut grp_sink = CountSink::new();
        hybrid_join(&mut mem, &cfg, &gen.build, &gen.probe, &mut grp_sink);
        assert_eq!(swp_sink, grp_sink);
        let mut grace_sink = CountSink::new();
        grace_equivalent(&mut mem, &cfg, &gen.build, &gen.probe, &mut grace_sink);
        assert_eq!(swp_sink, grace_sink);
    }

    #[test]
    fn swp_hybrid_various_distances() {
        let gen = spec(1500).generate();
        let cfg = HybridConfig { mem_budget: 32 * 1024, g: 8, ..Default::default() };
        let mut reference: Option<CountSink> = None;
        for d in [1usize, 2, 4, 7] {
            let mut mem = NativeModel;
            let mut sink = CountSink::new();
            hybrid_join_swp(&mut mem, &cfg, d, &gen.build, &gen.probe, &mut sink);
            assert_eq!(sink.matches(), gen.expected_matches, "D={d}");
            match &reference {
                None => reference = Some(sink),
                Some(r) => assert_eq!(&sink, r, "D={d}"),
            }
        }
    }

    #[test]
    fn swp_hybrid_heavy_duplicates_and_tiny_buffers() {
        use phj_storage::{RelationBuilder, Schema};
        // Duplicate keys force bucket queues; large tuples force constant
        // buffer-full parking: both protocols at once.
        let schema = Schema::key_payload(1500);
        let mut b = RelationBuilder::new(schema.clone());
        let mut pr = RelationBuilder::new(schema);
        let mut t = vec![0u8; 1500];
        for i in 0..200u32 {
            t[..4].copy_from_slice(&(i % 3).to_le_bytes());
            b.push(&t);
            pr.push(&t);
        }
        let (build, probe) = (b.finish(), pr.finish());
        let cfg = HybridConfig { mem_budget: 16 * 1024, g: 4, ..Default::default() };
        let mut mem = NativeModel;
        let mut sink = CountSink::new();
        hybrid_join_swp(&mut mem, &cfg, 3, &build, &probe, &mut sink);
        // Each key appears ~67 times on both sides within its class.
        let mut want = 0u64;
        let mut counts = std::collections::HashMap::new();
        for i in 0..200u32 {
            *counts.entry(i % 3).or_insert(0u64) += 1;
        }
        for i in 0..200u32 {
            want += counts[&(i % 3)];
        }
        assert_eq!(sink.matches(), want);
    }

    #[test]
    fn swp_hybrid_beats_grace_in_sim() {
        let gen = spec(20_000).generate();
        let cfg = HybridConfig { mem_budget: 256 * 1024, g: 16, ..Default::default() };
        let run = |swp: bool| {
            let mut mem = SimEngine::paper();
            let mut sink = CountSink::new();
            if swp {
                hybrid_join_swp(&mut mem, &cfg, 2, &gen.build, &gen.probe, &mut sink);
            } else {
                grace_equivalent(&mut mem, &cfg, &gen.build, &gen.probe, &mut sink);
            }
            assert_eq!(sink.matches(), gen.expected_matches);
            mem.breakdown().total()
        };
        let grace = run(false);
        let swp = run(true);
        assert!(swp < grace, "swp hybrid {swp} vs grace {grace}");
    }
}
