//! Memory-access attribution hooks: tagging the join's data structures
//! as address regions, and deriving the per-partition skew profile from
//! recorded spans.
//!
//! The simulator can charge every cache hit, miss, TLB walk, and prefetch
//! outcome to the *data structure* whose line was touched (see
//! [`phj_memsim::RegionProfiler`]). The algorithms only have to say where
//! their structures live — that is this module. Each registration helper
//! is a no-op unless the model profiles regions (checked once up front,
//! so unprofiled runs skip even the page iteration), and registration
//! never advances simulated time, keeping unprofiled runs byte-identical.

use phj_memsim::{MemoryModel, RegionKind};
use phj_obs::{SkewRow, SpanRecord};
use phj_storage::{Relation, PAGE_SIZE};

use crate::table::HashTable;

/// Whether `mem` attributes accesses to regions (true only for a
/// [`SimEngine`](phj_memsim::SimEngine) with profiling enabled).
#[inline]
pub fn profiling<M: MemoryModel>(mem: &M) -> bool {
    mem.latency_hist().is_some()
}

/// Tag every page of `rel` as `kind` (build input, probe input, or the
/// slotted pages streamed through the partition phase). Pages are boxed,
/// so their addresses are stable for the relation's lifetime.
pub fn register_relation<M: MemoryModel>(mem: &mut M, kind: RegionKind, rel: &Relation) {
    if !profiling(mem) {
        return;
    }
    for pi in 0..rel.num_pages() {
        mem.region_register(kind, rel.page(pi).base_addr(), PAGE_SIZE);
    }
}

/// Tag a hash table's bucket-header array and cell arena. The arena span
/// covers the full reservation, so cells allocated later still land in
/// [`RegionKind::HashCells`].
pub fn register_table<M: MemoryModel>(mem: &mut M, table: &HashTable) {
    if !profiling(mem) {
        return;
    }
    let (addr, len) = table.headers_span();
    mem.region_register(RegionKind::HashBucketHeaders, addr, len);
    let (addr, len) = table.arena_span();
    mem.region_register(RegionKind::HashCells, addr, len);
}

/// Drop every registration of the join-phase kinds (table + both tuple
/// inputs) — called when a partition pair is done, so the next pair's
/// structures (possibly reusing freed addresses) start clean.
pub fn clear_join_regions<M: MemoryModel>(mem: &mut M) {
    mem.region_clear(RegionKind::HashBucketHeaders);
    mem.region_clear(RegionKind::HashCells);
    mem.region_clear(RegionKind::BuildTuples);
    mem.region_clear(RegionKind::ProbeTuples);
}

/// Drop the partition-phase registrations (streamed input pages + output
/// buffers) at the end of a partitioning pass over one relation.
pub fn clear_partition_regions<M: MemoryModel>(mem: &mut M) {
    mem.region_clear(RegionKind::SlottedPages);
    mem.region_clear(RegionKind::PartitionBuffers);
}

/// Derive the per-partition skew profile from recorded spans: one row per
/// `"pair"` span, carrying its partition index, the tuple counts from its
/// nested `"build"`/`"probe"` spans, and the pair's own cycle and miss
/// deltas. Rows appear in execution order.
pub fn skew_profile(spans: &[SpanRecord]) -> Vec<SkewRow> {
    let mut rows: Vec<SkewRow> = Vec::new();
    // Span id → index into `rows`, for attaching child tuple counts.
    let mut pair_row: Vec<Option<usize>> = vec![None; spans.len()];
    for (i, s) in spans.iter().enumerate() {
        if s.name == "pair" {
            pair_row[i] = Some(rows.len());
            rows.push(SkewRow {
                index: meta_u64(s, "index").unwrap_or(rows.len() as u64),
                build_tuples: 0,
                probe_tuples: 0,
                cycles: s.delta.breakdown.total(),
                l2_hits: s.delta.stats.l2_hits,
                mem_misses: s.delta.stats.mem_misses,
            });
        } else if let Some(row) = s.parent.and_then(|p| pair_row[p]) {
            match s.name.as_str() {
                "build" => rows[row].build_tuples = meta_u64(s, "tuples").unwrap_or(0),
                "probe" => rows[row].probe_tuples = meta_u64(s, "tuples").unwrap_or(0),
                _ => {}
            }
        }
    }
    rows
}

fn meta_u64(span: &SpanRecord, key: &str) -> Option<u64> {
    span.meta.iter().find(|(k, _)| k == key).and_then(|(_, v)| v.parse().ok())
}

#[cfg(test)]
mod tests {
    use super::*;
    use phj_memsim::{Breakdown, CacheStats, NativeModel, SimEngine, Snapshot};
    use phj_obs::Recorder;

    #[test]
    fn profiling_only_on_enabled_engines() {
        assert!(!profiling(&NativeModel));
        let mut sim = SimEngine::paper();
        assert!(!profiling(&sim));
        sim.enable_region_profiling();
        assert!(profiling(&sim));
    }

    #[test]
    fn register_relation_is_noop_when_off() {
        use phj_storage::{RelationBuilder, Schema};
        let mut b = RelationBuilder::new(Schema::key_payload(16));
        b.push(&[7u8; 16]);
        let rel = b.finish();
        // NativeModel has no registry at all; this must simply not panic.
        register_relation(&mut NativeModel, RegionKind::BuildTuples, &rel);
        // An unprofiled engine stays unprofiled.
        let mut sim = SimEngine::paper();
        register_relation(&mut sim, RegionKind::BuildTuples, &rel);
        assert!(sim.region_profile().is_none());
        // A profiled one picks up the pages.
        sim.enable_region_profiling();
        register_relation(&mut sim, RegionKind::BuildTuples, &rel);
        sim.visit(rel.page(0).base_addr(), 4);
        let stats = sim.region_profile().unwrap().stats(RegionKind::BuildTuples);
        assert_eq!(stats.demand_lines(), 1);
    }

    #[test]
    fn skew_profile_reads_pair_spans() {
        let snap = |busy, l2_hits, mem_misses| Snapshot {
            breakdown: Breakdown { busy, ..Default::default() },
            stats: CacheStats { l2_hits, mem_misses, ..Default::default() },
        };
        let mut rec = Recorder::new();
        let root = rec.begin("grace_join", snap(0, 0, 0));
        let p0 = rec.begin("pair", snap(0, 0, 0));
        rec.meta("index", 0);
        let b = rec.begin("build", snap(0, 0, 0));
        rec.meta("tuples", 100);
        rec.end(b, snap(40, 1, 2));
        let pr = rec.begin("probe", snap(40, 1, 2));
        rec.meta("tuples", 300);
        rec.end(pr, snap(90, 3, 5));
        rec.end(p0, snap(100, 4, 6));
        let p1 = rec.begin("pair", snap(100, 4, 6));
        rec.meta("index", 3);
        rec.end(p1, snap(400, 10, 26));
        rec.end(root, snap(400, 10, 26));
        let rows = skew_profile(&rec.finish());
        assert_eq!(rows.len(), 2);
        assert_eq!(
            rows[0],
            SkewRow {
                index: 0,
                build_tuples: 100,
                probe_tuples: 300,
                cycles: 100,
                l2_hits: 4,
                mem_misses: 6,
            }
        );
        assert_eq!(rows[1].index, 3);
        assert_eq!(rows[1].cycles, 300);
        assert_eq!(rows[1].mem_misses, 20);
        assert_eq!(rows[1].build_tuples, 0, "no nested spans recorded");
    }
}
