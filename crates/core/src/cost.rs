//! Per-stage computation costs (`C_i`) charged to the memory model.
//!
//! The paper's analytical model (§4.2, Table 1) characterizes each code
//! stage by its execution time `C_i`. Under the simulator these are charged
//! explicitly via [`MemoryModel::busy`]; under the native model the charges
//! compile to nothing and the real instructions cost what they cost.
//!
//! Calibration (documented so the Theorem-1/2 predictions line up with the
//! simulated sweeps, cf. Fig 12):
//!
//! * the hash function is a few dozen ALU ops (`HASH_FN` = 30) and the
//!   bucket/partition modulo is an integer divide — the paper substitutes
//!   the Pentium 4 integer-divide latency into its Alpha-based simulator
//!   (§7.1), hence the large `MOD` = 68;
//! * header and cell-array examinations are short compare-and-branch
//!   sequences (8 cycles), deliberately *below* `T_next` = 10, so the
//!   binding constraint of Theorem 1 is `(G-1)·T_next ≥ T`, giving
//!   `G* = 16` at `T = 150` — the same regime as the paper's `G = 19`;
//! * tuple copies cost [`copy_cost`] ≈ 15 + len/2 cycles (a 1 GHz 4-wide
//!   2003-class core sustains ~2 B/cycle through the slotted-page copy
//!   path).
//!
//! With these constants Theorem 2 predicts `D = 1` for 100 B tuples —
//! exactly the paper's optimal prefetch distance (§7.3).
//!
//! [`MemoryModel::busy`]: phj_memsim::MemoryModel::busy

/// Hash-function evaluation over a short key (cycles).
pub const HASH_FN: u64 = 30;

/// Integer modulo by a non-power-of-two (bucket or partition number):
/// the paper substitutes the Pentium 4 integer-divide latency (§7.1),
/// which is 60-80 cycles for 32-bit operands.
pub const MOD: u64 = 68;

/// Reading the stashed hash code from the page slot area instead of
/// recomputing (the §7.1 optimization): load + loop overhead.
pub const HASH_REUSE: u64 = 10;

/// Examining a bucket header: null/empty tests, inline-cell hash compare.
pub const HEADER_CHECK: u64 = 8;

/// Examining one step of a hash-cell array scan (hash-code compare).
pub const CELL_CHECK: u64 = 8;

/// Writing one hash cell during build (stores + count update).
pub const CELL_WRITE: u64 = 15;

/// Full join-key comparison on a hash-code match.
pub const KEY_COMPARE: u64 = 15;

/// Per-tuple loop overhead of reading the next input tuple (slot decode,
/// bounds checks, iterator advance).
pub const TUPLE_FETCH: u64 = 12;

/// Group/software-pipeline bookkeeping per element per stage (state reads
/// and writes, circular-index masking). Software pipelining pays it with a
/// small premium (`SWP_EXTRA`) for modular indexing and queue upkeep
/// (§5.4: "software-pipelined prefetching has larger bookkeeping
/// overhead").
pub const STAGE_BOOKKEEPING: u64 = 3;

/// Additional software-pipelining bookkeeping per element per stage.
pub const SWP_EXTRA: u64 = 2;

/// Evaluating the aggregated expression for one tuple (hash group-by).
pub const AGG_EXTRACT: u64 = 8;

/// Average branch-misprediction cost charged (as an "other stall") at the
/// data-dependent match/no-match and code-path-dispatch branches. The
/// prefetching schemes execute more dispatch branches, which is why the
/// paper's Fig 11 shows their "other stalls" slightly increasing.
pub const BRANCH_MISS: u64 = 2;

/// Cost of copying `len` bytes between cached buffers (slot decode,
/// length checks, and ~2 B/cycle of sustained copy on a 2003-class core).
#[inline]
pub const fn copy_cost(len: usize) -> u64 {
    15 + (len as u64) / 2
}

/// Cost of code-0 (address generation) when the hash is computed from the
/// key vs reused from the slot area.
#[inline]
pub const fn code0_cost(reuse_stored_hash: bool) -> u64 {
    if reuse_stored_hash {
        HASH_REUSE + MOD + TUPLE_FETCH
    } else {
        HASH_FN + MOD + TUPLE_FETCH
    }
}

/// The probe loop's stage costs `[C_0, C_1, C_2, C_3]` for Theorem
/// predictions: hash+bucket, header check, cell scan, key compare + output
/// materialization of `out_len` bytes.
pub fn probe_stage_costs(reuse_stored_hash: bool, out_len: usize) -> [u64; 4] {
    [
        code0_cost(reuse_stored_hash),
        HEADER_CHECK,
        CELL_CHECK,
        KEY_COMPARE + copy_cost(out_len),
    ]
}

/// The build loop's stage costs `[C_0, C_1, C_2]`: hash+bucket, header
/// examination, cell write.
pub fn build_stage_costs(reuse_stored_hash: bool) -> [u64; 3] {
    [code0_cost(reuse_stored_hash), HEADER_CHECK, CELL_WRITE]
}

/// The partition loop's stage costs `[C_0, C_1]`: hash+partition number,
/// tuple copy into the output buffer.
pub fn partition_stage_costs(tuple_len: usize) -> [u64; 2] {
    [HASH_FN + MOD + TUPLE_FETCH, copy_cost(tuple_len)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn copy_cost_scales() {
        assert_eq!(copy_cost(0), 15);
        assert_eq!(copy_cost(100), 65);
        assert!(copy_cost(1400) > copy_cost(100));
    }

    #[test]
    fn code0_reuse_is_cheaper() {
        assert!(code0_cost(true) < code0_cost(false));
    }

    #[test]
    fn stage_cost_vectors() {
        let p = probe_stage_costs(true, 200);
        assert_eq!(p.len(), 4);
        assert_eq!(p[0], code0_cost(true));
        assert_eq!(p[3], KEY_COMPARE + copy_cost(200));
        let b = build_stage_costs(false);
        assert_eq!(b[0], code0_cost(false));
        let q = partition_stage_costs(100);
        assert_eq!(q[1], copy_cost(100));
    }
}
