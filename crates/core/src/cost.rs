//! Per-stage computation costs (`C_i`) charged to the memory model.
//!
//! The paper's analytical model (§4.2, Table 1) characterizes each code
//! stage by its execution time `C_i`. Under the simulator these are charged
//! explicitly via [`MemoryModel::busy`]; under the native model the charges
//! compile to nothing and the real instructions cost what they cost.
//!
//! Calibration (documented so the Theorem-1/2 predictions line up with the
//! simulated sweeps, cf. Fig 12):
//!
//! * the hash function is a few dozen ALU ops (`HASH_FN` = 30) and the
//!   bucket/partition modulo is an integer divide — the paper substitutes
//!   the Pentium 4 integer-divide latency into its Alpha-based simulator
//!   (§7.1), hence the large `MOD` = 68;
//! * header and cell-array examinations are short compare-and-branch
//!   sequences (8 cycles), deliberately *below* `T_next` = 10, so the
//!   binding constraint of Theorem 1 is `(G-1)·T_next ≥ T`, giving
//!   `G* = 16` at `T = 150` — the same regime as the paper's `G = 19`;
//! * tuple copies cost [`copy_cost`] ≈ 15 + len/2 cycles (a 1 GHz 4-wide
//!   2003-class core sustains ~2 B/cycle through the slotted-page copy
//!   path).
//!
//! With these constants Theorem 2 predicts `D = 1` for 100 B tuples —
//! exactly the paper's optimal prefetch distance (§7.3).
//!
//! [`MemoryModel::busy`]: phj_memsim::MemoryModel::busy

/// Hash-function evaluation over a short key (cycles).
pub const HASH_FN: u64 = 30;

/// Integer modulo by a non-power-of-two (bucket or partition number):
/// the paper substitutes the Pentium 4 integer-divide latency (§7.1),
/// which is 60-80 cycles for 32-bit operands.
pub const MOD: u64 = 68;

/// Reading the stashed hash code from the page slot area instead of
/// recomputing (the §7.1 optimization): load + loop overhead.
pub const HASH_REUSE: u64 = 10;

/// Examining a bucket header: null/empty tests, inline-cell hash compare.
pub const HEADER_CHECK: u64 = 8;

/// Examining one step of a hash-cell array scan (hash-code compare).
pub const CELL_CHECK: u64 = 8;

/// Writing one hash cell during build (stores + count update).
pub const CELL_WRITE: u64 = 15;

/// Full join-key comparison on a hash-code match.
pub const KEY_COMPARE: u64 = 15;

/// Per-tuple loop overhead of reading the next input tuple (slot decode,
/// bounds checks, iterator advance).
pub const TUPLE_FETCH: u64 = 12;

/// Group/software-pipeline bookkeeping per element per stage (state reads
/// and writes, circular-index masking). Software pipelining pays it with a
/// small premium (`SWP_EXTRA`) for modular indexing and queue upkeep
/// (§5.4: "software-pipelined prefetching has larger bookkeeping
/// overhead").
pub const STAGE_BOOKKEEPING: u64 = 3;

/// Additional software-pipelining bookkeeping per element per stage.
pub const SWP_EXTRA: u64 = 2;

/// Evaluating the aggregated expression for one tuple (hash group-by).
pub const AGG_EXTRACT: u64 = 8;

/// Average branch-misprediction cost charged (as an "other stall") at the
/// data-dependent match/no-match and code-path-dispatch branches. The
/// prefetching schemes execute more dispatch branches, which is why the
/// paper's Fig 11 shows their "other stalls" slightly increasing.
pub const BRANCH_MISS: u64 = 2;

/// Cost of copying `len` bytes between cached buffers (slot decode,
/// length checks, and ~2 B/cycle of sustained copy on a 2003-class core).
#[inline]
pub const fn copy_cost(len: usize) -> u64 {
    15 + (len as u64) / 2
}

/// Cost of code-0 (address generation) when the hash is computed from the
/// key vs reused from the slot area.
#[inline]
pub const fn code0_cost(reuse_stored_hash: bool) -> u64 {
    if reuse_stored_hash {
        HASH_REUSE + MOD + TUPLE_FETCH
    } else {
        HASH_FN + MOD + TUPLE_FETCH
    }
}

/// The probe loop's stage costs `[C_0, C_1, C_2, C_3]` for Theorem
/// predictions: hash+bucket, header check, cell scan, key compare + output
/// materialization of `out_len` bytes.
pub fn probe_stage_costs(reuse_stored_hash: bool, out_len: usize) -> [u64; 4] {
    CostModel::default().probe_stage_costs(reuse_stored_hash, out_len)
}

/// The build loop's stage costs `[C_0, C_1, C_2]`: hash+bucket, header
/// examination, cell write.
pub fn build_stage_costs(reuse_stored_hash: bool) -> [u64; 3] {
    CostModel::default().build_stage_costs(reuse_stored_hash)
}

/// The partition loop's stage costs `[C_0, C_1]`: hash+partition number,
/// tuple copy into the output buffer.
pub fn partition_stage_costs(tuple_len: usize) -> [u64; 2] {
    CostModel::default().partition_stage_costs(tuple_len)
}

/// The calibration constants as one overridable value set.
///
/// The module-level constants are the calibrated defaults; the analyzer
/// (`phj-analyze`) and the CLI's `--cost-model k=v,...` flag need to
/// perturb them — e.g. to sanity-check that Theorem-1/2 residuals move
/// when the assumed stage costs are wrong — without recompiling. All
/// stage-cost vectors are derivable from this struct; the free functions
/// above evaluate it at its defaults.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CostModel {
    /// [`HASH_FN`].
    pub hash_fn: u64,
    /// [`MOD`].
    pub mod_op: u64,
    /// [`HASH_REUSE`].
    pub hash_reuse: u64,
    /// [`HEADER_CHECK`].
    pub header_check: u64,
    /// [`CELL_CHECK`].
    pub cell_check: u64,
    /// [`CELL_WRITE`].
    pub cell_write: u64,
    /// [`KEY_COMPARE`].
    pub key_compare: u64,
    /// [`TUPLE_FETCH`].
    pub tuple_fetch: u64,
    /// Fixed part of [`copy_cost`].
    pub copy_base: u64,
    /// Sustained copy bandwidth in bytes per cycle (the `/2` of
    /// [`copy_cost`]); must stay nonzero.
    pub copy_bytes_per_cycle: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            hash_fn: HASH_FN,
            mod_op: MOD,
            hash_reuse: HASH_REUSE,
            header_check: HEADER_CHECK,
            cell_check: CELL_CHECK,
            cell_write: CELL_WRITE,
            key_compare: KEY_COMPARE,
            tuple_fetch: TUPLE_FETCH,
            copy_base: 15,
            copy_bytes_per_cycle: 2,
        }
    }
}

impl CostModel {
    /// The overridable keys, in `entries` order.
    pub const KEYS: [&'static str; 10] = [
        "hash_fn",
        "mod",
        "hash_reuse",
        "header_check",
        "cell_check",
        "cell_write",
        "key_compare",
        "tuple_fetch",
        "copy_base",
        "copy_bpc",
    ];

    /// The model as `(key, value)` pairs, for config fingerprints and the
    /// analyzer's provenance lines.
    pub fn entries(&self) -> [(&'static str, u64); 10] {
        [
            ("hash_fn", self.hash_fn),
            ("mod", self.mod_op),
            ("hash_reuse", self.hash_reuse),
            ("header_check", self.header_check),
            ("cell_check", self.cell_check),
            ("cell_write", self.cell_write),
            ("key_compare", self.key_compare),
            ("tuple_fetch", self.tuple_fetch),
            ("copy_base", self.copy_base),
            ("copy_bpc", self.copy_bytes_per_cycle),
        ]
    }

    /// Parse a `key=value,key=value` override spec on top of the
    /// defaults. Unknown keys, non-numeric values, and a zero copy
    /// bandwidth are rejected with the offending token in the message.
    pub fn parse_overrides(spec: &str) -> Result<CostModel, String> {
        let mut m = CostModel::default();
        for tok in spec.split(',').filter(|t| !t.is_empty()) {
            let (key, value) = tok
                .split_once('=')
                .ok_or_else(|| format!("expected key=value, got `{tok}`"))?;
            let v: u64 = value
                .trim()
                .parse()
                .map_err(|_| format!("`{key}` expects an integer cycle count, got `{value}`"))?;
            match key.trim() {
                "hash_fn" => m.hash_fn = v,
                "mod" => m.mod_op = v,
                "hash_reuse" => m.hash_reuse = v,
                "header_check" => m.header_check = v,
                "cell_check" => m.cell_check = v,
                "cell_write" => m.cell_write = v,
                "key_compare" => m.key_compare = v,
                "tuple_fetch" => m.tuple_fetch = v,
                "copy_base" => m.copy_base = v,
                "copy_bpc" => m.copy_bytes_per_cycle = v,
                other => {
                    return Err(format!(
                        "unknown cost-model key `{other}` (known: {})",
                        Self::KEYS.join(", ")
                    ))
                }
            }
        }
        if m.copy_bytes_per_cycle == 0 {
            return Err("copy_bpc must be at least 1 byte/cycle".to_string());
        }
        Ok(m)
    }

    /// [`copy_cost`] under this model.
    pub fn copy_cost(&self, len: usize) -> u64 {
        self.copy_base + (len as u64) / self.copy_bytes_per_cycle
    }

    /// [`code0_cost`] under this model.
    pub fn code0_cost(&self, reuse_stored_hash: bool) -> u64 {
        if reuse_stored_hash {
            self.hash_reuse + self.mod_op + self.tuple_fetch
        } else {
            self.hash_fn + self.mod_op + self.tuple_fetch
        }
    }

    /// [`probe_stage_costs`] under this model.
    pub fn probe_stage_costs(&self, reuse_stored_hash: bool, out_len: usize) -> [u64; 4] {
        [
            self.code0_cost(reuse_stored_hash),
            self.header_check,
            self.cell_check,
            self.key_compare + self.copy_cost(out_len),
        ]
    }

    /// [`build_stage_costs`] under this model.
    pub fn build_stage_costs(&self, reuse_stored_hash: bool) -> [u64; 3] {
        [self.code0_cost(reuse_stored_hash), self.header_check, self.cell_write]
    }

    /// [`partition_stage_costs`] under this model.
    pub fn partition_stage_costs(&self, tuple_len: usize) -> [u64; 2] {
        [
            self.hash_fn + self.mod_op + self.tuple_fetch,
            self.copy_cost(tuple_len),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn copy_cost_scales() {
        assert_eq!(copy_cost(0), 15);
        assert_eq!(copy_cost(100), 65);
        assert!(copy_cost(1400) > copy_cost(100));
    }

    #[test]
    fn code0_reuse_is_cheaper() {
        assert!(code0_cost(true) < code0_cost(false));
    }

    #[test]
    fn stage_cost_vectors() {
        let p = probe_stage_costs(true, 200);
        assert_eq!(p.len(), 4);
        assert_eq!(p[0], code0_cost(true));
        assert_eq!(p[3], KEY_COMPARE + copy_cost(200));
        let b = build_stage_costs(false);
        assert_eq!(b[0], code0_cost(false));
        let q = partition_stage_costs(100);
        assert_eq!(q[1], copy_cost(100));
    }

    #[test]
    fn default_model_matches_constants() {
        let m = CostModel::default();
        assert_eq!(m.probe_stage_costs(true, 200), probe_stage_costs(true, 200));
        assert_eq!(m.build_stage_costs(false), build_stage_costs(false));
        assert_eq!(m.partition_stage_costs(100), partition_stage_costs(100));
        assert_eq!(m.copy_cost(100), copy_cost(100));
        assert_eq!(m.code0_cost(true), code0_cost(true));
        // Every key appears exactly once in both listings.
        assert_eq!(m.entries().map(|(k, _)| k), CostModel::KEYS);
    }

    #[test]
    fn overrides_parse_and_perturb() {
        let m = CostModel::parse_overrides("header_check=20, cell_check=20").unwrap();
        assert_eq!(m.header_check, 20);
        assert_eq!(m.cell_check, 20);
        assert_eq!(m.hash_fn, HASH_FN); // untouched keys keep defaults
        assert_eq!(m.probe_stage_costs(true, 200)[1], 20);
        // Empty spec is the default model.
        assert_eq!(CostModel::parse_overrides("").unwrap(), CostModel::default());
        // Bad specs name the offending token.
        assert!(CostModel::parse_overrides("nope=3").unwrap_err().contains("nope"));
        assert!(CostModel::parse_overrides("hash_fn").unwrap_err().contains("key=value"));
        assert!(CostModel::parse_overrides("hash_fn=abc").unwrap_err().contains("abc"));
        assert!(CostModel::parse_overrides("copy_bpc=0").unwrap_err().contains("copy_bpc"));
    }
}
