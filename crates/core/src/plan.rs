//! Planning: partition counts and hash-table sizing.
//!
//! The engine keeps "schemas and statistics in separate description files
//! [...] which are used by the hash join algorithms to compute numbers of
//! partitions and hash table sizes" (§7.1). Here the statistics come from
//! the in-memory relations directly.

use crate::hash::gcd;

/// Number of I/O partitions so that each build partition (plus slack for
/// its hash table) fits in `mem_budget` bytes of join-phase memory.
///
/// The paper's experiments make a build partition "fit tightly in the
/// 50 MB memory", so the default slack is none: partitions are sized to
/// the budget.
pub fn num_partitions(build_bytes: usize, mem_budget: usize) -> usize {
    assert!(mem_budget > 0);
    build_bytes.div_ceil(mem_budget).max(1)
}

/// Partition fan-out for a (dynamic) hybrid hash join. Unlike
/// [`num_partitions`] — which sizes partitions to exactly fill the
/// budget, so *zero* of them can stay resident alongside the join-phase
/// working space — hybrid partitions are sized to roughly a quarter of
/// the budget: several fit in memory at once, and spilling one victim
/// under pressure frees a useful fraction of the budget instead of all
/// of it. Never coarser than the GRACE fan-out (each partition must
/// still fit the budget alone for the join phase to load it), and never
/// more than a few partitions finer: when the budget is a small
/// fraction of the build, residency can only ever hold a sliver, and
/// paying GRACE's per-pair join overhead 4x over would put the hybrid
/// *above* the static GRACE robustness curve exactly where memory is
/// tightest.
pub fn hybrid_fanout(build_bytes: usize, mem_budget: usize) -> usize {
    assert!(mem_budget > 0);
    let grace = num_partitions(build_bytes, mem_budget);
    let fine = num_partitions(build_bytes, (mem_budget / 4).max(1));
    fine.min(grace + 4).max(grace)
}

/// Bytes a hybrid join holds back from partition residency: working
/// space for the spilled-pair join phase and the per-partition probe
/// batch buffers. A quarter of the budget — one partition target's
/// worth under [`hybrid_fanout`] sizing.
pub fn hybrid_reserve(mem_budget: usize) -> usize {
    (mem_budget / 4).max(1)
}

/// Hash-table bucket count for a build partition of `ntuples` tuples:
/// approximately one bucket per tuple (load factor ~1), adjusted upward
/// until it is **relatively prime to the number of partitions** — since
/// both the partition number and the bucket number are moduli of the same
/// hash code (§7.1), a shared factor would leave most buckets of a
/// partition's table unused.
pub fn hash_table_buckets(ntuples: usize, num_partitions: usize) -> usize {
    let mut n = ntuples.max(1);
    while gcd(n, num_partitions.max(1)) != 1 {
        n += 1;
    }
    n
}

/// Smallest partition count ≥ `needed` that is relatively prime to the
/// product of the moduli already applied to these tuples' hash codes.
/// Recursive (multi-pass) partitioning reuses the same hash code at every
/// level (§7.1), so a level sharing a factor with an earlier level would
/// leave some of its partitions empty and others doubled.
pub fn coprime_partitions(needed: usize, prior_moduli: usize) -> usize {
    let mut p = needed.max(2);
    while gcd(p, prior_moduli.max(1)) != 1 {
        p += 1;
    }
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::{bucket_of, partition_of};

    #[test]
    fn partition_count_covers_relation() {
        assert_eq!(num_partitions(100, 50), 2);
        assert_eq!(num_partitions(101, 50), 3);
        assert_eq!(num_partitions(1, 50), 1);
        assert_eq!(num_partitions(0, 50), 1);
        // Paper Fig 9: 1.5 GB build with ~50 MB memory → 31 partitions.
        let gb = 1024 * 1024 * 1024;
        let p = num_partitions(3 * gb / 2, 50 * 1024 * 1024);
        assert_eq!(p, 31);
    }

    #[test]
    fn table_size_coprime_to_partitions() {
        let n = hash_table_buckets(500_000, 800);
        assert_eq!(gcd(n, 800), 1);
        assert!(n >= 500_000);
        assert!(n < 500_010, "adjustment should be small");
    }

    #[test]
    fn coprime_matters_for_coverage() {
        // With the same hash used for partitioning and bucketing, a table
        // size sharing a factor g with the partition count would use only
        // 1/g of its buckets. Verify our sizing avoids that.
        let nparts = 8;
        let nbuckets = hash_table_buckets(64, nparts);
        assert_eq!(gcd(nbuckets, nparts), 1);
        // All residues mod nbuckets are reachable from hashes ≡ 3 mod 8:
        // check a decent sample hits > 90% of buckets.
        let mut hit = vec![false; nbuckets];
        let mut h: u64 = 3;
        for _ in 0..nbuckets * 64 {
            hit[bucket_of(h as u32, nbuckets)] = true;
            h += nparts as u64; // stays ≡ 3 mod 8
            h &= 0xFFFF_FFFF;
        }
        let covered = hit.iter().filter(|&&b| b).count();
        assert!(covered * 10 > nbuckets * 9, "covered {covered}/{nbuckets}");
        // Sanity: partition_of is stable for those hashes.
        assert_eq!(partition_of(3, nparts), 3);
    }

    #[test]
    fn coprime_partition_levels() {
        assert_eq!(coprime_partitions(8, 1), 8);
        // Level 2 after an 8-way level 1: 8,9 → 9 is coprime.
        assert_eq!(coprime_partitions(8, 8), 9);
        assert_eq!(coprime_partitions(6, 15), 7);
        assert_eq!(gcd(coprime_partitions(100, 360), 360), 1);
    }

    #[test]
    fn hybrid_fanout_is_finer_than_grace_and_leaves_reserve() {
        // 100 MB build, 50 MB budget: GRACE says 2 partitions of 50 MB
        // (none can stay resident); hybrid caps the finer sweep at
        // GRACE + 4 — 6 partitions of ~16.7 MB, two of which fit beside
        // the reserve.
        let mb = 1 << 20;
        assert_eq!(num_partitions(100 * mb, 50 * mb), 2);
        assert_eq!(hybrid_fanout(100 * mb, 50 * mb), 6);
        assert_eq!(hybrid_reserve(50 * mb), 50 * mb / 4);
        // Modest build: quarter-budget partitions, uncapped.
        assert_eq!(hybrid_fanout(50 * mb, 50 * mb), 4);
        // Tiny build: one partition, fully resident.
        assert_eq!(hybrid_fanout(mb / 8, mb), 1);
        // Hybrid is never coarser than GRACE, never finer than GRACE + 4.
        for (build, budget) in [(7, 3), (1000, 1), (64 * mb, 3 * mb)] {
            let g = num_partitions(build, budget);
            assert!(hybrid_fanout(build, budget) >= g);
            assert!(hybrid_fanout(build, budget) <= g + 4);
        }
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(hash_table_buckets(0, 4), 1);
        assert_eq!(hash_table_buckets(5, 1), 5);
    }
}
