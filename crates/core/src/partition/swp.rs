//! Software-pipelined prefetching for the partition phase.
//!
//! `k = 1`, so the pipeline has two stages: stage 0 hashes the tuple,
//! reserves its output location, and prefetches it; stage 1 (D iterations
//! later) performs the copy. Buffer-full events use **waiting queues**
//! (§6: "In software-pipelined prefetching, we use waiting queues similar
//! to those for hash table building in the join phase"): a tuple that
//! finds its buffer full while copies are still in flight parks on the
//! partition's chain; the commit that drains the last in-flight copy
//! writes the buffer out and processes the chain.

use phj_memsim::MemoryModel;
use phj_storage::Relation;

use crate::cost;
use crate::hash::partition_of;
use crate::join::Scan;
use crate::model::swp_state_slots;

use super::{phase_hash, OutputBuffers};

const NIL: u32 = u32::MAX;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Done,
    Copy((usize, usize)),
    Waiting,
}

struct Slot {
    pi: usize,
    slot: u16,
    hash: u32,
    p: usize,
    state: State,
    next_waiting: u32,
}

/// Run the software-pipelined partition loop.
pub(crate) fn run<M: MemoryModel>(
    mem: &mut M,
    input: &Relation,
    pages: std::ops::Range<usize>,
    out: &mut OutputBuffers,
    d: usize,
    use_stored_hash: bool,
) {
    let d = d.max(1);
    let size = swp_state_slots(1, d);
    let mask = size - 1;
    let mut slots: Vec<Slot> = (0..size)
        .map(|_| Slot {
            pi: 0,
            slot: 0,
            hash: 0,
            p: 0,
            state: State::Done,
            next_waiting: NIL,
        })
        .collect();
    let mut scan = Scan::range(input, true, pages);
    let mut total: Option<usize> = None;
    let mut it = 0usize;
    let bk = cost::STAGE_BOOKKEEPING + cost::SWP_EXTRA;
    loop {
        // Stage 0 for element `it`.
        if total.is_none() {
            match scan.next(mem) {
                Some((pi, slot)) => {
                    let me = (it & mask) as u32;
                    let t = input.page(pi).tuple(slot);
                    mem.busy(cost::code0_cost(use_stored_hash) + bk);
                    let hash = phase_hash(input, pi, slot, use_stored_hash);
                    let p = partition_of(hash, out.num_partitions());
                    {
                        let s = &mut slots[me as usize];
                        debug_assert_eq!(s.state, State::Done, "slot reused too early");
                        s.pi = pi;
                        s.slot = slot;
                        s.hash = hash;
                        s.p = p;
                        s.next_waiting = NIL;
                    }
                    match out.try_reserve(p, t.len()) {
                        Some(addrs) => {
                            mem.prefetch(addrs.0, t.len());
                            mem.prefetch(addrs.1, 8);
                            slots[me as usize].state = State::Copy(addrs);
                        }
                        None if out.pending(p) == 0 => {
                            // No copies in flight: safe to write out now.
                            out.flush(p);
                            let addrs = out
                                .try_reserve(p, t.len())
                                .expect("fresh page fits any tuple");
                            mem.prefetch(addrs.0, t.len());
                            mem.prefetch(addrs.1, 8);
                            slots[me as usize].state = State::Copy(addrs);
                        }
                        None => {
                            // Copies in flight: park on the waiting queue.
                            mem.other(cost::BRANCH_MISS);
                            mem.busy(cost::SWP_EXTRA);
                            let head = out.waiting(p);
                            if head == NIL {
                                out.set_waiting(p, me);
                            } else {
                                let mut cur = head;
                                while slots[cur as usize].next_waiting != NIL {
                                    cur = slots[cur as usize].next_waiting;
                                }
                                slots[cur as usize].next_waiting = me;
                            }
                            slots[me as usize].state = State::Waiting;
                        }
                    }
                }
                None => total = Some(it),
            }
        }
        // Stage 1 for element `it - D`.
        if it >= d {
            let e = it - d;
            if total.is_none_or(|t| e < t) {
                let me = e & mask;
                mem.busy(bk);
                if let State::Copy(addrs) = slots[me].state {
                    let (p, hash) = (slots[me].p, slots[me].hash);
                    let t = input.page(slots[me].pi).tuple(slots[me].slot);
                    out.commit(mem, p, t, hash, addrs);
                    slots[me].state = State::Done;
                    // Last in-flight copy gone? Write out and drain the
                    // partition's waiting queue without prefetching.
                    if out.pending(p) == 0 && out.waiting(p) != NIL {
                        out.flush(p);
                        let mut w = out.waiting(p);
                        out.set_waiting(p, NIL);
                        while w != NIL {
                            let next = slots[w as usize].next_waiting;
                            slots[w as usize].next_waiting = NIL;
                            debug_assert_eq!(slots[w as usize].state, State::Waiting);
                            let wt =
                                input.page(slots[w as usize].pi).tuple(slots[w as usize].slot);
                            out.append_direct(mem, slots[w as usize].p, wt, slots[w as usize].hash);
                            slots[w as usize].state = State::Done;
                            w = next;
                        }
                    }
                }
            }
        }
        if let Some(t) = total {
            if t == 0 || it >= t - 1 + d {
                break;
            }
        }
        it += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::super::{partition_relation, PartitionScheme};
    use phj_memsim::{NativeModel, SimEngine};
    use phj_storage::{Relation, RelationBuilder, Schema};

    fn input_rel(n: usize, size: usize) -> Relation {
        let schema = Schema::key_payload(size);
        let mut b = RelationBuilder::new(schema);
        let mut t = vec![0u8; size];
        for i in 0..n {
            t[..4].copy_from_slice(&(i as u32).to_le_bytes());
            b.push(&t);
        }
        b.finish()
    }

    fn tuple_multisets(parts: &[Relation]) -> Vec<Vec<Vec<u8>>> {
        parts
            .iter()
            .map(|r| {
                let mut v = r.to_tuple_vec();
                v.sort();
                v
            })
            .collect()
    }

    #[test]
    fn swp_matches_baseline_partitioning() {
        let input = input_rel(4000, 100);
        let mut mem = NativeModel;
        let base = partition_relation(&mut mem, PartitionScheme::Baseline, &input, 11, false);
        for d in [1, 2, 4, 9] {
            let got =
                partition_relation(&mut mem, PartitionScheme::Swp { d }, &input, 11, false);
            assert_eq!(tuple_multisets(&got), tuple_multisets(&base), "D={d}");
        }
    }

    #[test]
    fn swp_single_partition_exercises_waiting_queue() {
        let input = input_rel(2000, 100);
        let mut mem = NativeModel;
        let base = partition_relation(&mut mem, PartitionScheme::Baseline, &input, 1, false);
        for d in [1, 3, 8] {
            let got =
                partition_relation(&mut mem, PartitionScheme::Swp { d }, &input, 1, false);
            assert_eq!(tuple_multisets(&got), tuple_multisets(&base), "D={d}");
        }
    }

    #[test]
    fn swp_large_tuples_flush_often() {
        // 2000-byte tuples: only 4 per page, so buffer-full conflicts are
        // constant and the waiting-queue path dominates.
        let input = input_rel(500, 2000);
        let mut mem = NativeModel;
        let base = partition_relation(&mut mem, PartitionScheme::Baseline, &input, 3, false);
        let got = partition_relation(&mut mem, PartitionScheme::Swp { d: 4 }, &input, 3, false);
        assert_eq!(tuple_multisets(&got), tuple_multisets(&base));
    }

    #[test]
    fn swp_beats_baseline_with_many_partitions_in_sim() {
        let input = input_rel(20_000, 100);
        let time = |scheme| {
            let mut mem = SimEngine::paper();
            let parts = partition_relation(&mut mem, scheme, &input, 400, false);
            assert_eq!(parts.iter().map(|r| r.num_tuples()).sum::<usize>(), 20_000);
            mem.breakdown().total()
        };
        let base = time(PartitionScheme::Baseline);
        let swp = time(PartitionScheme::Swp { d: 1 });
        assert!(swp < base, "swp {swp} vs baseline {base}");
    }
}
