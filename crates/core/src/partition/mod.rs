//! The I/O partition phase (§6 of the paper).
//!
//! "An input relation is divided into multiple output partitions by
//! hashing on the join keys. Typically an output buffer per partition and
//! an input buffer are allocated in main memory. [...] Every input tuple
//! is examined. Its partition number is computed from the join key. The
//! relevant columns of the input tuple are then extracted and copied to
//! the target output buffer."
//!
//! Four schemes, as in §6/§7.4:
//!
//! * **baseline** — no prefetching;
//! * **simple** — prefetch each input page after its disk read; best when
//!   all output buffers fit in cache (≲ 100 partitions in Fig 14);
//! * **group / software-pipelined** — when the buffers outgrow the cache,
//!   every output-buffer visit misses; these exploit inter-tuple
//!   parallelism exactly like the join phase (`k = 1` dependent reference:
//!   the output-buffer location). Buffer-full events are the phase's
//!   read-write conflicts: group prefetching defers the tuple to the group
//!   boundary where the buffer is safely flushed; software pipelining
//!   parks it on the partition's waiting queue until in-flight copies
//!   drain;
//! * **combined** — picks simple vs group from the partition count and
//!   cache size ("we choose the prefetching algorithm based on the cache
//!   size and the number of partitions", §7.4).
//!
//! The partition phase computes each tuple's hash code once and **stashes
//! it in the output page's slot area** so the join phase can reuse it
//! (§7.1).

pub mod group;
pub mod swp;

use phj_memsim::{MemoryModel, RegionKind};
use phj_obs::{self as obs, Recorder};
use phj_storage::{tuple::key_bytes_of, Page, Relation, PAGE_SIZE};

use crate::cost;
use crate::hash::{hash_key, partition_of};
use crate::profile;

use super::join::Scan;

/// Which partition-phase algorithm to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PartitionScheme {
    /// No prefetching.
    Baseline,
    /// Prefetch each input page after reading it.
    Simple,
    /// Group prefetching with group size `g`.
    Group {
        /// Group size `G`.
        g: usize,
    },
    /// Software-pipelined prefetching with prefetch distance `d`.
    Swp {
        /// Prefetch distance `D`.
        d: usize,
    },
    /// Simple when the output buffers fit in cache, group otherwise.
    Combined {
        /// Group size `G` for the many-partitions regime.
        g: usize,
        /// Use simple prefetching when `num_partitions` ≤ this. The
        /// default ([`PartitionScheme::combined_default`]) derives it
        /// from the 1 MB L2: 128 pages minus headroom.
        cache_pages: usize,
    },
}

impl PartitionScheme {
    /// The paper's combined scheme with the Table-2 cache geometry: the
    /// 1 MB L2 holds 128 pages; half of it for output buffers (the rest
    /// streams input and holds metadata) puts the switch point at 64
    /// partitions, which is where the simulated Fig-14 curves cross.
    pub fn combined_default() -> Self {
        PartitionScheme::Combined { g: 12, cache_pages: 64 }
    }

    /// Short label for reports.
    pub fn label(&self) -> String {
        match self {
            PartitionScheme::Baseline => "baseline".into(),
            PartitionScheme::Simple => "simple".into(),
            PartitionScheme::Group { g } => format!("group(G={g})"),
            PartitionScheme::Swp { d } => format!("swp(D={d})"),
            PartitionScheme::Combined { g, cache_pages } => {
                format!("combined(G={g},≤{cache_pages}p→simple)")
            }
        }
    }
}

/// Divide `input` into `num_partitions` partitions by join-key hash.
/// Returns one relation per partition, with hash codes stashed in the
/// page slot areas.
///
/// ```
/// use phj::partition::{partition_relation, PartitionScheme};
/// use phj_memsim::NativeModel;
/// use phj_storage::{RelationBuilder, Schema};
///
/// let mut b = RelationBuilder::new(Schema::key_payload(16));
/// for k in 0u32..1000 {
///     let mut t = [0u8; 16];
///     t[..4].copy_from_slice(&k.to_le_bytes());
///     b.push(&t);
/// }
/// let input = b.finish();
/// let mut mem = NativeModel;
/// let parts = partition_relation(
///     &mut mem,
///     PartitionScheme::Group { g: 12 },
///     &input,
///     8,
///     false,
/// );
/// assert_eq!(parts.len(), 8);
/// assert_eq!(parts.iter().map(|p| p.num_tuples()).sum::<usize>(), 1000);
/// ```
pub fn partition_relation<M: MemoryModel>(
    mem: &mut M,
    scheme: PartitionScheme,
    input: &Relation,
    num_partitions: usize,
    use_stored_hash: bool,
) -> Vec<Relation> {
    partition_relation_rec(mem, scheme, input, num_partitions, use_stored_hash, None)
}

/// [`partition_relation`] with an optional span recorder: the whole pass
/// over this relation becomes one `"partition"` span annotated with the
/// scheme, fan-out, and tuple count.
pub fn partition_relation_rec<M: MemoryModel>(
    mem: &mut M,
    scheme: PartitionScheme,
    input: &Relation,
    num_partitions: usize,
    use_stored_hash: bool,
    rec: Option<&mut Recorder>,
) -> Vec<Relation> {
    partition_page_range_rec(
        mem,
        scheme,
        input,
        0..input.num_pages(),
        num_partitions,
        use_stored_hash,
        rec,
    )
}

/// Partition only the pages in `pages` — the morsel a parallel partition
/// phase hands to one worker. Each worker runs this on its own page
/// ranges into private buffers; concatenating the per-worker outputs per
/// partition (in any order) reproduces a sequential partitioning's tuple
/// multiset, because tuple placement depends only on the hash.
pub fn partition_page_range<M: MemoryModel>(
    mem: &mut M,
    scheme: PartitionScheme,
    input: &Relation,
    pages: std::ops::Range<usize>,
    num_partitions: usize,
    use_stored_hash: bool,
) -> Vec<Relation> {
    partition_page_range_rec(mem, scheme, input, pages, num_partitions, use_stored_hash, None)
}

/// [`partition_page_range`] with an optional span recorder.
pub fn partition_page_range_rec<M: MemoryModel>(
    mem: &mut M,
    scheme: PartitionScheme,
    input: &Relation,
    pages: std::ops::Range<usize>,
    num_partitions: usize,
    use_stored_hash: bool,
    mut rec: Option<&mut Recorder>,
) -> Vec<Relation> {
    assert!(num_partitions > 0);
    let pages = pages.start.min(input.num_pages())..pages.end.min(input.num_pages());
    let expect: usize = pages
        .clone()
        .map(|pi| input.page(pi).nslots() as usize)
        .sum();
    let span = obs::span_begin(&mut rec, mem, "partition");
    obs::span_meta(&mut rec, "scheme", scheme.label());
    obs::span_meta(&mut rec, "partitions", num_partitions);
    obs::span_meta(&mut rec, "tuples", expect);
    let mut out = OutputBuffers::new(input, num_partitions);
    profile::register_relation(mem, RegionKind::SlottedPages, input);
    out.register_regions(mem);
    match scheme {
        PartitionScheme::Baseline => {
            straight(mem, input, pages.clone(), &mut out, false, use_stored_hash)
        }
        PartitionScheme::Simple => {
            straight(mem, input, pages.clone(), &mut out, true, use_stored_hash)
        }
        PartitionScheme::Group { g } => {
            group::run(mem, input, pages.clone(), &mut out, g, use_stored_hash)
        }
        PartitionScheme::Swp { d } => {
            swp::run(mem, input, pages.clone(), &mut out, d, use_stored_hash)
        }
        PartitionScheme::Combined { g, cache_pages } => {
            if num_partitions <= cache_pages {
                straight(mem, input, pages.clone(), &mut out, true, use_stored_hash)
            } else {
                group::run(mem, input, pages.clone(), &mut out, g, use_stored_hash)
            }
        }
    }
    debug_assert_eq!(out.tuples() as usize, expect, "tuples lost");
    let parts = out.finish();
    obs::span_end(&mut rec, mem, span);
    profile::clear_partition_regions(mem);
    parts
}

/// Read or recompute a tuple's partition-phase hash code.
#[inline]
pub(crate) fn phase_hash(input: &Relation, pi: usize, slot: u16, use_stored: bool) -> u32 {
    if use_stored {
        input.page(pi).hash_code(slot)
    } else {
        hash_key(key_bytes_of(input.schema(), input.page(pi).tuple(slot)))
    }
}

/// One tuple at a time, optional input-page prefetch (baseline / simple).
fn straight<M: MemoryModel>(
    mem: &mut M,
    input: &Relation,
    pages: std::ops::Range<usize>,
    out: &mut OutputBuffers,
    prefetch_input: bool,
    use_stored_hash: bool,
) {
    let mut scan = Scan::range(input, prefetch_input, pages);
    while let Some((pi, slot)) = scan.next(mem) {
        mem.busy(cost::code0_cost(use_stored_hash));
        let hash = phase_hash(input, pi, slot, use_stored_hash);
        let p = partition_of(hash, out.num_partitions());
        let t = input.page(pi).tuple(slot);
        out.append_direct(mem, p, t, hash);
    }
}

const NIL: u32 = u32::MAX;

/// The per-partition output buffers, with the reservation protocol the
/// staged schemes need: stage 0 *reserves* an insertion position (so its
/// exact addresses can be prefetched) and stage 1 *commits* the copy.
/// Reservations and commits happen in the same per-partition order, so a
/// reservation's addresses are exact.
pub(crate) struct OutputBuffers {
    parts: Vec<PartBuf>,
    tuples: u64,
}

struct PartBuf {
    rel: Relation,
    page: Page,
    /// Slots handed out including uncommitted reservations.
    reserved_slots: u16,
    /// Data cursor including uncommitted reservations.
    reserved_data: u16,
    /// Reservations not yet committed.
    pending: u32,
    /// Head of the waiting chain (software pipelining), by state index.
    waiting: u32,
}

impl PartBuf {
    fn fresh(schema: &phj_storage::Schema) -> Self {
        PartBuf {
            rel: Relation::new(schema.clone()),
            page: Page::new(),
            reserved_slots: 0,
            reserved_data: PAGE_SIZE as u16,
            pending: 0,
            waiting: NIL,
        }
    }
}

impl OutputBuffers {
    pub(crate) fn new(input: &Relation, num_partitions: usize) -> Self {
        OutputBuffers {
            parts: (0..num_partitions)
                .map(|_| PartBuf::fresh(input.schema()))
                .collect(),
            tuples: 0,
        }
    }

    pub(crate) fn num_partitions(&self) -> usize {
        self.parts.len()
    }

    /// Tag every partition's output-buffer page for region attribution
    /// (no-op unless `mem` profiles). The buffer pages are reused in
    /// place across flushes, so one registration covers the whole pass.
    pub(crate) fn register_regions<M: MemoryModel>(&self, mem: &mut M) {
        if !profile::profiling(mem) {
            return;
        }
        for pb in &self.parts {
            mem.region_register(RegionKind::PartitionBuffers, pb.page.base_addr(), PAGE_SIZE);
        }
    }

    /// Straight append: flush if full, then copy. Charges the output-side
    /// memory writes and copy cost. Used by baseline/simple and by the
    /// staged schemes' conflict-resolution paths (no prefetching there:
    /// the buffer page is either fresh or warm).
    pub(crate) fn append_direct<M: MemoryModel>(
        &mut self,
        mem: &mut M,
        p: usize,
        tuple: &[u8],
        hash: u32,
    ) {
        let pb = &mut self.parts[p];
        debug_assert_eq!(pb.pending, 0, "direct append with reservations in flight");
        if !pb.page.fits(tuple.len()) {
            Self::flush_buf(pb);
        }
        let (data_addr, slot_addr) = pb.page.next_insert_addrs(tuple.len());
        mem.write(data_addr, tuple.len());
        mem.write(slot_addr, 8);
        mem.busy(cost::copy_cost(tuple.len()));
        pb.page.insert(tuple, hash).expect("fits after flush");
        pb.reserved_slots = pb.page.nslots();
        pb.reserved_data = (data_addr - pb.page.base_addr()) as u16;
        self.tuples += 1;
    }

    /// Stage-0 reservation: returns the exact `(data_addr, slot_addr)` the
    /// commit will write, or `None` when the buffer page is full.
    pub(crate) fn try_reserve(&mut self, p: usize, len: usize) -> Option<(usize, usize)> {
        let pb = &mut self.parts[p];
        let free = pb.reserved_data as usize
            - (phj_storage::PAGE_HEADER_BYTES + 8 * pb.reserved_slots as usize);
        if free < len + 8 {
            return None;
        }
        pb.reserved_data -= len as u16;
        let data_addr = pb.page.base_addr() + pb.reserved_data as usize;
        let slot_addr = pb.page.slot_addr(pb.reserved_slots);
        pb.reserved_slots += 1;
        pb.pending += 1;
        Some((data_addr, slot_addr))
    }

    /// Stage-1 commit of a reservation made by [`Self::try_reserve`].
    /// Commits must arrive in reservation order per partition (the staged
    /// loops guarantee this). Charges the writes and the copy.
    pub(crate) fn commit<M: MemoryModel>(
        &mut self,
        mem: &mut M,
        p: usize,
        tuple: &[u8],
        hash: u32,
        reserved: (usize, usize),
    ) {
        let pb = &mut self.parts[p];
        debug_assert!(pb.pending > 0, "commit without reservation");
        mem.write(reserved.0, tuple.len());
        mem.write(reserved.1, 8);
        mem.busy(cost::copy_cost(tuple.len()));
        let slot = pb.page.insert(tuple, hash).expect("reservation guaranteed space");
        debug_assert_eq!(pb.page.tuple_addr(slot), reserved.0, "commit out of order");
        debug_assert_eq!(pb.page.slot_addr(slot), reserved.1);
        pb.pending -= 1;
        self.tuples += 1;
    }

    /// Number of uncommitted reservations on partition `p`.
    pub(crate) fn pending(&self, p: usize) -> u32 {
        self.parts[p].pending
    }

    /// Waiting-chain head for partition `p` (software pipelining).
    pub(crate) fn waiting(&self, p: usize) -> u32 {
        self.parts[p].waiting
    }

    /// Set the waiting-chain head.
    pub(crate) fn set_waiting(&mut self, p: usize, head: u32) {
        self.parts[p].waiting = head;
    }

    /// Flush partition `p`'s buffer page (requires no pending
    /// reservations: the staged schemes only flush at safe points — that
    /// is exactly the read-write-conflict discipline of §6).
    pub(crate) fn flush(&mut self, p: usize) {
        let pb = &mut self.parts[p];
        assert_eq!(pb.pending, 0, "flush with in-flight copies (conflict bug)");
        Self::flush_buf(pb);
    }

    /// "Write out" the buffer page: copy it to the partition's relation
    /// (our stand-in for the disk, uncharged like a DMA write) and reuse
    /// the same buffer in place — the buffer's cache lines stay where
    /// they are, which is why few-partition runs keep their buffers
    /// cache-resident (Fig 14's left region).
    fn flush_buf(pb: &mut PartBuf) {
        if pb.page.nslots() > 0 {
            pb.rel.push_page(pb.page.clone());
            pb.page.reset();
        }
        pb.reserved_slots = 0;
        pb.reserved_data = PAGE_SIZE as u16;
    }

    /// Total tuples written so far.
    #[allow(dead_code)] // used in debug assertions and tests
    pub(crate) fn tuples(&self) -> u64 {
        self.tuples
    }

    /// Flush everything and return the partition relations.
    pub(crate) fn finish(mut self) -> Vec<Relation> {
        self.parts
            .iter_mut()
            .for_each(|pb| {
                assert_eq!(pb.pending, 0, "finish with in-flight copies");
                assert_eq!(pb.waiting, NIL, "finish with waiting tuples");
                Self::flush_buf(pb)
            });
        self.parts.into_iter().map(|pb| pb.rel).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phj_memsim::NativeModel;
    use phj_storage::{RelationBuilder, Schema};

    pub(crate) fn input_rel(n: usize, size: usize) -> Relation {
        let schema = Schema::key_payload(size);
        let mut b = RelationBuilder::new(schema);
        let mut t = vec![0u8; size];
        for i in 0..n {
            t[..4].copy_from_slice(&(i as u32).to_le_bytes());
            b.push(&t);
        }
        b.finish()
    }

    fn check_partitioning(input: &Relation, parts: &[Relation]) {
        // Every tuple lands in the partition its hash prescribes, with the
        // hash stashed; the multiset of tuples is preserved.
        let total: usize = parts.iter().map(|r| r.num_tuples()).sum();
        assert_eq!(total, input.num_tuples());
        for (p, rel) in parts.iter().enumerate() {
            for (_, t, h) in rel.iter() {
                let expect = hash_key(key_bytes_of(input.schema(), t));
                assert_eq!(h, expect, "stashed hash");
                assert_eq!(partition_of(h, parts.len()), p, "placement");
            }
        }
        let mut a = input.to_tuple_vec();
        let mut b: Vec<Vec<u8>> =
            parts.iter().flat_map(|r| r.to_tuple_vec()).collect();
        a.sort();
        b.sort();
        assert_eq!(a, b, "tuple multiset preserved");
    }

    #[test]
    fn baseline_partitions_correctly() {
        let input = input_rel(5000, 100);
        let mut mem = NativeModel;
        let parts = partition_relation(&mut mem, PartitionScheme::Baseline, &input, 13, false);
        assert_eq!(parts.len(), 13);
        check_partitioning(&input, &parts);
    }

    #[test]
    fn simple_matches_baseline() {
        let input = input_rel(3000, 64);
        let mut mem = NativeModel;
        let a = partition_relation(&mut mem, PartitionScheme::Baseline, &input, 7, false);
        let b = partition_relation(&mut mem, PartitionScheme::Simple, &input, 7, false);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.to_tuple_vec(), y.to_tuple_vec());
        }
    }

    #[test]
    fn combined_picks_by_partition_count() {
        let input = input_rel(2000, 100);
        let mut mem = NativeModel;
        let scheme = PartitionScheme::combined_default();
        for nparts in [3, 300] {
            let parts = partition_relation(&mut mem, scheme, &input, nparts, false);
            check_partitioning(&input, &parts);
        }
    }

    #[test]
    fn single_partition_degenerate() {
        let input = input_rel(100, 100);
        let mut mem = NativeModel;
        let parts = partition_relation(&mut mem, PartitionScheme::Baseline, &input, 1, false);
        assert_eq!(parts.len(), 1);
        assert_eq!(parts[0].num_tuples(), 100);
    }

    #[test]
    fn reservation_protocol_addresses_are_exact() {
        let input = input_rel(1, 40);
        let mut out = OutputBuffers::new(&input, 2);
        let mut mem = NativeModel;
        let r1 = out.try_reserve(0, 40).unwrap();
        let r2 = out.try_reserve(0, 40).unwrap();
        assert_eq!(r1.0 - 40, r2.0, "data grows downward");
        assert_eq!(r2.1 - 8, r1.1, "slots grow upward");
        let t = vec![9u8; 40];
        out.commit(&mut mem, 0, &t, 1, r1);
        out.commit(&mut mem, 0, &t, 2, r2);
        assert_eq!(out.pending(0), 0);
        assert_eq!(out.tuples(), 2);
        let rels = out.finish();
        assert_eq!(rels[0].num_tuples(), 2);
        assert_eq!(rels[1].num_tuples(), 0);
    }

    #[test]
    fn reservation_fails_when_page_reserved_full() {
        let input = input_rel(1, 2000);
        let mut out = OutputBuffers::new(&input, 1);
        let mut n = 0;
        while out.try_reserve(0, 2000).is_some() {
            n += 1;
        }
        // 8184 / 2008 = 4 reservations per 8 KB page.
        assert_eq!(n, 4);
    }

    #[test]
    #[should_panic(expected = "flush with in-flight")]
    fn flush_with_pending_panics() {
        let input = input_rel(1, 16);
        let mut out = OutputBuffers::new(&input, 1);
        out.try_reserve(0, 16).unwrap();
        out.flush(0);
    }
}
