//! Group prefetching for the partition phase.
//!
//! `k = 1`: the single dependent reference of a tuple is its output-buffer
//! location, whose exact addresses are known at stage 0 via the
//! reservation protocol. A buffer-full event is the phase's read-write
//! conflict (§6): the tuple is deferred to the group boundary, where all
//! in-flight copies have committed and the buffer can be written out
//! safely — "in group prefetching, we wait until the end of the loop body
//! to write out the buffer and process the second tuple."

use phj_memsim::MemoryModel;
use phj_storage::Relation;

use crate::cost;
use crate::hash::partition_of;
use crate::join::Scan;

use super::{phase_hash, OutputBuffers};

struct Slot {
    pi: usize,
    slot: u16,
    hash: u32,
    p: usize,
    reserved: Option<(usize, usize)>,
}

/// Run the group-prefetching partition loop.
pub(crate) fn run<M: MemoryModel>(
    mem: &mut M,
    input: &Relation,
    pages: std::ops::Range<usize>,
    out: &mut OutputBuffers,
    g: usize,
    use_stored_hash: bool,
) {
    let g = g.max(2);
    let mut slots: Vec<Slot> = (0..g)
        .map(|_| Slot { pi: 0, slot: 0, hash: 0, p: 0, reserved: None })
        .collect();
    let mut delayed: Vec<usize> = Vec::new();
    let mut scan = Scan::range(input, true, pages);
    let mut batch = 0u64;
    loop {
        // Stage 0: hash, partition number, reserve + prefetch the output
        // location.
        let mut n = 0usize;
        delayed.clear();
        for (i, s) in slots.iter_mut().enumerate().take(g) {
            let Some((pi, slot)) = scan.next(mem) else { break };
            let t = input.page(pi).tuple(slot);
            mem.busy(cost::code0_cost(use_stored_hash) + cost::STAGE_BOOKKEEPING);
            s.pi = pi;
            s.slot = slot;
            s.hash = phase_hash(input, pi, slot, use_stored_hash);
            s.p = partition_of(s.hash, out.num_partitions());
            s.reserved = out.try_reserve(s.p, t.len());
            match s.reserved {
                Some((data_addr, slot_addr)) => {
                    mem.prefetch(data_addr, t.len());
                    mem.prefetch(slot_addr, 8);
                }
                None => {
                    // Buffer full: defer to the group boundary.
                    mem.other(cost::BRANCH_MISS);
                    delayed.push(i);
                }
            }
            n += 1;
        }
        if n == 0 {
            break;
        }
        // Stage 1: copy reserved tuples into their output buffers.
        for s in slots.iter_mut().take(n) {
            mem.busy(cost::STAGE_BOOKKEEPING);
            if let Some(addrs) = s.reserved.take() {
                let t = input.page(s.pi).tuple(s.slot);
                out.commit(mem, s.p, t, s.hash, addrs);
            }
        }
        // Group boundary: all copies committed; write out full buffers and
        // process the deferred tuples without prefetching.
        for &i in &delayed {
            let s = &slots[i];
            let t = input.page(s.pi).tuple(s.slot);
            out.append_direct(mem, s.p, t, s.hash);
        }
        // Host-side batch mark (flight recorder full mode only; never a
        // simulated-cycle cost).
        phj_flightrec::event_full(phj_flightrec::EventKind::Batch, 0, batch, g as u64);
        batch += 1;
        if n < g {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::{partition_relation, PartitionScheme};
    use phj_memsim::{NativeModel, SimEngine};
    use phj_storage::{Relation, RelationBuilder, Schema};

    fn input_rel(n: usize, size: usize) -> Relation {
        let schema = Schema::key_payload(size);
        let mut b = RelationBuilder::new(schema);
        let mut t = vec![0u8; size];
        for i in 0..n {
            t[..4].copy_from_slice(&(i as u32).to_le_bytes());
            b.push(&t);
        }
        b.finish()
    }

    fn tuple_multisets(parts: &[Relation]) -> Vec<Vec<Vec<u8>>> {
        parts
            .iter()
            .map(|r| {
                let mut v = r.to_tuple_vec();
                v.sort();
                v
            })
            .collect()
    }

    #[test]
    fn group_matches_baseline_partitioning() {
        let input = input_rel(4000, 100);
        let mut mem = NativeModel;
        let base = partition_relation(&mut mem, PartitionScheme::Baseline, &input, 11, false);
        for g in [2, 5, 12, 40] {
            let got =
                partition_relation(&mut mem, PartitionScheme::Group { g }, &input, 11, false);
            assert_eq!(tuple_multisets(&got), tuple_multisets(&base), "G={g}");
        }
    }

    #[test]
    fn group_single_partition_exercises_conflicts() {
        // One partition: every page-full event defers tuples within the
        // group (heaviest possible conflict pressure).
        let input = input_rel(2000, 100);
        let mut mem = NativeModel;
        let base = partition_relation(&mut mem, PartitionScheme::Baseline, &input, 1, false);
        let got = partition_relation(&mut mem, PartitionScheme::Group { g: 16 }, &input, 1, false);
        assert_eq!(tuple_multisets(&got), tuple_multisets(&base));
        assert_eq!(got[0].num_tuples(), 2000);
    }

    #[test]
    fn group_beats_baseline_with_many_partitions_in_sim() {
        // 400 partitions blow out the 1 MB L2 (Fig 14 right region).
        let input = input_rel(20_000, 100);
        let time = |scheme| {
            let mut mem = SimEngine::paper();
            let parts = partition_relation(&mut mem, scheme, &input, 400, false);
            assert_eq!(
                parts.iter().map(|r| r.num_tuples()).sum::<usize>(),
                20_000
            );
            mem.breakdown().total()
        };
        let base = time(PartitionScheme::Baseline);
        let grp = time(PartitionScheme::Group { g: 12 });
        assert!(grp < base, "group {grp} vs baseline {base}");
    }
}
