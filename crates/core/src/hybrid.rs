//! Hybrid hash join with group prefetching.
//!
//! §2 of the paper: "many refinements of \[GRACE\] have been proposed for
//! the sake of avoiding I/O by keeping as many intermediate partitions in
//! memory as possible [10, 16, 23, 27, 29]. All of these hash join
//! algorithms, however, share two common building blocks: (1)
//! partitioning and (2) joining with in-memory hash tables. [...] our
//! techniques should be directly applicable to the other hash join
//! algorithms." This module demonstrates that claim on the classic
//! *hybrid* hash join: partition 0 is never written out — its build
//! tuples go straight into an in-memory hash table during the build-side
//! partition pass, and its probe tuples are joined on the fly during the
//! probe-side pass.
//!
//! The interesting part is the **mixed code paths inside one loop**: a
//! tuple either takes the hash-table path (`k = 2` for insert, `k = 3`
//! for probe) or the output-buffer path (`k = 1`). That is precisely the
//! multiple-code-path situation §4.4 describes — per-tuple state records
//! the path, and each stage dispatches on it. Both conflict protocols
//! coexist: busy flags on hash buckets, deferred tuples on full output
//! buffers, both resolved at the group boundary.

use phj_memsim::{MemoryModel, RegionKind};
use phj_obs::{self as obs, Recorder};
use phj_storage::Relation;

use crate::cost;
use crate::hash::partition_of;
use crate::join::{self, JoinParams, JoinScheme, Scan};
use crate::partition::{OutputBuffers, PartitionScheme};
use crate::plan;
use crate::profile;
use crate::sink::JoinSink;
use crate::table::{BucketHeader, HashCell, HashTable, InsertStep};

/// Hybrid hash join configuration.
#[derive(Debug, Clone, Copy)]
pub struct HybridConfig {
    /// Memory for the join phase; also bounds partition 0 + its table.
    pub mem_budget: usize,
    /// Group size for the fused partition/build and partition/probe
    /// passes. The fused passes use group prefetching: their two
    /// conflict kinds (busy buckets, full output buffers) both resolve
    /// naturally at the group boundary, which a software pipeline lacks
    /// (§5.4).
    pub g: usize,
    /// Join scheme for the spilled partition pairs (any in-memory
    /// scheme).
    pub spill_join: JoinScheme,
}

impl Default for HybridConfig {
    fn default() -> Self {
        HybridConfig {
            mem_budget: 50 * 1024 * 1024,
            g: 16,
            spill_join: JoinScheme::Group { g: 16 },
        }
    }
}

/// Per-tuple state of the fused build pass.
#[derive(Clone, Copy)]
enum BuildPath {
    /// Partition 0: overflow cell reserved, write in stage 2.
    TableWrite(u32),
    /// Partition 0: insert finished inline (or not started).
    Done,
    /// Partition 0: bucket busy — resolve at group boundary.
    TableDelayed,
    /// Spill partition: output location reserved, copy in stage 2.
    Spill(usize, (usize, usize)),
    /// Spill partition: buffer full — resolve at group boundary.
    SpillDelayed(usize),
}

struct BuildSlot {
    pi: usize,
    slot: u16,
    cell: HashCell,
    bucket: usize,
    path: BuildPath,
}

/// Per-tuple state of the fused probe pass.
enum ProbePath {
    /// Partition 0: probing; header copied, candidates accumulate.
    Probe(BucketHeader, Vec<HashCell>),
    /// Spill partition: output location reserved.
    Spill(usize, (usize, usize)),
    /// Spill partition: buffer full — resolve at group boundary.
    SpillDelayed(usize),
    /// Nothing left to do.
    Done,
}

struct ProbeSlot {
    pi: usize,
    slot: u16,
    hash: u32,
    bucket: usize,
    path: ProbePath,
}

/// Run the hybrid hash join: returns the number of partitions used
/// (including the in-memory partition 0).
pub fn hybrid_join<M: MemoryModel, S: JoinSink>(
    mem: &mut M,
    cfg: &HybridConfig,
    build: &Relation,
    probe: &Relation,
    sink: &mut S,
) -> usize {
    hybrid_join_rec(mem, cfg, build, probe, sink, None)
}

/// [`hybrid_join`] with an optional span recorder: the fused
/// partition+build pass, the fused partition+probe pass, and each spilled
/// pair get their own spans under a `"hybrid_join"` root.
pub fn hybrid_join_rec<M: MemoryModel, S: JoinSink>(
    mem: &mut M,
    cfg: &HybridConfig,
    build: &Relation,
    probe: &Relation,
    sink: &mut S,
    mut rec: Option<&mut Recorder>,
) -> usize {
    let p = plan::num_partitions(build.size_bytes(), cfg.mem_budget).max(1);
    let g = cfg.g.max(2);
    let whole = obs::span_begin(&mut rec, mem, "hybrid_join");
    obs::span_meta(&mut rec, "partitions", p);
    obs::span_meta(&mut rec, "g", g);

    // ---- Pass 1: partition the build side, building partition 0's hash
    // table on the fly. ----
    let pass1 = obs::span_begin(&mut rec, mem, "hybrid_build_pass");
    obs::span_meta(&mut rec, "tuples", build.num_tuples());
    let expected_p0 = build.num_tuples() / p + 1;
    let buckets = plan::hash_table_buckets(expected_p0.max(1), p);
    let mut table = HashTable::new(buckets, expected_p0 * 2 + 16);
    let mut build_out = OutputBuffers::new(build, p);
    profile::register_table(mem, &table);
    profile::register_relation(mem, RegionKind::BuildTuples, build);
    build_out.register_regions(mem);
    {
        let mut slots: Vec<BuildSlot> = (0..g)
            .map(|_| BuildSlot {
                pi: 0,
                slot: 0,
                cell: HashCell::new(0, 0, 0),
                bucket: 0,
                path: BuildPath::Done,
            })
            .collect();
        let mut delayed: Vec<usize> = Vec::new();
        let mut scan = Scan::new(build, true);
        loop {
            // Stage 0: hash; dispatch on partition; prefetch the path's
            // next reference.
            let mut n = 0usize;
            delayed.clear();
            for s in slots.iter_mut().take(g) {
                let Some((pi, slot)) = scan.next(mem) else { break };
                mem.busy(cost::code0_cost(false) + cost::STAGE_BOOKKEEPING);
                let hash = crate::partition::phase_hash(build, pi, slot, false);
                let t = build.page(pi).tuple(slot);
                s.pi = pi;
                s.slot = slot;
                s.cell = HashCell::new(hash, t.as_ptr() as usize, t.len() as u32);
                let part = partition_of(hash, p);
                if part == 0 {
                    s.bucket = table.bucket_of(hash);
                    s.path = BuildPath::Done;
                    mem.prefetch(table.header_addr(s.bucket), HashTable::header_len());
                } else {
                    match build_out.try_reserve(part, t.len()) {
                        Some(addrs) => {
                            mem.prefetch(addrs.0, t.len());
                            mem.prefetch(addrs.1, 8);
                            s.path = BuildPath::Spill(part, addrs);
                        }
                        None => {
                            mem.other(cost::BRANCH_MISS);
                            s.path = BuildPath::SpillDelayed(part);
                        }
                    }
                }
                n += 1;
            }
            if n == 0 {
                break;
            }
            // Stage 1: table path examines headers; spill path copies.
            for (i, s) in slots.iter_mut().enumerate().take(n) {
                mem.busy(cost::STAGE_BOOKKEEPING);
                match s.path {
                    BuildPath::Done => {
                        mem.visit(table.header_addr(s.bucket), HashTable::header_len());
                        mem.busy(cost::HEADER_CHECK);
                        let mut grown = 0usize;
                        match table.begin_insert(s.bucket, s.cell, i as u32, &mut grown) {
                            InsertStep::DoneInline => {
                                mem.write(table.header_addr(s.bucket), HashTable::header_len());
                                mem.busy(cost::CELL_WRITE);
                            }
                            InsertStep::WriteCell(idx) => {
                                if grown > 0 {
                                    let (addr, len) =
                                        table.array_span(s.bucket).expect("array");
                                    mem.visit(addr, len.min(grown));
                                    mem.busy(cost::copy_cost(grown));
                                }
                                mem.prefetch(table.arena().cell_addr(idx), 16);
                                s.path = BuildPath::TableWrite(idx);
                            }
                            InsertStep::Busy(_) => {
                                mem.other(cost::BRANCH_MISS);
                                s.path = BuildPath::TableDelayed;
                                delayed.push(i);
                            }
                        }
                    }
                    BuildPath::Spill(part, addrs) => {
                        let t = build.page(s.pi).tuple(s.slot);
                        build_out.commit(mem, part, t, s.cell.hash, addrs);
                        s.path = BuildPath::Done;
                    }
                    BuildPath::SpillDelayed(_) => delayed.push(i),
                    BuildPath::TableWrite(_) | BuildPath::TableDelayed => unreachable!(),
                }
            }
            // Stage 2: land reserved table writes.
            for s in slots.iter_mut().take(n) {
                mem.busy(cost::STAGE_BOOKKEEPING);
                if let BuildPath::TableWrite(idx) = s.path {
                    mem.write(table.arena().cell_addr(idx), 16);
                    mem.busy(cost::CELL_WRITE);
                    table.finish_overflow_insert(s.bucket, idx, s.cell);
                    s.path = BuildPath::Done;
                }
            }
            // Group boundary: resolve both kinds of conflicts warm.
            for &i in &delayed {
                let s = &slots[i];
                match s.path {
                    BuildPath::TableDelayed => {
                        join::baseline::insert_one(mem, &mut table, s.cell);
                    }
                    BuildPath::SpillDelayed(part) => {
                        let t = build.page(s.pi).tuple(s.slot);
                        build_out.append_direct(mem, part, t, s.cell.hash);
                    }
                    _ => unreachable!("only delayed paths queued"),
                }
                slots[i].path = BuildPath::Done;
            }
            if n < g {
                break;
            }
        }
    }
    let build_parts = build_out.finish();
    table.assert_quiescent();
    obs::span_end(&mut rec, mem, pass1);
    mem.region_clear(RegionKind::PartitionBuffers);

    // ---- Pass 2: partition the probe side, probing partition 0 on the
    // fly. ----
    let pass2 = obs::span_begin(&mut rec, mem, "hybrid_probe_pass");
    obs::span_meta(&mut rec, "tuples", probe.num_tuples());
    let mut probe_out = OutputBuffers::new(probe, p);
    profile::register_relation(mem, RegionKind::ProbeTuples, probe);
    probe_out.register_regions(mem);
    {
        let mut slots: Vec<ProbeSlot> = (0..g)
            .map(|_| ProbeSlot {
                pi: 0,
                slot: 0,
                hash: 0,
                bucket: 0,
                path: ProbePath::Done,
            })
            .collect();
        let mut delayed: Vec<usize> = Vec::new();
        let empty_header = BucketHeader {
            inline_cell: HashCell::new(0, 0, 0),
            count: 0,
            busy: 0,
            array: u32::MAX,
            cap: 0,
        };
        let mut scan = Scan::new(probe, true);
        loop {
            let mut n = 0usize;
            delayed.clear();
            // Stage 0.
            for s in slots.iter_mut().take(g) {
                let Some((pi, slot)) = scan.next(mem) else { break };
                mem.busy(cost::code0_cost(false) + cost::STAGE_BOOKKEEPING);
                let hash = crate::partition::phase_hash(probe, pi, slot, false);
                let t = probe.page(pi).tuple(slot);
                s.pi = pi;
                s.slot = slot;
                s.hash = hash;
                let part = partition_of(hash, p);
                if part == 0 {
                    s.bucket = table.bucket_of(hash);
                    s.path = ProbePath::Probe(empty_header, Vec::new());
                    mem.prefetch(table.header_addr(s.bucket), HashTable::header_len());
                } else {
                    match probe_out.try_reserve(part, t.len()) {
                        Some(addrs) => {
                            mem.prefetch(addrs.0, t.len());
                            mem.prefetch(addrs.1, 8);
                            s.path = ProbePath::Spill(part, addrs);
                        }
                        None => {
                            mem.other(cost::BRANCH_MISS);
                            s.path = ProbePath::SpillDelayed(part);
                        }
                    }
                }
                n += 1;
            }
            if n == 0 {
                break;
            }
            // Stage 1: probe path visits headers; spill path copies.
            for (i, s) in slots.iter_mut().enumerate().take(n) {
                mem.busy(cost::STAGE_BOOKKEEPING);
                match &mut s.path {
                    ProbePath::Probe(header, cands) => {
                        mem.visit(table.header_addr(s.bucket), HashTable::header_len());
                        mem.busy(cost::HEADER_CHECK);
                        *header = *table.header(s.bucket);
                        cands.clear();
                        if header.count > 0 {
                            if header.inline_cell.hash == s.hash {
                                mem.other(cost::BRANCH_MISS);
                                mem.prefetch(
                                    header.inline_cell.tuple_addr(),
                                    header.inline_cell.tuple_len(),
                                );
                                cands.push(header.inline_cell);
                            }
                            if header.count > 1 {
                                let (addr, len) =
                                    table.array_span(s.bucket).expect("array");
                                mem.prefetch(addr, len);
                            }
                        }
                    }
                    ProbePath::Spill(part, addrs) => {
                        let (part, addrs) = (*part, *addrs);
                        let t = probe.page(s.pi).tuple(s.slot);
                        probe_out.commit(mem, part, t, s.hash, addrs);
                        s.path = ProbePath::Done;
                    }
                    ProbePath::SpillDelayed(_) => delayed.push(i),
                    ProbePath::Done => {}
                }
            }
            // Stage 2: scan cell arrays, prefetch matched build tuples.
            for s in slots.iter_mut().take(n) {
                mem.busy(cost::STAGE_BOOKKEEPING);
                if let ProbePath::Probe(header, cands) = &mut s.path {
                    if header.count > 1 {
                        let (addr, len) = table.array_span(s.bucket).expect("array");
                        mem.visit(addr, len);
                        mem.busy(cost::CELL_CHECK * (header.count as u64 - 1));
                        for c in table.overflow_cells(s.bucket) {
                            if c.hash == s.hash {
                                mem.other(cost::BRANCH_MISS);
                                mem.prefetch(c.tuple_addr(), c.tuple_len());
                                cands.push(*c);
                            }
                        }
                    }
                }
            }
            // Stage 3: visit matched build tuples, emit output.
            for s in slots.iter_mut().take(n) {
                mem.busy(cost::STAGE_BOOKKEEPING);
                if let ProbePath::Probe(_, cands) = &s.path {
                    if !cands.is_empty() {
                        let pt = probe.page(s.pi).tuple(s.slot);
                        for c in cands {
                            mem.visit(c.tuple_addr(), c.tuple_len());
                            mem.busy(cost::KEY_COMPARE);
                            // SAFETY: cells point into `build`, which is
                            // borrowed for the whole join.
                            let bt = unsafe { c.tuple_bytes() };
                            if join::keys_equal(build, probe, bt, pt) {
                                sink.emit(mem, bt, pt);
                            }
                        }
                    }
                    s.path = ProbePath::Done;
                }
            }
            // Group boundary: flush-conflicted spills.
            for &i in &delayed {
                let s = &slots[i];
                if let ProbePath::SpillDelayed(part) = s.path {
                    let t = probe.page(s.pi).tuple(s.slot);
                    probe_out.append_direct(mem, part, t, s.hash);
                }
                slots[i].path = ProbePath::Done;
            }
            if n < g {
                break;
            }
        }
    }
    let probe_parts = probe_out.finish();
    obs::span_end(&mut rec, mem, pass2);
    mem.region_clear(RegionKind::PartitionBuffers);
    profile::clear_join_regions(mem);

    // ---- Join the spilled pairs (partitions 1..p) with the configured
    // in-memory scheme. ----
    let params = JoinParams { scheme: cfg.spill_join, use_stored_hash: true };
    for part in 1..p {
        let span = obs::span_begin(&mut rec, mem, "pair");
        obs::span_meta(&mut rec, "index", part);
        join::join_pair_rec(
            mem,
            &params,
            &build_parts[part],
            &probe_parts[part],
            p,
            sink,
            rec.as_deref_mut(),
        );
        obs::span_end(&mut rec, mem, span);
    }
    obs::span_end(&mut rec, mem, whole);
    p
}

/// GRACE with the same parameters, for comparisons: partition both
/// relations fully, then join every pair.
pub fn grace_equivalent<M: MemoryModel, S: JoinSink>(
    mem: &mut M,
    cfg: &HybridConfig,
    build: &Relation,
    probe: &Relation,
    sink: &mut S,
) -> usize {
    let grace = crate::grace::GraceConfig {
        mem_budget: cfg.mem_budget,
        partition_scheme: PartitionScheme::Group { g: cfg.g },
        join_scheme: JoinScheme::Group { g: cfg.g },
        ..Default::default()
    };
    crate::grace::grace_join_with_sink(mem, &grace, build, probe, sink)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::CountSink;
    use phj_memsim::{NativeModel, SimEngine};
    use phj_workload::JoinSpec;

    fn spec(n: usize) -> JoinSpec {
        JoinSpec {
            build_tuples: n,
            tuple_size: 40,
            matches_per_build: 2,
            pct_match: 75,
            seed: 321,
        }
    }

    #[test]
    fn hybrid_matches_grace() {
        let gen = spec(4000).generate();
        let cfg = HybridConfig { mem_budget: 64 * 1024, g: 16, ..Default::default() };
        let mut mem = NativeModel;
        let mut hybrid_sink = CountSink::new();
        let p = hybrid_join(&mut mem, &cfg, &gen.build, &gen.probe, &mut hybrid_sink);
        assert!(p > 1, "expected spill partitions, got {p}");
        assert_eq!(hybrid_sink.matches(), gen.expected_matches);
        let mut grace_sink = CountSink::new();
        grace_equivalent(&mut mem, &cfg, &gen.build, &gen.probe, &mut grace_sink);
        assert_eq!(hybrid_sink, grace_sink);
    }

    #[test]
    fn hybrid_all_in_memory() {
        // Budget big enough that p == 1: everything joins on the fly.
        let gen = spec(1000).generate();
        let cfg = HybridConfig { mem_budget: 1 << 30, g: 8, ..Default::default() };
        let mut mem = NativeModel;
        let mut sink = CountSink::new();
        let p = hybrid_join(&mut mem, &cfg, &gen.build, &gen.probe, &mut sink);
        assert_eq!(p, 1);
        assert_eq!(sink.matches(), gen.expected_matches);
    }

    #[test]
    fn hybrid_heavy_duplicates() {
        use phj_storage::{RelationBuilder, Schema};
        let schema = Schema::key_payload(24);
        let mut b = RelationBuilder::new(schema.clone());
        let mut pr = RelationBuilder::new(schema);
        let mut t = [0u8; 24];
        for _ in 0..300 {
            t[..4].copy_from_slice(&5u32.to_le_bytes());
            b.push(&t);
            pr.push(&t);
            t[..4].copy_from_slice(&9u32.to_le_bytes());
            pr.push(&t);
        }
        let (build, probe) = (b.finish(), pr.finish());
        let cfg = HybridConfig { mem_budget: 8 * 1024, g: 4, ..Default::default() };
        let mut mem = NativeModel;
        let mut sink = CountSink::new();
        hybrid_join(&mut mem, &cfg, &build, &probe, &mut sink);
        assert_eq!(sink.matches(), 300 * 300);
    }

    #[test]
    fn hybrid_with_swp_spill_join_matches() {
        let gen = spec(3000).generate();
        let cfg = HybridConfig {
            mem_budget: 64 * 1024,
            g: 8,
            spill_join: crate::join::JoinScheme::Swp { d: 2 },
        };
        let mut mem = NativeModel;
        let mut sink = CountSink::new();
        hybrid_join(&mut mem, &cfg, &gen.build, &gen.probe, &mut sink);
        assert_eq!(sink.matches(), gen.expected_matches);
    }

    #[test]
    fn hybrid_saves_cycles_over_grace_in_sim() {
        // Partition 0 skips one write+read round trip per tuple, so the
        // hybrid spends fewer CPU cycles end to end.
        let gen = spec(20_000).generate();
        let cfg = HybridConfig { mem_budget: 256 * 1024, g: 16, ..Default::default() };
        let run = |hybrid: bool| {
            let mut mem = SimEngine::paper();
            let mut sink = CountSink::new();
            if hybrid {
                hybrid_join(&mut mem, &cfg, &gen.build, &gen.probe, &mut sink);
            } else {
                grace_equivalent(&mut mem, &cfg, &gen.build, &gen.probe, &mut sink);
            }
            assert_eq!(sink.matches(), gen.expected_matches);
            mem.breakdown().total()
        };
        let grace = run(false);
        let hybrid = run(true);
        assert!(hybrid < grace, "hybrid {hybrid} vs grace {grace}");
    }
}
