//! The GRACE hash join driver: I/O partition phase + join phase.
//!
//! "The GRACE hash join algorithm begins by partitioning the two joining
//! relations such that each build partition and its hash table can fit
//! within memory; pairs of build and probe partitions are then joined
//! separately as in the simple algorithm." (§1) The paper uses GRACE as
//! the baseline because its two phases — (1) partitioning and (2) joining
//! with in-memory hash tables — are the common building blocks of all
//! hash join variants (§2).

use phj_memsim::MemoryModel;
use phj_obs::{self as obs, Recorder};
use phj_storage::Relation;

use crate::join::{join_pair_rec, JoinParams, JoinScheme};
use crate::partition::{partition_relation_rec, PartitionScheme};
use crate::plan;
use crate::sink::{JoinSink, OutputWriter};

/// End-to-end GRACE configuration.
#[derive(Debug, Clone, Copy)]
pub struct GraceConfig {
    /// Join-phase memory budget: each build partition (and its hash
    /// table) must fit here. The paper's experiments use 50 MB (§7.1).
    pub mem_budget: usize,
    /// Partition-phase algorithm.
    pub partition_scheme: PartitionScheme,
    /// Join-phase algorithm.
    pub join_scheme: JoinScheme,
    /// Maximum concurrently active partitions per pass — "storage
    /// managers can handle only hundreds of active partitions per hash
    /// join" (§1.1, citing the IBM DB2 experience). Relations too large
    /// for one pass are partitioned **recursively**: each overweight
    /// partition pair is re-partitioned (reusing its stashed hash codes)
    /// in an additional pass, exactly the "additional passes through the
    /// data" the paper describes.
    pub max_active_partitions: usize,
}

impl Default for GraceConfig {
    fn default() -> Self {
        GraceConfig {
            mem_budget: 50 * 1024 * 1024,
            partition_scheme: PartitionScheme::combined_default(),
            join_scheme: JoinScheme::Group { g: 16 },
            max_active_partitions: 1000,
        }
    }
}

/// Summary of a GRACE run.
pub struct GraceResult {
    /// The materialized join output.
    pub output: Relation,
    /// Number of I/O partitions used.
    pub num_partitions: usize,
}

/// Run the full GRACE hash join, materializing the output.
pub fn grace_join<M: MemoryModel>(
    mem: &mut M,
    cfg: &GraceConfig,
    build: &Relation,
    probe: &Relation,
) -> GraceResult {
    let mut sink = OutputWriter::new(build.schema().clone(), probe.schema().clone());
    let num_partitions = grace_join_with_sink(mem, cfg, build, probe, &mut sink);
    GraceResult { output: sink.finish(), num_partitions }
}

/// Run the full GRACE hash join into an arbitrary sink. Returns the
/// number of first-pass I/O partitions used.
pub fn grace_join_with_sink<M: MemoryModel, S: JoinSink>(
    mem: &mut M,
    cfg: &GraceConfig,
    build: &Relation,
    probe: &Relation,
    sink: &mut S,
) -> usize {
    grace_join_with_sink_rec(mem, cfg, build, probe, sink, None)
}

/// [`grace_join_with_sink`] with an optional span recorder. The whole
/// join becomes a `"grace_join"` span; each partitioning pass records a
/// `"partition_pass"` span (two nested `"partition"` spans, one per
/// relation) and each partition pair a `"pair"` span with nested
/// `"build"`/`"probe"` spans — the shape of the paper's phase breakdowns.
pub fn grace_join_with_sink_rec<M: MemoryModel, S: JoinSink>(
    mem: &mut M,
    cfg: &GraceConfig,
    build: &Relation,
    probe: &Relation,
    sink: &mut S,
    mut rec: Option<&mut Recorder>,
) -> usize {
    let span = obs::span_begin(&mut rec, mem, "grace_join");
    obs::span_meta(&mut rec, "partition_scheme", cfg.partition_scheme.label());
    obs::span_meta(&mut rec, "join_scheme", cfg.join_scheme.label());
    let p = join_level(mem, cfg, build, probe, sink, 1, 0, false, rec.as_deref_mut());
    obs::span_end(&mut rec, mem, span);
    p
}

/// Join one partition pair produced by a `moduli`-way (product over
/// passes) partitioning, recursing into additional passes if the build
/// side still exceeds the memory budget.
///
/// This is the task a *parallel* join driver schedules per partition
/// pair: unlike [`grace_join_with_sink_rec`] it does not reset the moduli
/// to 1, so an oversized (skewed) pair re-partitions with fresh coprime
/// fan-out instead of degenerating. `index` labels the pair's `"pair"`
/// span so merged parallel reports keep per-partition skew attribution.
/// The pair's tuples must carry stashed hash codes (every
/// partition-phase output does).
#[allow(clippy::too_many_arguments)]
pub fn grace_join_pair_rec<M: MemoryModel, S: JoinSink>(
    mem: &mut M,
    cfg: &GraceConfig,
    build: &Relation,
    probe: &Relation,
    sink: &mut S,
    moduli: usize,
    index: usize,
    rec: Option<&mut Recorder>,
) -> usize {
    join_level(mem, cfg, build, probe, sink, moduli, index, true, rec)
}

/// One partitioning pass: split the pair, then join (or recurse into)
/// each sub-pair. `moduli` is the product of partition counts already
/// applied to these tuples' hash codes; `index` labels a directly-joined
/// pair's span; `use_stored` whether this level's input carries stashed
/// hash codes (true for every level but the first).
#[allow(clippy::too_many_arguments)]
fn join_level<M: MemoryModel, S: JoinSink>(
    mem: &mut M,
    cfg: &GraceConfig,
    build: &Relation,
    probe: &Relation,
    sink: &mut S,
    moduli: usize,
    index: usize,
    use_stored: bool,
    mut rec: Option<&mut Recorder>,
) -> usize {
    assert!(cfg.max_active_partitions >= 2, "need at least two partitions per pass");
    let needed = plan::num_partitions(build.size_bytes(), cfg.mem_budget);
    if needed <= 1 {
        let params = JoinParams { scheme: cfg.join_scheme, use_stored_hash: use_stored };
        let span = obs::span_begin(&mut rec, mem, "pair");
        obs::span_meta(&mut rec, "index", index);
        join_pair_rec(mem, &params, build, probe, moduli, sink, rec.as_deref_mut());
        obs::span_end(&mut rec, mem, span);
        return 1;
    }
    let p = plan::coprime_partitions(needed.min(cfg.max_active_partitions), moduli);
    let pass = obs::span_begin(&mut rec, mem, "partition_pass");
    obs::span_meta(&mut rec, "fanout", p);
    obs::span_meta(&mut rec, "moduli", moduli);
    let build_parts =
        partition_relation_rec(mem, cfg.partition_scheme, build, p, use_stored, rec.as_deref_mut());
    let probe_parts =
        partition_relation_rec(mem, cfg.partition_scheme, probe, p, use_stored, rec.as_deref_mut());
    obs::span_end(&mut rec, mem, pass);
    let params = JoinParams { scheme: cfg.join_scheme, use_stored_hash: true };
    for (i, (bp, pp)) in build_parts.iter().zip(&probe_parts).enumerate() {
        if bp.size_bytes() > cfg.mem_budget {
            // This partition still exceeds memory (cap hit, or skew):
            // take an additional pass over it (§1.1).
            join_level(mem, cfg, bp, pp, sink, moduli * p, i, true, rec.as_deref_mut());
        } else {
            let span = obs::span_begin(&mut rec, mem, "pair");
            obs::span_meta(&mut rec, "index", i);
            join_pair_rec(mem, &params, bp, pp, moduli * p, sink, rec.as_deref_mut());
            obs::span_end(&mut rec, mem, span);
        }
    }
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::CountSink;
    use phj_memsim::NativeModel;
    use phj_storage::{RelationBuilder, Schema};

    fn rel(keys: &[u32], size: usize) -> Relation {
        let schema = Schema::key_payload(size);
        let mut b = RelationBuilder::new(schema);
        let mut t = vec![0u8; size];
        for &k in keys {
            t[..4].copy_from_slice(&k.to_le_bytes());
            b.push(&t);
        }
        b.finish()
    }

    #[test]
    fn grace_multi_partition_end_to_end() {
        // Tiny memory budget forces several partitions.
        let build_keys: Vec<u32> = (0..2000).collect();
        let probe_keys: Vec<u32> = (1000..3000).collect();
        let build = rel(&build_keys, 40);
        let probe = rel(&probe_keys, 40);
        let cfg = GraceConfig {
            mem_budget: 16 * 1024,
            ..Default::default()
        };
        let mut mem = NativeModel;
        let res = grace_join(&mut mem, &cfg, &build, &probe);
        assert!(res.num_partitions > 1, "expected multiple partitions");
        assert_eq!(res.output.num_tuples(), 1000);
        // Output tuples carry build then probe fields.
        for (_, t, _) in res.output.iter() {
            assert_eq!(t.len(), 80);
            let bk = u32::from_le_bytes(t[..4].try_into().unwrap());
            let pk = u32::from_le_bytes(t[40..44].try_into().unwrap());
            assert_eq!(bk, pk);
            assert!((1000..2000).contains(&bk));
        }
    }

    #[test]
    fn recursive_partitioning_when_capped() {
        // Cap at 2 active partitions with a tiny budget: forces several
        // recursive passes, and the result must still be exact.
        let keys: Vec<u32> = (0..4000).collect();
        let build = rel(&keys, 24);
        let probe = rel(&keys, 24);
        let capped = GraceConfig {
            mem_budget: 8 * 1024,
            max_active_partitions: 2,
            ..Default::default()
        };
        let mut mem = NativeModel;
        let mut sink = CountSink::new();
        let p = grace_join_with_sink(&mut mem, &capped, &build, &probe, &mut sink);
        assert_eq!(p, 2, "first pass capped");
        assert_eq!(sink.matches(), 4000);
        // Same answer as the single-pass configuration.
        let mut single = CountSink::new();
        let uncapped = GraceConfig { mem_budget: 8 * 1024, ..Default::default() };
        grace_join_with_sink(&mut mem, &uncapped, &build, &probe, &mut single);
        assert_eq!(sink, single);
    }

    #[test]
    fn all_scheme_combinations_agree() {
        let build_keys: Vec<u32> = (0..500).collect();
        let probe_keys: Vec<u32> = (250..750).map(|k| k % 600).collect();
        let build = rel(&build_keys, 32);
        let probe = rel(&probe_keys, 32);
        let mut reference: Option<CountSink> = None;
        for ps in [
            PartitionScheme::Baseline,
            PartitionScheme::Simple,
            PartitionScheme::Group { g: 8 },
            PartitionScheme::Swp { d: 2 },
        ] {
            for js in [
                JoinScheme::Baseline,
                JoinScheme::Simple,
                JoinScheme::Group { g: 11 },
                JoinScheme::Swp { d: 1 },
            ] {
                let cfg = GraceConfig {
                    mem_budget: 8 * 1024,
                    partition_scheme: ps,
                    join_scheme: js,
                    ..Default::default()
                };
                let mut mem = NativeModel;
                let mut sink = CountSink::new();
                grace_join_with_sink(&mut mem, &cfg, &build, &probe, &mut sink);
                match &reference {
                    None => reference = Some(sink),
                    Some(r) => assert_eq!(
                        &sink,
                        r,
                        "{} + {}",
                        ps.label(),
                        js.label()
                    ),
                }
            }
        }
        assert!(reference.unwrap().matches() > 0);
    }
}
