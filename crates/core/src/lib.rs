#![warn(missing_docs)]

//! # phj — hash join with prefetching
//!
//! A from-scratch reproduction of *Improving Hash Join Performance through
//! Prefetching* (Chen, Ailamaki, Gibbons, Mowry — CMU-CS-03-157 /
//! ICDE 2004): the GRACE hash join with **group prefetching** and
//! **software-pipelined prefetching** applied to both the partition phase
//! and the join phase, plus the paper's comparison points (simple
//! prefetching and cache partitioning) and its analytic models.
//!
//! Every algorithm is generic over [`phj_memsim::MemoryModel`]: with
//! [`phj_memsim::NativeModel`] it runs on real hardware issuing real
//! `prefetcht0` instructions; with [`phj_memsim::SimModel`] the identical
//! code drives the cycle-level memory-hierarchy simulator that regenerates
//! the paper's figures.
//!
//! ```
//! use phj::{grace, JoinScheme, PartitionScheme};
//! use phj_memsim::NativeModel;
//! use phj_storage::{RelationBuilder, Schema};
//!
//! // Two tiny relations with 4-byte keys and fixed payloads.
//! let schema = Schema::key_payload(16);
//! let mut build = RelationBuilder::new(schema.clone());
//! let mut probe = RelationBuilder::new(schema.clone());
//! for k in 0u32..1000 {
//!     let mut t = [0u8; 16];
//!     t[..4].copy_from_slice(&k.to_le_bytes());
//!     build.push(&t);
//!     probe.push(&t);
//!     probe.push(&t);
//! }
//! let (build, probe) = (build.finish(), probe.finish());
//!
//! let cfg = grace::GraceConfig {
//!     mem_budget: 64 * 1024, // force several partitions
//!     partition_scheme: PartitionScheme::Group { g: 8 },
//!     join_scheme: JoinScheme::Group { g: 16 },
//!     ..Default::default()
//! };
//! let mut mem = NativeModel;
//! let result = grace::grace_join(&mut mem, &cfg, &build, &probe);
//! assert_eq!(result.output.num_tuples(), 2000);
//! ```

pub mod aggregate;
pub mod cachepart;
pub mod chained;
pub mod cost;
pub mod grace;
pub mod hash;
pub mod hybrid;
pub mod hybrid_swp;
pub mod join;
pub mod model;
pub mod partition;
pub mod plan;
pub mod profile;
pub mod sink;
pub mod table;

pub use join::JoinScheme;
pub use partition::PartitionScheme;
pub use sink::{BatchingSink, CountSink, JoinSink, OutputWriter};
pub use table::HashTable;
