//! Simple prefetching: the enhanced baseline of §7.1.
//!
//! "Simple prefetching tries straightforward ways to employ prefetching,
//! such as prefetching an entire input page after a disk read." The hash
//! table visits themselves stay un-prefetched — the dependent references
//! within a single tuple's hash table visit generate their addresses too
//! late (§3), which is why the paper measures only a 1.1–1.2× speedup for
//! this scheme and why group/software-pipelined prefetching exist.

use phj_memsim::MemoryModel;
use phj_storage::Relation;

use crate::sink::JoinSink;
use crate::table::{HashCell, HashTable};

use super::baseline::{insert_one, probe_one};
use super::{charge_code0, tuple_hash, JoinParams, Scan};

/// Build with input-page prefetching.
pub fn build<M: MemoryModel>(
    mem: &mut M,
    params: &JoinParams,
    table: &mut HashTable,
    build: &Relation,
) {
    let mut scan = Scan::new(build, true);
    while let Some((pi, slot)) = scan.next(mem) {
        charge_code0(mem, params.use_stored_hash);
        let hash = tuple_hash(build, pi, slot, params.use_stored_hash);
        let t = build.page(pi).tuple(slot);
        insert_one(mem, table, HashCell::new(hash, t.as_ptr() as usize, t.len() as u32));
    }
}

/// Probe with input-page prefetching.
pub fn probe<M: MemoryModel, S: JoinSink>(
    mem: &mut M,
    params: &JoinParams,
    table: &HashTable,
    build_rel: &Relation,
    probe_rel: &Relation,
    sink: &mut S,
) {
    let mut scan = Scan::new(probe_rel, true);
    while let Some((pi, slot)) = scan.next(mem) {
        charge_code0(mem, params.use_stored_hash);
        let hash = tuple_hash(probe_rel, pi, slot, params.use_stored_hash);
        probe_one(mem, table, build_rel, probe_rel, pi, slot, hash, sink);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::join::{join_pair, JoinParams, JoinScheme};
    use crate::sink::CountSink;
    use phj_memsim::{NativeModel, SimEngine};
    use phj_storage::{RelationBuilder, Schema};

    fn rel(keys: &[u32]) -> Relation {
        let schema = Schema::key_payload(32);
        let mut b = RelationBuilder::new(schema);
        let mut t = [0u8; 32];
        for &k in keys {
            t[..4].copy_from_slice(&k.to_le_bytes());
            b.push_hashed(&t, crate::hash::hash_key(&k.to_le_bytes()));
        }
        b.finish()
    }

    #[test]
    fn simple_matches_baseline_results() {
        let build_rel = rel(&(0..500).collect::<Vec<_>>());
        let probe_rel = rel(&(250..750).collect::<Vec<_>>());
        let mut mem = NativeModel;
        let mut s1 = CountSink::new();
        join_pair(
            &mut mem,
            &JoinParams { scheme: JoinScheme::Baseline, use_stored_hash: true },
            &build_rel,
            &probe_rel,
            1,
            &mut s1,
        );
        let mut s2 = CountSink::new();
        join_pair(
            &mut mem,
            &JoinParams { scheme: JoinScheme::Simple, use_stored_hash: true },
            &build_rel,
            &probe_rel,
            1,
            &mut s2,
        );
        assert_eq!(s1, s2);
        assert_eq!(s1.matches(), 250);
    }

    #[test]
    fn simple_prefetch_reduces_input_stalls_in_sim() {
        let build_rel = rel(&(0..2000).collect::<Vec<_>>());
        let probe_rel = rel(&(0..2000).collect::<Vec<_>>());
        let run = |scheme| {
            let mut mem = SimEngine::paper();
            let mut sink = CountSink::new();
            join_pair(
                &mut mem,
                &JoinParams { scheme, use_stored_hash: true },
                &build_rel,
                &probe_rel,
                1,
                &mut sink,
            );
            (mem.breakdown().total(), sink.matches())
        };
        let (t_base, m1) = run(JoinScheme::Baseline);
        let (t_simple, m2) = run(JoinScheme::Simple);
        assert_eq!(m1, m2);
        assert!(
            t_simple < t_base,
            "simple ({t_simple}) should beat baseline ({t_base})"
        );
    }
}
