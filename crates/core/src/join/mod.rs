//! The join phase: hash table build + probe in four flavours.
//!
//! * [`baseline`] — the GRACE join loop, no prefetching (§2);
//! * [`simple`] — "simple prefetching": prefetch each input page after its
//!   disk read (§7.1's enhanced baseline);
//! * [`group`] — group prefetching (§4): process `G` tuples per outer
//!   iteration, one dependent-reference stage at a time, prefetching the
//!   next stage's addresses; read-write conflicts during build are handled
//!   with busy flags and a delayed-tuple list resolved at the group
//!   boundary (§4.4);
//! * [`swp`] — software-pipelined prefetching (§5): stage `i` of element
//!   `j` runs `D` iterations after stage `i-1`, with a circular state
//!   array and per-bucket waiting queues for build conflicts (§5.3).
//!
//! All variants share [`join_pair`], which builds the table on the build
//! partition and probes it with the probe partition — the per-partition
//! step of the GRACE algorithm's second phase.

pub mod baseline;
pub mod group;
pub mod simple;
pub mod swp;

pub use group::GroupProbe;

use phj_memsim::{MemoryModel, RegionKind};
use phj_obs::{self as obs, Recorder};
use phj_storage::{tuple::key_bytes_of, Relation, PAGE_SIZE};

use crate::cost;
use crate::hash::hash_key;
use crate::plan;
use crate::profile;
use crate::sink::JoinSink;
use crate::table::HashTable;

/// Which join-phase algorithm to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinScheme {
    /// GRACE baseline: no prefetching.
    Baseline,
    /// Prefetch each input page after reading it.
    Simple,
    /// Group prefetching with group size `g`.
    Group {
        /// Group size `G` (Theorem 1 predicts the minimum; see
        /// [`crate::model::min_group_size`]).
        g: usize,
    },
    /// Software-pipelined prefetching with prefetch distance `d`.
    Swp {
        /// Prefetch distance `D` (see
        /// [`crate::model::min_prefetch_distance`]).
        d: usize,
    },
}

impl JoinScheme {
    /// Short label for reports.
    pub fn label(&self) -> String {
        match self {
            JoinScheme::Baseline => "baseline".into(),
            JoinScheme::Simple => "simple".into(),
            JoinScheme::Group { g } => format!("group(G={g})"),
            JoinScheme::Swp { d } => format!("swp(D={d})"),
        }
    }
}

/// Join-phase knobs shared by all schemes.
#[derive(Debug, Clone, Copy)]
pub struct JoinParams {
    /// The algorithm.
    pub scheme: JoinScheme,
    /// Reuse the hash codes stashed in the partition pages' slot areas
    /// (§7.1 optimization) instead of rehashing the join key. Must be
    /// false for relations that were not produced by our partition phase.
    pub use_stored_hash: bool,
}

impl Default for JoinParams {
    fn default() -> Self {
        JoinParams { scheme: JoinScheme::Group { g: 16 }, use_stored_hash: true }
    }
}

/// Build the hash table for a build partition and probe it with the probe
/// partition, sending matches to `sink`. This is the unit of work the
/// join phase performs per partition pair.
///
/// ```
/// use phj::join::{join_pair, JoinParams, JoinScheme};
/// use phj::sink::{CountSink, JoinSink};
/// use phj_memsim::NativeModel;
/// use phj_workload::JoinSpec;
///
/// let gen = JoinSpec {
///     build_tuples: 500,
///     tuple_size: 20,
///     matches_per_build: 2,
///     pct_match: 100,
///     seed: 1,
/// }
/// .generate();
/// let mut sink = CountSink::new();
/// join_pair(
///     &mut NativeModel,
///     &JoinParams { scheme: JoinScheme::Group { g: 16 }, use_stored_hash: true },
///     &gen.build,
///     &gen.probe,
///     1,
///     &mut sink,
/// );
/// assert_eq!(sink.matches(), gen.expected_matches);
/// ```
pub fn join_pair<M: MemoryModel, S: JoinSink>(
    mem: &mut M,
    params: &JoinParams,
    build: &Relation,
    probe: &Relation,
    num_partitions: usize,
    sink: &mut S,
) -> HashTable {
    join_pair_rec(mem, params, build, probe, num_partitions, sink, None)
}

/// [`join_pair`] with an optional span recorder: the build and probe
/// sub-phases each get their own span (with tuple counts in the meta),
/// nested under whatever span the caller holds open.
pub fn join_pair_rec<M: MemoryModel, S: JoinSink>(
    mem: &mut M,
    params: &JoinParams,
    build: &Relation,
    probe: &Relation,
    num_partitions: usize,
    sink: &mut S,
    mut rec: Option<&mut Recorder>,
) -> HashTable {
    let buckets = plan::hash_table_buckets(build.num_tuples(), num_partitions);
    let mut table = HashTable::new(buckets, build.num_tuples());
    profile::register_table(mem, &table);
    profile::register_relation(mem, RegionKind::BuildTuples, build);
    profile::register_relation(mem, RegionKind::ProbeTuples, probe);
    let span = obs::span_begin(&mut rec, mem, "build");
    obs::span_meta(&mut rec, "tuples", build.num_tuples());
    dispatch_build(mem, params, &mut table, build);
    obs::span_end(&mut rec, mem, span);
    let span = obs::span_begin(&mut rec, mem, "probe");
    obs::span_meta(&mut rec, "tuples", probe.num_tuples());
    dispatch_probe(mem, params, &table, build, probe, sink);
    obs::span_end(&mut rec, mem, span);
    table.assert_quiescent();
    profile::clear_join_regions(mem);
    table
}

/// Build-side dispatch on the scheme — the build half of [`join_pair`],
/// public so harnesses that phase build and probe separately (the bench
/// runner, partition-sweep experiments) share one dispatch point.
pub fn dispatch_build<M: MemoryModel>(
    mem: &mut M,
    params: &JoinParams,
    table: &mut HashTable,
    build: &Relation,
) {
    match params.scheme {
        JoinScheme::Baseline => baseline::build(mem, params, table, build),
        JoinScheme::Simple => simple::build(mem, params, table, build),
        JoinScheme::Group { g } => group::build(mem, params, table, build, g),
        JoinScheme::Swp { d } => swp::build(mem, params, table, build, d),
    }
}

/// Probe-side dispatch on the scheme — the probe half of [`join_pair`].
pub fn dispatch_probe<M: MemoryModel, S: JoinSink>(
    mem: &mut M,
    params: &JoinParams,
    table: &HashTable,
    build: &Relation,
    probe: &Relation,
    sink: &mut S,
) {
    match params.scheme {
        JoinScheme::Baseline => baseline::probe(mem, params, table, build, probe, sink),
        JoinScheme::Simple => simple::probe(mem, params, table, build, probe, sink),
        JoinScheme::Group { g } => group::probe(mem, params, table, build, probe, g, sink),
        JoinScheme::Swp { d } => swp::probe(mem, params, table, build, probe, d, sink),
    }
}

/// A page/slot cursor over a relation that models the input-buffer
/// behaviour all schemes share: tuples stream in page order, and schemes
/// that want it can prefetch each page as it is "read from disk".
pub(crate) struct Scan<'r> {
    rel: &'r Relation,
    pi: usize,
    end: usize,
    slot: u16,
    prefetch_pages: bool,
}

impl<'r> Scan<'r> {
    pub(crate) fn new(rel: &'r Relation, prefetch_pages: bool) -> Self {
        Scan::range(rel, prefetch_pages, 0..rel.num_pages())
    }

    /// A cursor over the pages in `pages` only — the unit of work a
    /// morsel-driven parallel scan hands to one worker. The range is
    /// clamped to the relation's page count.
    pub(crate) fn range(
        rel: &'r Relation,
        prefetch_pages: bool,
        pages: std::ops::Range<usize>,
    ) -> Self {
        let end = pages.end.min(rel.num_pages());
        Scan { rel, pi: pages.start.min(end), end, slot: 0, prefetch_pages }
    }

    /// Advance to the next tuple: returns its `(page, slot)` and performs
    /// the input-side memory accesses (slot entry + tuple bytes) plus the
    /// page prefetch on page boundaries when enabled.
    pub(crate) fn next<M: MemoryModel>(&mut self, mem: &mut M) -> Option<(usize, u16)> {
        loop {
            if self.pi >= self.end {
                return None;
            }
            let page = self.rel.page(self.pi);
            if self.slot == 0 && page.nslots() > 0 && self.prefetch_pages {
                // "Simple prefetching [...] such as prefetching an entire
                // input page after a disk page read" (§7.1).
                mem.prefetch(page.base_addr(), PAGE_SIZE);
            }
            if self.slot < page.nslots() {
                let s = self.slot;
                self.slot += 1;
                mem.visit(page.slot_addr(s), 8);
                let t = page.tuple(s);
                mem.visit(t.as_ptr() as usize, t.len());
                return Some((self.pi, s));
            }
            self.pi += 1;
            self.slot = 0;
        }
    }
}

/// Read a tuple's hash code: stashed (partition-phase optimization) or
/// recomputed from the join key. The caller charges [`cost::code0_cost`].
#[inline]
pub(crate) fn tuple_hash(
    rel: &Relation,
    pi: usize,
    slot: u16,
    use_stored: bool,
) -> u32 {
    let page = rel.page(pi);
    if use_stored {
        page.hash_code(slot)
    } else {
        hash_key(key_bytes_of(rel.schema(), page.tuple(slot)))
    }
}

/// Compare the join keys of a build and probe tuple byte-wise.
#[inline]
pub(crate) fn keys_equal(build_rel: &Relation, probe_rel: &Relation, bt: &[u8], pt: &[u8]) -> bool {
    key_bytes_of(build_rel.schema(), bt) == key_bytes_of(probe_rel.schema(), pt)
}

/// Charge the input-side code-0 cost for one tuple.
#[inline]
pub(crate) fn charge_code0<M: MemoryModel>(mem: &mut M, use_stored: bool) {
    mem.busy(cost::code0_cost(use_stored));
}
