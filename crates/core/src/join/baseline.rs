//! GRACE baseline join loops: one tuple at a time, no prefetching.
//!
//! This is the algorithm of the paper's Figure 3(a) generalized to the
//! real code paths (§4.4): hash buckets may be empty, hold only the inline
//! cell, or have an overflow cell array; a probe may match zero or many
//! build tuples. Every dependent memory reference on the critical path —
//! bucket header, cell array, matched build tuple — is a fully exposed
//! cache miss, which is what Figure 1 measures at 73% of user time.

use phj_memsim::MemoryModel;
use phj_storage::Relation;

use crate::cost;
use crate::sink::JoinSink;
use crate::table::{HashCell, HashTable, InsertStep};

use super::{charge_code0, keys_equal, tuple_hash, JoinParams, Scan};

/// Straight-line insert of one cell, charging all memory accesses. Also
/// used by the prefetching variants to resolve read-write conflicts at
/// group boundaries / waiting queues, where the bucket is already warm.
pub(crate) fn insert_one<M: MemoryModel>(mem: &mut M, table: &mut HashTable, cell: HashCell) {
    let b = table.bucket_of(cell.hash);
    mem.visit(table.header_addr(b), HashTable::header_len());
    mem.busy(cost::HEADER_CHECK);
    let mut grown = 0usize;
    match table.begin_insert(b, cell, 0, &mut grown) {
        InsertStep::DoneInline => {
            // The cell write lands in the header line just visited.
            mem.write(table.header_addr(b), HashTable::header_len());
            mem.busy(cost::CELL_WRITE);
        }
        InsertStep::WriteCell(idx) => {
            if grown > 0 {
                // The growth copy streamed old cells into the new block.
                let (addr, len) =
                    table.array_span(b).expect("growth implies an overflow array");
                mem.visit(addr, len.min(grown));
                mem.busy(cost::copy_cost(grown));
            }
            mem.write(table.arena().cell_addr(idx), 16);
            mem.busy(cost::CELL_WRITE);
            table.finish_overflow_insert(b, idx, cell);
        }
        InsertStep::Busy(_) => unreachable!("baseline insert is atomic"),
    }
}

/// Probe one tuple against the table, charging all memory accesses, and
/// emit matches. Shared with the simple-prefetching variant.
#[allow(clippy::too_many_arguments)] // the probe's full context, no more
pub(crate) fn probe_one<M: MemoryModel, S: JoinSink>(
    mem: &mut M,
    table: &HashTable,
    build_rel: &Relation,
    probe_rel: &Relation,
    pi: usize,
    slot: u16,
    hash: u32,
    sink: &mut S,
) {
    let b = table.bucket_of(hash);
    mem.visit(table.header_addr(b), HashTable::header_len());
    mem.busy(cost::HEADER_CHECK);
    let h = *table.header(b);
    if h.count == 0 {
        return;
    }
    let pt = probe_rel.page(pi).tuple(slot);
    if h.inline_cell.hash == hash {
        mem.other(cost::BRANCH_MISS);
        emit_if_match(mem, build_rel, probe_rel, h.inline_cell, pt, sink);
    }
    if h.count > 1 {
        let (addr, len) = table.array_span(b).expect("count > 1 implies array");
        mem.visit(addr, len);
        mem.busy(cost::CELL_CHECK * (h.count as u64 - 1));
        // Collect matching cells first: the overflow slice borrows the
        // table, and emit may need to re-borrow.
        let cells: Vec<HashCell> = table
            .overflow_cells(b)
            .iter()
            .filter(|c| c.hash == hash)
            .copied()
            .collect();
        for c in cells {
            mem.other(cost::BRANCH_MISS);
            emit_if_match(mem, build_rel, probe_rel, c, pt, sink);
        }
    }
}

fn emit_if_match<M: MemoryModel, S: JoinSink>(
    mem: &mut M,
    build_rel: &Relation,
    probe_rel: &Relation,
    cell: HashCell,
    pt: &[u8],
    sink: &mut S,
) {
    mem.visit(cell.tuple_addr(), cell.tuple_len());
    mem.busy(cost::KEY_COMPARE);
    // SAFETY: the cell was built over `build_rel`, which is borrowed for
    // the duration of this probe, and relation pages never move.
    let bt = unsafe { cell.tuple_bytes() };
    if keys_equal(build_rel, probe_rel, bt, pt) {
        sink.emit(mem, bt, pt);
    }
}

/// Build the hash table over the build partition, GRACE style.
pub fn build<M: MemoryModel>(
    mem: &mut M,
    params: &JoinParams,
    table: &mut HashTable,
    build: &Relation,
) {
    let mut scan = Scan::new(build, false);
    while let Some((pi, slot)) = scan.next(mem) {
        charge_code0(mem, params.use_stored_hash);
        let hash = tuple_hash(build, pi, slot, params.use_stored_hash);
        let t = build.page(pi).tuple(slot);
        insert_one(mem, table, HashCell::new(hash, t.as_ptr() as usize, t.len() as u32));
    }
}

/// Probe the table with the probe partition, GRACE style.
pub fn probe<M: MemoryModel, S: JoinSink>(
    mem: &mut M,
    params: &JoinParams,
    table: &HashTable,
    build_rel: &Relation,
    probe_rel: &Relation,
    sink: &mut S,
) {
    let mut scan = Scan::new(probe_rel, false);
    while let Some((pi, slot)) = scan.next(mem) {
        charge_code0(mem, params.use_stored_hash);
        let hash = tuple_hash(probe_rel, pi, slot, params.use_stored_hash);
        probe_one(mem, table, build_rel, probe_rel, pi, slot, hash, sink);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::CountSink;
    use phj_memsim::NativeModel;
    use phj_storage::{RelationBuilder, Schema};

    fn make_rel(keys: &[u32], size: usize) -> Relation {
        let schema = Schema::key_payload(size);
        let mut b = RelationBuilder::new(schema);
        let mut t = vec![0u8; size];
        for &k in keys {
            t[..4].copy_from_slice(&k.to_le_bytes());
            b.push_hashed(&t, crate::hash::hash_key(&k.to_le_bytes()));
        }
        b.finish()
    }

    #[test]
    fn build_and_probe_counts_matches() {
        let build_rel = make_rel(&[1, 2, 3, 4, 5], 20);
        let probe_rel = make_rel(&[1, 1, 3, 9, 9, 5], 20);
        let mut mem = NativeModel;
        let params = JoinParams {
            scheme: super::super::JoinScheme::Baseline,
            use_stored_hash: true,
        };
        let mut table = HashTable::new(7, 5);
        build(&mut mem, &params, &mut table, &build_rel);
        assert_eq!(table.len(), 5);
        let mut sink = CountSink::new();
        probe(&mut mem, &params, &table, &build_rel, &probe_rel, &mut sink);
        assert_eq!(sink.matches(), 4); // 1,1,3,5
    }

    #[test]
    fn recomputed_hash_agrees_with_stored() {
        let build_rel = make_rel(&[10, 20, 30], 16);
        let probe_rel = make_rel(&[20, 30, 40], 16);
        let mut mem = NativeModel;
        for use_stored in [true, false] {
            let params = JoinParams {
                scheme: super::super::JoinScheme::Baseline,
                use_stored_hash: use_stored,
            };
            let mut table = HashTable::new(5, 3);
            build(&mut mem, &params, &mut table, &build_rel);
            let mut sink = CountSink::new();
            probe(&mut mem, &params, &table, &build_rel, &probe_rel, &mut sink);
            assert_eq!(sink.matches(), 2, "use_stored={use_stored}");
        }
    }

    #[test]
    fn duplicate_build_keys_all_match() {
        let build_rel = make_rel(&[7, 7, 7], 12);
        let probe_rel = make_rel(&[7], 12);
        let mut mem = NativeModel;
        let params = JoinParams {
            scheme: super::super::JoinScheme::Baseline,
            use_stored_hash: true,
        };
        let mut table = HashTable::new(3, 3);
        build(&mut mem, &params, &mut table, &build_rel);
        let mut sink = CountSink::new();
        probe(&mut mem, &params, &table, &build_rel, &probe_rel, &mut sink);
        assert_eq!(sink.matches(), 3);
    }

    #[test]
    fn hash_code_collision_rejected_by_key_compare() {
        // Force two different keys into the same cell-filter situation by
        // storing an identical fake hash for both; only the key compare
        // separates them.
        let schema = Schema::key_payload(12);
        let mut b = RelationBuilder::new(schema.clone());
        let mut t = [0u8; 12];
        t[..4].copy_from_slice(&1u32.to_le_bytes());
        b.push_hashed(&t, 42);
        t[..4].copy_from_slice(&2u32.to_le_bytes());
        b.push_hashed(&t, 42);
        let build_rel = b.finish();
        let mut p = RelationBuilder::new(schema);
        t[..4].copy_from_slice(&1u32.to_le_bytes());
        p.push_hashed(&t, 42);
        let probe_rel = p.finish();
        let mut mem = NativeModel;
        let params = JoinParams {
            scheme: super::super::JoinScheme::Baseline,
            use_stored_hash: true,
        };
        let mut table = HashTable::new(3, 2);
        build(&mut mem, &params, &mut table, &build_rel);
        let mut sink = CountSink::new();
        probe(&mut mem, &params, &table, &build_rel, &probe_rel, &mut sink);
        assert_eq!(sink.matches(), 1, "only the true key-equal pair");
    }
}
