//! Group prefetching for the join phase (§4 of the paper).
//!
//! The loop over tuples is strip-mined into groups of `G`; within a group,
//! the work is loop-distributed into stages separated by the dependent
//! memory references (Figure 3(b)/(d)). Each stage performs one critical-
//! path step for *all* tuples of the group and issues prefetches for the
//! next stage's addresses, so the miss latency of one tuple overlaps the
//! computation and misses of the `G-1` others.
//!
//! Complexities handled exactly as §4.4 describes:
//!
//! * **multiple code paths** — per-tuple state records which path the
//!   tuple is on (empty bucket / inline cell only / overflow array; match
//!   or no match), and each stage dispatches on it;
//! * **multiple independent lines in one stage** — a probe that matches
//!   several cells prefetches all matched build tuples in stage 2 and
//!   visits them in stage 3;
//! * **read-write conflicts in build** — a busy flag in the bucket header
//!   detects an in-flight insert to the same bucket; the conflicting
//!   tuple is *delayed* to the end of the group body and inserted there
//!   without prefetching, since the earlier access has already warmed the
//!   bucket's lines.

use phj_memsim::MemoryModel;
use phj_storage::Relation;

use crate::cost;
use crate::sink::JoinSink;
use crate::table::{BucketHeader, HashCell, HashTable, InsertStep};

use super::baseline::insert_one;
use super::{charge_code0, keys_equal, tuple_hash, JoinParams, Scan};

/// Per-tuple probe state across the four stages.
struct ProbeSlot {
    pi: usize,
    slot: u16,
    hash: u32,
    bucket: usize,
    /// Header copy taken in stage 1 (the table is immutable during probe).
    header: BucketHeader,
    /// Matching cells found in stages 1–2 (candidates for stage 3).
    cands: Vec<HashCell>,
}

impl ProbeSlot {
    fn empty() -> Self {
        ProbeSlot {
            pi: 0,
            slot: 0,
            hash: 0,
            bucket: 0,
            header: BucketHeader {
                inline_cell: HashCell::new(0, 0, 0),
                count: 0,
                busy: 0,
                array: u32::MAX,
                cap: 0,
            },
            cands: Vec::new(),
        }
    }
}

/// Group-prefetching probe with group size `g`.
pub fn probe<M: MemoryModel, S: JoinSink>(
    mem: &mut M,
    params: &JoinParams,
    table: &HashTable,
    build_rel: &Relation,
    probe_rel: &Relation,
    g: usize,
    sink: &mut S,
) {
    let mut gp = GroupProbe::new(params, table, build_rel, probe_rel, g);
    while gp.run_group(mem, sink) {}
}

/// A **resumable** group-prefetching probe.
///
/// §5.4: "the join phase can pause at group boundaries and send outputs
/// to the parent operator to support pipelined query processing." Each
/// [`GroupProbe::run_group`] call processes exactly one group of up to
/// `G` probe tuples through all four stages and returns; the caller (a
/// parent operator) can consume the sink's output between calls without
/// paying any pipeline restart cost — the group boundary is a natural
/// pause point, which is one of the paper's arguments for preferring
/// group prefetching over software pipelining in an engine.
pub struct GroupProbe<'a> {
    params: &'a JoinParams,
    table: &'a HashTable,
    build_rel: &'a Relation,
    probe_rel: &'a Relation,
    g: usize,
    slots: Vec<ProbeSlot>,
    scan: Scan<'a>,
    exhausted: bool,
    batches: u64,
}

impl<'a> GroupProbe<'a> {
    /// Set up a probe of `probe_rel` against `table` over `build_rel`.
    pub fn new(
        params: &'a JoinParams,
        table: &'a HashTable,
        build_rel: &'a Relation,
        probe_rel: &'a Relation,
        g: usize,
    ) -> Self {
        let g = g.max(2);
        GroupProbe {
            params,
            table,
            build_rel,
            probe_rel,
            g,
            slots: (0..g).map(|_| ProbeSlot::empty()).collect(),
            scan: Scan::new(probe_rel, true),
            exhausted: false,
            batches: 0,
        }
    }

    /// Process one group; returns `false` once the probe input is
    /// exhausted (no further matches will be emitted).
    pub fn run_group<M: MemoryModel, S: JoinSink>(&mut self, mem: &mut M, sink: &mut S) -> bool {
        if self.exhausted {
            return false;
        }
        let (g, table, build_rel, probe_rel) =
            (self.g, self.table, self.build_rel, self.probe_rel);
        // Stage 0: hash, bucket number, prefetch bucket headers.
        let mut n = 0usize;
        for s in self.slots.iter_mut().take(g) {
            let Some((pi, slot)) = self.scan.next(mem) else { break };
            charge_code0(mem, self.params.use_stored_hash);
            mem.busy(cost::STAGE_BOOKKEEPING);
            s.pi = pi;
            s.slot = slot;
            s.hash = tuple_hash(probe_rel, pi, slot, self.params.use_stored_hash);
            s.bucket = table.bucket_of(s.hash);
            mem.prefetch(table.header_addr(s.bucket), HashTable::header_len());
            n += 1;
        }
        if n == 0 {
            self.exhausted = true;
            return false;
        }
        // Stage 1: visit headers; prefetch cell arrays and inline-match
        // build tuples.
        for s in self.slots.iter_mut().take(n) {
            mem.visit(table.header_addr(s.bucket), HashTable::header_len());
            mem.busy(cost::HEADER_CHECK + cost::STAGE_BOOKKEEPING);
            s.header = *table.header(s.bucket);
            s.cands.clear();
            if s.header.count == 0 {
                continue;
            }
            if s.header.inline_cell.hash == s.hash {
                mem.other(cost::BRANCH_MISS);
                mem.prefetch(s.header.inline_cell.tuple_addr(), s.header.inline_cell.tuple_len());
                s.cands.push(s.header.inline_cell);
            }
            if s.header.count > 1 {
                let (addr, len) =
                    table.array_span(s.bucket).expect("count > 1 implies array");
                mem.prefetch(addr, len);
            }
        }
        // Stage 2: visit cell arrays; prefetch matched build tuples.
        for s in self.slots.iter_mut().take(n) {
            mem.busy(cost::STAGE_BOOKKEEPING);
            if s.header.count <= 1 {
                continue;
            }
            let (addr, len) = table.array_span(s.bucket).expect("count > 1 implies array");
            mem.visit(addr, len);
            mem.busy(cost::CELL_CHECK * (s.header.count as u64 - 1));
            for c in table.overflow_cells(s.bucket) {
                if c.hash == s.hash {
                    mem.other(cost::BRANCH_MISS);
                    mem.prefetch(c.tuple_addr(), c.tuple_len());
                    s.cands.push(*c);
                }
            }
        }
        // Stage 3: visit build tuples, compare keys, produce output.
        for s in self.slots.iter_mut().take(n) {
            mem.busy(cost::STAGE_BOOKKEEPING);
            if s.cands.is_empty() {
                continue;
            }
            let pt = probe_rel.page(s.pi).tuple(s.slot);
            for c in &s.cands {
                mem.visit(c.tuple_addr(), c.tuple_len());
                mem.busy(cost::KEY_COMPARE);
                // SAFETY: cells point into `build_rel`, borrowed for the
                // duration of the probe; pages never move.
                let bt = unsafe { c.tuple_bytes() };
                if keys_equal(build_rel, probe_rel, bt, pt) {
                    sink.emit(mem, bt, pt);
                }
            }
        }
        // Host-side batch mark (flight recorder full mode only; never a
        // simulated-cycle cost).
        phj_flightrec::event_full(phj_flightrec::EventKind::Batch, 2, self.batches, g as u64);
        self.batches += 1;
        if n < g {
            self.exhausted = true;
        }
        true
    }
}

/// Per-tuple build state.
#[derive(Clone, Copy)]
enum BuildState {
    /// Insert completed (inline) during stage 1.
    Done,
    /// Overflow cell reserved; write it in stage 2.
    Write(u32),
    /// Bucket was busy; resolve at the group boundary.
    Delayed,
}

struct BuildSlot {
    cell: HashCell,
    bucket: usize,
    state: BuildState,
}

/// Group-prefetching build with group size `g`.
pub fn build<M: MemoryModel>(
    mem: &mut M,
    params: &JoinParams,
    table: &mut HashTable,
    build: &Relation,
    g: usize,
) {
    let g = g.max(2);
    let mut slots: Vec<BuildSlot> = (0..g)
        .map(|_| BuildSlot {
            cell: HashCell::new(0, 0, 0),
            bucket: 0,
            state: BuildState::Done,
        })
        .collect();
    let mut delayed: Vec<usize> = Vec::new();
    let mut scan = Scan::new(build, true);
    let mut batches = 0u64;
    loop {
        // Stage 0: hash, bucket, prefetch headers.
        let mut n = 0usize;
        for s in slots.iter_mut().take(g) {
            let Some((pi, slot)) = scan.next(mem) else { break };
            charge_code0(mem, params.use_stored_hash);
            mem.busy(cost::STAGE_BOOKKEEPING);
            let hash = tuple_hash(build, pi, slot, params.use_stored_hash);
            let t = build.page(pi).tuple(slot);
            s.cell = HashCell::new(hash, t.as_ptr() as usize, t.len() as u32);
            s.bucket = table.bucket_of(hash);
            s.state = BuildState::Done;
            mem.prefetch(table.header_addr(s.bucket), HashTable::header_len());
            n += 1;
        }
        if n == 0 {
            break;
        }
        // Stage 1: examine headers; reserve overflow slots and prefetch
        // them, or detect conflicts.
        delayed.clear();
        for (i, s) in slots.iter_mut().enumerate().take(n) {
            mem.visit(table.header_addr(s.bucket), HashTable::header_len());
            mem.busy(cost::HEADER_CHECK + cost::STAGE_BOOKKEEPING);
            let mut grown = 0usize;
            match table.begin_insert(s.bucket, s.cell, i as u32, &mut grown) {
                InsertStep::DoneInline => {
                    mem.write(table.header_addr(s.bucket), HashTable::header_len());
                    mem.busy(cost::CELL_WRITE);
                    s.state = BuildState::Done;
                }
                InsertStep::WriteCell(idx) => {
                    if grown > 0 {
                        let (addr, len) = table
                            .array_span(s.bucket)
                            .expect("growth implies an array");
                        mem.visit(addr, len.min(grown));
                        mem.busy(cost::copy_cost(grown));
                    }
                    mem.prefetch(table.arena().cell_addr(idx), 16);
                    s.state = BuildState::Write(idx);
                }
                InsertStep::Busy(_) => {
                    // §4.4: "If a tuple is to be inserted into a busy
                    // bucket, we delay its processing until the end of the
                    // group prefetching loop body."
                    mem.other(cost::BRANCH_MISS);
                    s.state = BuildState::Delayed;
                    delayed.push(i);
                }
            }
        }
        // Stage 2: write the reserved cells.
        for s in slots.iter_mut().take(n) {
            mem.busy(cost::STAGE_BOOKKEEPING);
            if let BuildState::Write(idx) = s.state {
                mem.write(table.arena().cell_addr(idx), 16);
                mem.busy(cost::CELL_WRITE);
                table.finish_overflow_insert(s.bucket, idx, s.cell);
                s.state = BuildState::Done;
            }
        }
        // Group boundary: insert delayed tuples without prefetching —
        // the conflicting earlier insert warmed the bucket lines (§4.4).
        for &i in &delayed {
            insert_one(mem, table, slots[i].cell);
            slots[i].state = BuildState::Done;
        }
        phj_flightrec::event_full(phj_flightrec::EventKind::Batch, 1, batches, g as u64);
        batches += 1;
        if n < g {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::join::{join_pair, JoinParams, JoinScheme};
    use crate::sink::CountSink;
    use phj_memsim::{NativeModel, SimEngine};
    use phj_storage::{RelationBuilder, Schema};

    fn rel(keys: &[u32]) -> Relation {
        let schema = Schema::key_payload(24);
        let mut b = RelationBuilder::new(schema);
        let mut t = [0u8; 24];
        for &k in keys {
            t[..4].copy_from_slice(&k.to_le_bytes());
            b.push_hashed(&t, crate::hash::hash_key(&k.to_le_bytes()));
        }
        b.finish()
    }

    fn run(scheme: JoinScheme, build_keys: &[u32], probe_keys: &[u32]) -> CountSink {
        let build_rel = rel(build_keys);
        let probe_rel = rel(probe_keys);
        let mut mem = NativeModel;
        let mut sink = CountSink::new();
        join_pair(
            &mut mem,
            &JoinParams { scheme, use_stored_hash: true },
            &build_rel,
            &probe_rel,
            1,
            &mut sink,
        );
        sink
    }

    #[test]
    fn group_equals_baseline() {
        let build_keys: Vec<u32> = (0..1000).collect();
        let probe_keys: Vec<u32> = (500..1500).map(|k| k % 1200).collect();
        let base = run(JoinScheme::Baseline, &build_keys, &probe_keys);
        for g in [2, 3, 16, 19, 64] {
            let got = run(JoinScheme::Group { g }, &build_keys, &probe_keys);
            assert_eq!(got, base, "G={g}");
        }
    }

    #[test]
    fn group_handles_heavy_duplicates() {
        // All build tuples in one bucket: forces busy-flag conflicts in
        // every group and exercises the delayed-tuple path.
        let build_keys = vec![7u32; 200];
        let probe_keys = vec![7u32; 3];
        let base = run(JoinScheme::Baseline, &build_keys, &probe_keys);
        let got = run(JoinScheme::Group { g: 16 }, &build_keys, &probe_keys);
        assert_eq!(got, base);
        assert_eq!(got.matches(), 600);
    }

    #[test]
    fn group_non_multiple_sizes() {
        // Relation size not a multiple of G exercises the tail group.
        let build_keys: Vec<u32> = (0..97).collect();
        let probe_keys: Vec<u32> = (0..101).collect();
        let base = run(JoinScheme::Baseline, &build_keys, &probe_keys);
        let got = run(JoinScheme::Group { g: 16 }, &build_keys, &probe_keys);
        assert_eq!(got, base);
        assert_eq!(got.matches(), 97);
    }

    #[test]
    fn resumable_probe_pauses_at_group_boundaries() {
        // §5.4 pipelined processing: run_group yields after every group,
        // the per-group match count is bounded, and the concatenation of
        // per-group outputs equals the one-shot probe's output.
        let build_keys: Vec<u32> = (0..500).collect();
        let probe_keys: Vec<u32> = (0..500).map(|k| 499 - k).collect();
        let build_rel = rel(&build_keys);
        let probe_rel = rel(&probe_keys);
        let params = JoinParams { scheme: JoinScheme::Group { g: 16 }, use_stored_hash: true };
        let mut mem = NativeModel;
        let mut table = crate::table::HashTable::new(503, 500);
        build(&mut mem, &params, &mut table, &build_rel, 16);
        let mut gp = GroupProbe::new(&params, &table, &build_rel, &probe_rel, 16);
        let mut sink = CountSink::new();
        let mut groups = 0;
        let mut last = 0;
        while gp.run_group(&mut mem, &mut sink) {
            groups += 1;
            let emitted = sink.matches() - last;
            assert!(emitted <= 16 * 2, "bounded output per group");
            last = sink.matches();
        }
        assert_eq!(groups, 500usize.div_ceil(16));
        assert_eq!(sink.matches(), 500);
        // Resuming after exhaustion stays exhausted.
        assert!(!gp.run_group(&mut mem, &mut sink));
        // One-shot probe agrees.
        let mut oneshot = CountSink::new();
        probe(&mut mem, &params, &table, &build_rel, &probe_rel, 16, &mut oneshot);
        assert_eq!(oneshot, sink);
    }

    #[test]
    fn group_beats_baseline_in_sim() {
        let build_keys: Vec<u32> = (0..4000).collect();
        let probe_keys: Vec<u32> = (0..8000).map(|k| k % 4000).collect();
        let build_rel = rel(&build_keys);
        let probe_rel = rel(&probe_keys);
        let time = |scheme| {
            let mut mem = SimEngine::paper();
            let mut sink = CountSink::new();
            join_pair(
                &mut mem,
                &JoinParams { scheme, use_stored_hash: true },
                &build_rel,
                &probe_rel,
                1,
                &mut sink,
            );
            assert_eq!(sink.matches(), 8000);
            mem.breakdown()
        };
        let base = time(JoinScheme::Baseline);
        // This workload half-fits in L2, capping the speedup; the full
        // Fig-10-scale runs in the bench harness show the paper's 2-3x.
        let grp = time(JoinScheme::Group { g: 16 });
        assert!(
            grp.total() * 3 < base.total() * 2,
            "group {} vs baseline {}",
            grp.total(),
            base.total()
        );
        assert!(
            grp.dcache_stall * 3 < base.dcache_stall,
            "group hides most dcache stalls: {} vs {}",
            grp.dcache_stall,
            base.dcache_stall
        );
    }
}
