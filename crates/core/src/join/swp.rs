//! Software-pipelined prefetching for the join phase (§5 of the paper).
//!
//! Where group prefetching processes stages group-by-group with a barrier
//! between groups, software pipelining runs one iteration of a single loop
//! per element *slot*: iteration `it` executes stage 0 for element `it`,
//! stage 1 for element `it - D`, stage 2 for `it - 2D`, and stage 3 for
//! `it - 3D` (Figure 7). The pipeline never drains between groups, hiding
//! the intermittent stalls group prefetching can suffer at transitions.
//!
//! Implementation follows §5.3: per-element state lives in a circular
//! array whose size is a power of two of at least `kD + 1` (bit-mask
//! modular indexing); read-write conflicts during build use **waiting
//! queues** — the bucket's busy word names the in-flight inserter's state
//! slot, and conflicting tuples chain themselves onto it via a
//! `next_waiting` link. When the owner completes its insert it processes
//! the queued tuples (their bucket lines are warm by then).

use phj_memsim::MemoryModel;
use phj_storage::Relation;

use crate::cost;
use crate::model::swp_state_slots;
use crate::sink::JoinSink;
use crate::table::{BucketHeader, HashCell, HashTable, InsertStep};

use super::baseline::insert_one;
use super::{charge_code0, keys_equal, tuple_hash, JoinParams, Scan};

const NIL: u32 = u32::MAX;

struct ProbeSlot {
    pi: usize,
    slot: u16,
    hash: u32,
    bucket: usize,
    header: BucketHeader,
    cands: Vec<HashCell>,
}

impl ProbeSlot {
    fn empty() -> Self {
        ProbeSlot {
            pi: 0,
            slot: 0,
            hash: 0,
            bucket: 0,
            header: BucketHeader {
                inline_cell: HashCell::new(0, 0, 0),
                count: 0,
                busy: 0,
                array: NIL,
                cap: 0,
            },
            cands: Vec::new(),
        }
    }
}

/// Software-pipelined probe with prefetch distance `d`.
pub fn probe<M: MemoryModel, S: JoinSink>(
    mem: &mut M,
    params: &JoinParams,
    table: &HashTable,
    build_rel: &Relation,
    probe_rel: &Relation,
    d: usize,
    sink: &mut S,
) {
    let d = d.max(1);
    let size = swp_state_slots(3, d);
    let mask = size - 1;
    let mut slots: Vec<ProbeSlot> = (0..size).map(|_| ProbeSlot::empty()).collect();
    let mut scan = Scan::new(probe_rel, true);
    let mut total: Option<usize> = None;
    let mut it = 0usize;
    let bk = cost::STAGE_BOOKKEEPING + cost::SWP_EXTRA;
    loop {
        // Stage 0 for element `it`.
        if total.is_none() {
            match scan.next(mem) {
                Some((pi, slot)) => {
                    let s = &mut slots[it & mask];
                    charge_code0(mem, params.use_stored_hash);
                    mem.busy(bk);
                    s.pi = pi;
                    s.slot = slot;
                    s.hash = tuple_hash(probe_rel, pi, slot, params.use_stored_hash);
                    s.bucket = table.bucket_of(s.hash);
                    mem.prefetch(table.header_addr(s.bucket), HashTable::header_len());
                }
                None => total = Some(it),
            }
        }
        // Stage 1 for element `it - D`.
        if it >= d {
            let e = it - d;
            if total.is_none_or(|t| e < t) {
                let s = &mut slots[e & mask];
                mem.visit(table.header_addr(s.bucket), HashTable::header_len());
                mem.busy(cost::HEADER_CHECK + bk);
                s.header = *table.header(s.bucket);
                s.cands.clear();
                if s.header.count > 0 {
                    if s.header.inline_cell.hash == s.hash {
                        mem.other(cost::BRANCH_MISS);
                        mem.prefetch(
                            s.header.inline_cell.tuple_addr(),
                            s.header.inline_cell.tuple_len(),
                        );
                        s.cands.push(s.header.inline_cell);
                    }
                    if s.header.count > 1 {
                        let (addr, len) =
                            table.array_span(s.bucket).expect("count > 1 implies array");
                        mem.prefetch(addr, len);
                    }
                }
            }
        }
        // Stage 2 for element `it - 2D`.
        if it >= 2 * d {
            let e = it - 2 * d;
            if total.is_none_or(|t| e < t) {
                let s = &mut slots[e & mask];
                mem.busy(bk);
                if s.header.count > 1 {
                    let (addr, len) =
                        table.array_span(s.bucket).expect("count > 1 implies array");
                    mem.visit(addr, len);
                    mem.busy(cost::CELL_CHECK * (s.header.count as u64 - 1));
                    for c in table.overflow_cells(s.bucket) {
                        if c.hash == s.hash {
                            mem.other(cost::BRANCH_MISS);
                            mem.prefetch(c.tuple_addr(), c.tuple_len());
                            s.cands.push(*c);
                        }
                    }
                }
            }
        }
        // Stage 3 for element `it - 3D`.
        if it >= 3 * d {
            let e = it - 3 * d;
            if total.is_none_or(|t| e < t) {
                let s = &mut slots[e & mask];
                mem.busy(bk);
                if !s.cands.is_empty() {
                    let pt = probe_rel.page(s.pi).tuple(s.slot);
                    for c in &s.cands {
                        mem.visit(c.tuple_addr(), c.tuple_len());
                        mem.busy(cost::KEY_COMPARE);
                        // SAFETY: cells point into `build_rel`, borrowed
                        // for the duration of the probe.
                        let bt = unsafe { c.tuple_bytes() };
                        if keys_equal(build_rel, probe_rel, bt, pt) {
                            sink.emit(mem, bt, pt);
                        }
                    }
                }
            }
        }
        if let Some(t) = total {
            if t == 0 || it >= t - 1 + 3 * d {
                break;
            }
        }
        it += 1;
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BuildState {
    Done,
    Write(u32),
    Waiting,
}

struct BuildSlot {
    cell: HashCell,
    bucket: usize,
    state: BuildState,
    next_waiting: u32,
}

/// Software-pipelined build with prefetch distance `d`.
pub fn build<M: MemoryModel>(
    mem: &mut M,
    params: &JoinParams,
    table: &mut HashTable,
    build: &Relation,
    d: usize,
) {
    let d = d.max(1);
    let size = swp_state_slots(2, d);
    let mask = size - 1;
    let mut slots: Vec<BuildSlot> = (0..size)
        .map(|_| BuildSlot {
            cell: HashCell::new(0, 0, 0),
            bucket: 0,
            state: BuildState::Done,
            next_waiting: NIL,
        })
        .collect();
    let mut scan = Scan::new(build, true);
    let mut total: Option<usize> = None;
    let mut it = 0usize;
    let bk = cost::STAGE_BOOKKEEPING + cost::SWP_EXTRA;
    loop {
        // Stage 0 for element `it`.
        if total.is_none() {
            match scan.next(mem) {
                Some((pi, slot)) => {
                    let me = it & mask;
                    charge_code0(mem, params.use_stored_hash);
                    mem.busy(bk);
                    let hash = tuple_hash(build, pi, slot, params.use_stored_hash);
                    let t = build.page(pi).tuple(slot);
                    let s = &mut slots[me];
                    debug_assert_eq!(s.state, BuildState::Done, "slot reused too early");
                    s.cell = HashCell::new(hash, t.as_ptr() as usize, t.len() as u32);
                    s.bucket = table.bucket_of(hash);
                    s.next_waiting = NIL;
                    mem.prefetch(table.header_addr(s.bucket), HashTable::header_len());
                }
                None => total = Some(it),
            }
        }
        // Stage 1 for element `it - D`.
        if it >= d {
            let e = it - d;
            if total.is_none_or(|t| e < t) {
                let me = (e & mask) as u32;
                let (bucket, cell) = {
                    let s = &slots[me as usize];
                    (s.bucket, s.cell)
                };
                mem.visit(table.header_addr(bucket), HashTable::header_len());
                mem.busy(cost::HEADER_CHECK + bk);
                let mut grown = 0usize;
                match table.begin_insert(bucket, cell, me, &mut grown) {
                    InsertStep::DoneInline => {
                        mem.write(table.header_addr(bucket), HashTable::header_len());
                        mem.busy(cost::CELL_WRITE);
                        slots[me as usize].state = BuildState::Done;
                    }
                    InsertStep::WriteCell(idx) => {
                        if grown > 0 {
                            let (addr, len) =
                                table.array_span(bucket).expect("growth implies array");
                            mem.visit(addr, len.min(grown));
                            mem.busy(cost::copy_cost(grown));
                        }
                        mem.prefetch(table.arena().cell_addr(idx), 16);
                        slots[me as usize].state = BuildState::Write(idx);
                    }
                    InsertStep::Busy(owner) => {
                        // §5.3: append to the bucket's waiting queue.
                        mem.other(cost::BRANCH_MISS);
                        let mut cur = owner;
                        while slots[cur as usize].next_waiting != NIL {
                            cur = slots[cur as usize].next_waiting;
                        }
                        slots[cur as usize].next_waiting = me;
                        slots[me as usize].state = BuildState::Waiting;
                        // Queue-walk bookkeeping.
                        mem.busy(cost::SWP_EXTRA);
                    }
                }
            }
        }
        // Stage 2 for element `it - 2D`.
        if it >= 2 * d {
            let e = it - 2 * d;
            if total.is_none_or(|t| e < t) {
                let me = e & mask;
                mem.busy(bk);
                if let BuildState::Write(idx) = slots[me].state {
                    let (bucket, cell) = (slots[me].bucket, slots[me].cell);
                    mem.write(table.arena().cell_addr(idx), 16);
                    mem.busy(cost::CELL_WRITE);
                    table.finish_overflow_insert(bucket, idx, cell);
                    slots[me].state = BuildState::Done;
                    // Drain this element's waiting queue: the bucket lines
                    // are warm, so queued inserts run without prefetching.
                    let mut w = slots[me].next_waiting;
                    slots[me].next_waiting = NIL;
                    while w != NIL {
                        let next = slots[w as usize].next_waiting;
                        slots[w as usize].next_waiting = NIL;
                        debug_assert_eq!(slots[w as usize].state, BuildState::Waiting);
                        insert_one(mem, table, slots[w as usize].cell);
                        slots[w as usize].state = BuildState::Done;
                        w = next;
                    }
                }
            }
        }
        if let Some(t) = total {
            if t == 0 || it >= t - 1 + 2 * d {
                break;
            }
        }
        it += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::join::{join_pair, JoinParams, JoinScheme};
    use crate::sink::CountSink;
    use phj_memsim::{NativeModel, SimEngine};
    use phj_storage::{RelationBuilder, Schema};

    fn rel(keys: &[u32]) -> Relation {
        let schema = Schema::key_payload(24);
        let mut b = RelationBuilder::new(schema);
        let mut t = [0u8; 24];
        for &k in keys {
            t[..4].copy_from_slice(&k.to_le_bytes());
            b.push_hashed(&t, crate::hash::hash_key(&k.to_le_bytes()));
        }
        b.finish()
    }

    fn run(scheme: JoinScheme, build_keys: &[u32], probe_keys: &[u32]) -> CountSink {
        let build_rel = rel(build_keys);
        let probe_rel = rel(probe_keys);
        let mut mem = NativeModel;
        let mut sink = CountSink::new();
        join_pair(
            &mut mem,
            &JoinParams { scheme, use_stored_hash: true },
            &build_rel,
            &probe_rel,
            1,
            &mut sink,
        );
        sink
    }

    #[test]
    fn swp_equals_baseline() {
        let build_keys: Vec<u32> = (0..1000).collect();
        let probe_keys: Vec<u32> = (500..1500).map(|k| k % 1200).collect();
        let base = run(JoinScheme::Baseline, &build_keys, &probe_keys);
        for d in [1, 2, 3, 5, 8] {
            let got = run(JoinScheme::Swp { d }, &build_keys, &probe_keys);
            assert_eq!(got, base, "D={d}");
        }
    }

    #[test]
    fn swp_handles_heavy_duplicates() {
        // Everything in one bucket: every insert conflicts, exercising
        // the waiting-queue protocol heavily.
        let build_keys = vec![7u32; 200];
        let probe_keys = vec![7u32; 3];
        let base = run(JoinScheme::Baseline, &build_keys, &probe_keys);
        for d in [1, 2, 4] {
            let got = run(JoinScheme::Swp { d }, &build_keys, &probe_keys);
            assert_eq!(got, base, "D={d}");
            assert_eq!(got.matches(), 600);
        }
    }

    #[test]
    fn swp_empty_and_tiny_relations() {
        let empty: Vec<u32> = vec![];
        let got = run(JoinScheme::Swp { d: 2 }, &empty, &[1, 2, 3]);
        assert_eq!(got.matches(), 0);
        let got = run(JoinScheme::Swp { d: 2 }, &[1, 2, 3], &empty);
        assert_eq!(got.matches(), 0);
        let got = run(JoinScheme::Swp { d: 3 }, &[1], &[1]);
        assert_eq!(got.matches(), 1);
    }

    #[test]
    fn swp_beats_baseline_in_sim() {
        let build_keys: Vec<u32> = (0..4000).collect();
        let probe_keys: Vec<u32> = (0..8000).map(|k| k % 4000).collect();
        let build_rel = rel(&build_keys);
        let probe_rel = rel(&probe_keys);
        let time = |scheme| {
            let mut mem = SimEngine::paper();
            let mut sink = CountSink::new();
            join_pair(
                &mut mem,
                &JoinParams { scheme, use_stored_hash: true },
                &build_rel,
                &probe_rel,
                1,
                &mut sink,
            );
            assert_eq!(sink.matches(), 8000);
            mem.breakdown()
        };
        let base = time(JoinScheme::Baseline);
        // With a counting sink C_k is small, so Theorem 2 needs D = 2.
        // This workload half-fits in L2, capping the speedup; the full
        // Fig-10-scale runs in the bench harness show the paper's 2-3x.
        let swp = time(JoinScheme::Swp { d: 2 });
        assert!(
            swp.total() * 3 < base.total() * 2,
            "swp {} vs baseline {}",
            swp.total(),
            base.total()
        );
    }
}
