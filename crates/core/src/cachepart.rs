//! Cache partitioning comparators (§7.5 of the paper).
//!
//! Cache partitioning "generates cache-sized build partitions so that
//! every build partition and its hash table can fit in cache and cache
//! misses in the join phase can be greatly reduced". The paper implements
//! two disk-oriented variants and compares both against its prefetching
//! schemes:
//!
//! * **direct cache** — the I/O partition phase directly produces
//!   cache-sized partitions. Limited by how many concurrently active
//!   partitions a storage manager can handle (hundreds, per the IBM DB2
//!   experience the paper cites — beyond ~1 GB relations it stops
//!   applying);
//! * **two-step cache** — the I/O partition phase produces memory-sized
//!   partitions, which are then re-partitioned *in memory* into
//!   cache-sized chunks as a preprocessing step of the join phase. The
//!   extra copying pass is why the paper measures it 50–150% slower than
//!   the prefetching schemes.
//!
//! Per §7.5, the I/O partition phase of every scheme uses the combined
//! prefetching scheme, and the cache-partitioned joins are enhanced with
//! (simple) prefetching wherever possible.

use phj_memsim::MemoryModel;
use phj_storage::Relation;

use crate::join::{join_pair, JoinParams, JoinScheme};
use crate::partition::{partition_relation, PartitionScheme};
use crate::plan;
use crate::sink::JoinSink;

/// Cache-partitioning configuration.
#[derive(Debug, Clone, Copy)]
pub struct CachePartConfig {
    /// Bytes of tuple data per cache-sized build partition. The partition
    /// plus its hash table (~45% overhead at 100 B tuples) must stay
    /// resident in the 1 MB L2 *while the probe stream and output buffers
    /// also flow through it* — empirically that caps useful residency
    /// near 256 KB of tuple data (≈ 630 KB total footprint). Larger
    /// budgets thrash and forfeit the scheme's advantage.
    pub cache_budget: usize,
    /// Join-phase memory (bounds the two-step scheme's first pass; same
    /// meaning as [`crate::grace::GraceConfig::mem_budget`]).
    pub mem_budget: usize,
    /// I/O partition scheme ("the I/O partition phases of all schemes use
    /// the combined prefetching scheme", §7.5).
    pub io_partition_scheme: PartitionScheme,
    /// In-memory re-partition scheme for the two-step variant's second
    /// pass.
    pub mem_partition_scheme: PartitionScheme,
    /// Join scheme for the cache-resident joins ("we employ prefetching in
    /// the join phase to enhance the cache partitioning schemes wherever
    /// possible", §7.5): simple input-page prefetching. Cache partitioning
    /// exists to make staged prefetching unnecessary — its hash table is
    /// cache-resident — which is also exactly why it is fragile when the
    /// cache is flushed (Fig 18): nothing re-covers the evicted lines.
    pub join_scheme: JoinScheme,
    /// Upper bound on concurrently active partitions the storage manager
    /// tolerates (the paper quotes "hundreds", optimistically 1000).
    pub max_io_partitions: usize,
}

impl Default for CachePartConfig {
    fn default() -> Self {
        CachePartConfig {
            cache_budget: 256 * 1024,
            mem_budget: 50 * 1024 * 1024,
            io_partition_scheme: PartitionScheme::combined_default(),
            mem_partition_scheme: PartitionScheme::combined_default(),
            join_scheme: JoinScheme::Simple,
            max_io_partitions: 1000,
        }
    }
}

/// Error returned when "direct cache" cannot apply.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TooManyPartitions {
    /// Partitions the relation would need.
    pub needed: usize,
    /// What the storage manager tolerates.
    pub max: usize,
}

impl std::fmt::Display for TooManyPartitions {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "direct cache partitioning needs {} active partitions, storage manager handles {}",
            self.needed, self.max
        )
    }
}

impl std::error::Error for TooManyPartitions {}

/// **Direct cache**, partition phase: split both relations straight into
/// cache-sized partitions. Fails when the partition count exceeds what
/// the storage manager can keep active (the paper's hard ~1 GB limit).
pub fn direct_cache_partition<M: MemoryModel>(
    mem: &mut M,
    cfg: &CachePartConfig,
    build: &Relation,
    probe: &Relation,
) -> Result<(Vec<Relation>, Vec<Relation>, usize), TooManyPartitions> {
    let p = plan::num_partitions(build.size_bytes(), cfg.cache_budget);
    if p > cfg.max_io_partitions {
        return Err(TooManyPartitions { needed: p, max: cfg.max_io_partitions });
    }
    let bp = partition_relation(mem, cfg.io_partition_scheme, build, p, false);
    let pp = partition_relation(mem, cfg.io_partition_scheme, probe, p, false);
    Ok((bp, pp, p))
}

/// **Direct cache**, join phase: join each cache-resident pair.
pub fn direct_cache_join<M: MemoryModel, S: JoinSink>(
    mem: &mut M,
    cfg: &CachePartConfig,
    build_parts: &[Relation],
    probe_parts: &[Relation],
    num_partitions: usize,
    sink: &mut S,
) {
    let params = JoinParams { scheme: cfg.join_scheme, use_stored_hash: true };
    for (bp, pp) in build_parts.iter().zip(probe_parts) {
        join_pair(mem, &params, bp, pp, num_partitions, sink);
    }
}

/// **Two-step cache**, partition phase: memory-sized I/O partitions (same
/// as GRACE).
pub fn two_step_partition<M: MemoryModel>(
    mem: &mut M,
    cfg: &CachePartConfig,
    build: &Relation,
    probe: &Relation,
) -> (Vec<Relation>, Vec<Relation>, usize) {
    let p = plan::num_partitions(build.size_bytes(), cfg.mem_budget);
    let bp = partition_relation(mem, cfg.io_partition_scheme, build, p, false);
    let pp = partition_relation(mem, cfg.io_partition_scheme, probe, p, false);
    (bp, pp, p)
}

/// **Two-step cache**, join phase: re-partition each memory-sized pair
/// into cache-sized sub-partitions in memory (the extra copying pass,
/// counted as join-phase time per §7.5), then join the sub-pairs.
pub fn two_step_join<M: MemoryModel, S: JoinSink>(
    mem: &mut M,
    cfg: &CachePartConfig,
    build_parts: &[Relation],
    probe_parts: &[Relation],
    num_io_partitions: usize,
    sink: &mut S,
) {
    let params = JoinParams { scheme: cfg.join_scheme, use_stored_hash: true };
    for (bp, pp) in build_parts.iter().zip(probe_parts) {
        let pc = plan::num_partitions(bp.size_bytes(), cfg.cache_budget);
        if pc <= 1 {
            join_pair(mem, &params, bp, pp, num_io_partitions, sink);
            continue;
        }
        // Second partition pass: intermediate partitions carry stashed
        // hash codes, so the re-partition reuses them.
        let sub_b = partition_relation(mem, cfg.mem_partition_scheme, bp, pc, true);
        let sub_p = partition_relation(mem, cfg.mem_partition_scheme, pp, pc, true);
        for (sb, sp) in sub_b.iter().zip(&sub_p) {
            // Bucket count must be coprime to *both* moduli applied so
            // far; the product covers both.
            join_pair(mem, &params, sb, sp, num_io_partitions * pc, sink);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grace::{grace_join_with_sink, GraceConfig};
    use crate::sink::CountSink;
    use phj_memsim::NativeModel;
    use phj_storage::{RelationBuilder, Schema};

    fn rel(keys: &[u32], size: usize) -> Relation {
        let schema = Schema::key_payload(size);
        let mut b = RelationBuilder::new(schema);
        let mut t = vec![0u8; size];
        for &k in keys {
            t[..4].copy_from_slice(&k.to_le_bytes());
            b.push(&t);
        }
        b.finish()
    }

    fn small_cfg() -> CachePartConfig {
        CachePartConfig {
            cache_budget: 8 * 1024,
            mem_budget: 32 * 1024,
            ..Default::default()
        }
    }

    fn reference(build: &Relation, probe: &Relation) -> CountSink {
        let mut mem = NativeModel;
        let mut sink = CountSink::new();
        grace_join_with_sink(
            &mut mem,
            &GraceConfig { mem_budget: 32 * 1024, ..Default::default() },
            build,
            probe,
            &mut sink,
        );
        sink
    }

    #[test]
    fn direct_cache_agrees_with_grace() {
        let build = rel(&(0..3000).collect::<Vec<_>>(), 24);
        let probe = rel(&(1500..4500).collect::<Vec<_>>(), 24);
        let mut mem = NativeModel;
        let cfg = small_cfg();
        let (bp, pp, p) = direct_cache_partition(&mut mem, &cfg, &build, &probe).unwrap();
        assert!(p > 4, "cache-sized partitions should be many, got {p}");
        let mut sink = CountSink::new();
        direct_cache_join(&mut mem, &cfg, &bp, &pp, p, &mut sink);
        assert_eq!(sink, reference(&build, &probe));
    }

    #[test]
    fn two_step_agrees_with_grace() {
        let build = rel(&(0..3000).collect::<Vec<_>>(), 24);
        let probe = rel(&(1500..4500).collect::<Vec<_>>(), 24);
        let mut mem = NativeModel;
        let cfg = small_cfg();
        let (bp, pp, p) = two_step_partition(&mut mem, &cfg, &build, &probe);
        assert!(p > 1);
        let mut sink = CountSink::new();
        two_step_join(&mut mem, &cfg, &bp, &pp, p, &mut sink);
        assert_eq!(sink, reference(&build, &probe));
    }

    #[test]
    fn direct_cache_respects_partition_limit() {
        let build = rel(&(0..2000).collect::<Vec<_>>(), 100);
        let probe = rel(&(0..2000).collect::<Vec<_>>(), 100);
        let cfg = CachePartConfig {
            cache_budget: 8 * 1024,
            max_io_partitions: 3,
            ..Default::default()
        };
        let mut mem = NativeModel;
        let err = match direct_cache_partition(&mut mem, &cfg, &build, &probe) {
            Err(e) => e,
            Ok(_) => panic!("expected TooManyPartitions"),
        };
        assert!(err.needed > 3);
        assert_eq!(err.max, 3);
    }
}
