//! Hash-based group-by / aggregation with prefetching.
//!
//! The paper's conclusion (§8) claims the techniques "can improve other
//! hash-based algorithms such as hash-based group-by and aggregation
//! algorithms". This module substantiates that: a grouping operator
//! (COUNT(*) + SUM(expr) per key) over the same slotted-page relations,
//! with the same four schemes.
//!
//! The dependency structure per input tuple is the join build's plus a
//! read-modify-write: hash the group key → visit the bucket header →
//! (maybe) visit the entry array → update or insert the group entry.
//! Because an update *mutates* shared state, the staged schemes reuse the
//! build-side conflict machinery: a busy flag guards a bucket from stage 1
//! until the tuple's update lands; conflicting tuples are delayed to the
//! group boundary (group prefetching) or parked on waiting queues
//! (software pipelining), exactly as in §4.4 / §5.3.

mod table;

pub use table::{AggEntry, AggTable, UpsertStep};

use phj_memsim::{MemoryModel, RegionKind};
use phj_storage::{tuple::key_bytes_of, Relation};

use crate::cost;
use crate::hash::hash_key;
use crate::join::Scan;
use crate::model::swp_state_slots;
use crate::profile;

/// Which aggregation algorithm to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggScheme {
    /// One tuple at a time, no prefetching.
    Baseline,
    /// Prefetch each input page after reading it.
    Simple,
    /// Group prefetching with group size `g`.
    Group {
        /// Group size `G`.
        g: usize,
    },
    /// Software-pipelined prefetching with prefetch distance `d`.
    Swp {
        /// Prefetch distance `D`.
        d: usize,
    },
}

/// Aggregate `input` by join key: COUNT(*) and SUM(`extract(tuple)`).
///
/// `buckets` sizes the hash table (≈ expected distinct keys). The
/// extractor is the aggregated expression; its evaluation is charged as
/// part of the per-tuple stage cost.
///
/// ```
/// use phj::aggregate::{aggregate, AggScheme};
/// use phj::hash::hash_key;
/// use phj_memsim::NativeModel;
/// use phj_storage::{RelationBuilder, Schema};
///
/// let mut b = RelationBuilder::new(Schema::key_payload(12));
/// for i in 0u32..100 {
///     let mut t = [0u8; 12];
///     t[..4].copy_from_slice(&(i % 10).to_le_bytes());
///     t[4] = 1;
///     b.push(&t);
/// }
/// let input = b.finish();
/// let table = aggregate(
///     &mut NativeModel,
///     AggScheme::Group { g: 8 },
///     &input,
///     13,
///     |t| t[4] as i64,
/// );
/// assert_eq!(table.num_groups(), 10);
/// let key = 3u32.to_le_bytes();
/// let e = table.lookup(hash_key(&key), &key).unwrap();
/// assert_eq!((e.count, e.sum), (10, 10));
/// ```
pub fn aggregate<M, F>(
    mem: &mut M,
    scheme: AggScheme,
    input: &Relation,
    buckets: usize,
    extract: F,
) -> AggTable
where
    M: MemoryModel,
    F: Fn(&[u8]) -> i64,
{
    aggregate_page_range(mem, scheme, input, 0..input.num_pages(), buckets, extract)
}

/// [`aggregate`] over only the pages in `pages` — the morsel a parallel
/// aggregation hands to one worker. Each worker aggregates its page
/// ranges into a private table; [`AggTable::merge_from`] folds the
/// per-worker tables together at the barrier, reproducing the sequential
/// result exactly (COUNT and SUM are commutative and associative).
pub fn aggregate_page_range<M, F>(
    mem: &mut M,
    scheme: AggScheme,
    input: &Relation,
    pages: std::ops::Range<usize>,
    buckets: usize,
    extract: F,
) -> AggTable
where
    M: MemoryModel,
    F: Fn(&[u8]) -> i64,
{
    let pages = pages.start.min(input.num_pages())..pages.end.min(input.num_pages());
    // Worst case every tuple is a distinct group; the arena reservation
    // must cover that (plus doubling waste, handled inside AggTable).
    let expect: usize = pages
        .clone()
        .map(|pi| input.page(pi).nslots() as usize)
        .sum();
    let mut table = AggTable::new(buckets, expect);
    if profile::profiling(mem) {
        let (addr, len) = table.headers_span();
        mem.region_register(RegionKind::HashBucketHeaders, addr, len);
        let (addr, len) = table.arena_span();
        mem.region_register(RegionKind::HashCells, addr, len);
    }
    profile::register_relation(mem, RegionKind::SlottedPages, input);
    match scheme {
        AggScheme::Baseline => straight(mem, input, pages, &mut table, &extract, false),
        AggScheme::Simple => straight(mem, input, pages, &mut table, &extract, true),
        AggScheme::Group { g } => group(mem, input, pages, &mut table, &extract, g),
        AggScheme::Swp { d } => swp(mem, input, pages, &mut table, &extract, d),
    }
    table.assert_quiescent();
    mem.region_clear(RegionKind::HashBucketHeaders);
    mem.region_clear(RegionKind::HashCells);
    mem.region_clear(RegionKind::SlottedPages);
    table
}

/// Hash + key of one input tuple (group keys are the join-key bytes).
#[inline]
fn tuple_hash_key(input: &Relation, pi: usize, slot: u16) -> (u32, &[u8]) {
    let t = input.page(pi).tuple(slot);
    let key = key_bytes_of(input.schema(), t);
    (hash_key(key), key)
}

/// Straight-line upsert of one tuple, all memory accesses charged. Also
/// the conflict-resolution path of the staged variants (bucket warm).
fn upsert_one<M: MemoryModel, F: Fn(&[u8]) -> i64>(
    mem: &mut M,
    table: &mut AggTable,
    input: &Relation,
    pi: usize,
    slot: u16,
    extract: &F,
) {
    let (hash, key) = tuple_hash_key(input, pi, slot);
    let value = extract(input.page(pi).tuple(slot));
    mem.busy(cost::AGG_EXTRACT);
    let b = table.bucket_of(hash);
    mem.visit(table.header_addr(b), AggTable::header_len());
    mem.busy(cost::HEADER_CHECK);
    let mut grown = 0usize;
    match table.begin_upsert(b, hash, key, 0, &mut grown) {
        UpsertStep::UpdatedInline | UpsertStep::InsertedInline => {
            mem.write(table.header_addr(b), AggTable::header_len());
            mem.busy(cost::CELL_WRITE);
            table.apply_pending(b, value);
        }
        UpsertStep::TouchEntry(idx) => {
            if grown > 0 {
                let (addr, len) = table.array_span(b).expect("grown implies array");
                mem.visit(addr, len.min(grown));
                mem.busy(cost::copy_cost(grown));
            }
            let (addr, len) = table.array_span(b).expect("overflow entry implies array");
            mem.visit(addr, len);
            mem.busy(cost::CELL_CHECK * table.overflow_len(b).max(1) as u64);
            mem.write(table.entry_addr(idx), AggTable::entry_len());
            mem.busy(cost::CELL_WRITE);
            table.finish_overflow_upsert(b, idx, value);
        }
        UpsertStep::Busy(_) => unreachable!("straight-line upsert is atomic"),
    }
}

fn straight<M: MemoryModel, F: Fn(&[u8]) -> i64>(
    mem: &mut M,
    input: &Relation,
    pages: std::ops::Range<usize>,
    table: &mut AggTable,
    extract: &F,
    prefetch_input: bool,
) {
    let mut scan = Scan::range(input, prefetch_input, pages);
    while let Some((pi, slot)) = scan.next(mem) {
        mem.busy(cost::code0_cost(false));
        upsert_one(mem, table, input, pi, slot, extract);
    }
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum AggState {
    Done,
    /// Scan/update/insert within the overflow array at stage 2.
    Touch(u32),
    /// Bucket busy (group: resolve at boundary; swp: waiting queue).
    Parked,
}

struct AggSlot {
    pi: usize,
    slot: u16,
    hash: u32,
    bucket: usize,
    value: i64,
    state: AggState,
    next_waiting: u32,
}

impl AggSlot {
    fn fresh() -> Self {
        AggSlot {
            pi: 0,
            slot: 0,
            hash: 0,
            bucket: 0,
            value: 0,
            state: AggState::Done,
            next_waiting: NIL,
        }
    }
}

const NIL: u32 = u32::MAX;

fn group<M: MemoryModel, F: Fn(&[u8]) -> i64>(
    mem: &mut M,
    input: &Relation,
    pages: std::ops::Range<usize>,
    table: &mut AggTable,
    extract: &F,
    g: usize,
) {
    let g = g.max(2);
    let mut slots: Vec<AggSlot> = (0..g).map(|_| AggSlot::fresh()).collect();
    let mut delayed: Vec<usize> = Vec::new();
    let mut scan = Scan::range(input, true, pages);
    loop {
        // Stage 0: hash the group key, prefetch the bucket header.
        let mut n = 0usize;
        delayed.clear();
        for s in slots.iter_mut().take(g) {
            let Some((pi, slot)) = scan.next(mem) else { break };
            mem.busy(cost::code0_cost(false) + cost::AGG_EXTRACT + cost::STAGE_BOOKKEEPING);
            let (hash, _) = tuple_hash_key(input, pi, slot);
            s.pi = pi;
            s.slot = slot;
            s.hash = hash;
            s.bucket = table.bucket_of(hash);
            s.value = extract(input.page(pi).tuple(slot));
            s.state = AggState::Done;
            mem.prefetch(table.header_addr(s.bucket), AggTable::header_len());
            n += 1;
        }
        if n == 0 {
            break;
        }
        // Stage 1: examine headers; update/insert inline groups, or
        // prefetch the entry array for stage 2.
        for (i, s) in slots.iter_mut().enumerate().take(n) {
            mem.visit(table.header_addr(s.bucket), AggTable::header_len());
            mem.busy(cost::HEADER_CHECK + cost::STAGE_BOOKKEEPING);
            let key_tuple = input.page(s.pi).tuple(s.slot);
            let key = key_bytes_of(input.schema(), key_tuple);
            let mut grown = 0usize;
            match table.begin_upsert(s.bucket, s.hash, key, i as u32, &mut grown) {
                UpsertStep::UpdatedInline | UpsertStep::InsertedInline => {
                    mem.write(table.header_addr(s.bucket), AggTable::header_len());
                    mem.busy(cost::CELL_WRITE);
                    table.apply_pending(s.bucket, s.value);
                }
                UpsertStep::TouchEntry(idx) => {
                    if grown > 0 {
                        let (addr, len) = table.array_span(s.bucket).expect("array");
                        mem.visit(addr, len.min(grown));
                        mem.busy(cost::copy_cost(grown));
                    }
                    let (addr, len) = table.array_span(s.bucket).expect("array");
                    mem.prefetch(addr, len);
                    s.state = AggState::Touch(idx);
                }
                UpsertStep::Busy(_) => {
                    mem.other(cost::BRANCH_MISS);
                    s.state = AggState::Parked;
                    delayed.push(i);
                }
            }
        }
        // Stage 2: scan arrays, land the updates/inserts.
        for s in slots.iter_mut().take(n) {
            mem.busy(cost::STAGE_BOOKKEEPING);
            if let AggState::Touch(idx) = s.state {
                let (addr, len) = table.array_span(s.bucket).expect("array");
                mem.visit(addr, len);
                mem.busy(cost::CELL_CHECK * table.overflow_len(s.bucket).max(1) as u64);
                mem.write(table.entry_addr(idx), AggTable::entry_len());
                mem.busy(cost::CELL_WRITE);
                table.finish_overflow_upsert(s.bucket, idx, s.value);
                s.state = AggState::Done;
            }
        }
        // Group boundary: conflicting tuples re-run warm.
        for &i in &delayed {
            let s = &slots[i];
            upsert_one(mem, table, input, s.pi, s.slot, extract);
            slots[i].state = AggState::Done;
        }
        if n < g {
            break;
        }
    }
}

fn swp<M: MemoryModel, F: Fn(&[u8]) -> i64>(
    mem: &mut M,
    input: &Relation,
    pages: std::ops::Range<usize>,
    table: &mut AggTable,
    extract: &F,
    d: usize,
) {
    let d = d.max(1);
    let size = swp_state_slots(2, d);
    let mask = size - 1;
    let mut slots: Vec<AggSlot> = (0..size).map(|_| AggSlot::fresh()).collect();
    let mut scan = Scan::range(input, true, pages);
    let mut total: Option<usize> = None;
    let mut it = 0usize;
    let bk = cost::STAGE_BOOKKEEPING + cost::SWP_EXTRA;
    loop {
        // Stage 0 for element `it`.
        if total.is_none() {
            match scan.next(mem) {
                Some((pi, slot)) => {
                    let me = it & mask;
                    mem.busy(cost::code0_cost(false) + cost::AGG_EXTRACT + bk);
                    let (hash, _) = tuple_hash_key(input, pi, slot);
                    let s = &mut slots[me];
                    debug_assert_eq!(s.state, AggState::Done, "slot reused too early");
                    s.pi = pi;
                    s.slot = slot;
                    s.hash = hash;
                    s.bucket = table.bucket_of(hash);
                    s.value = extract(input.page(pi).tuple(slot));
                    s.next_waiting = NIL;
                    mem.prefetch(table.header_addr(s.bucket), AggTable::header_len());
                }
                None => total = Some(it),
            }
        }
        // Stage 1 for element `it - D`.
        if it >= d {
            let e = it - d;
            if total.is_none_or(|t| e < t) {
                let me = (e & mask) as u32;
                let (bucket, hash, value, pi, slot) = {
                    let s = &slots[me as usize];
                    (s.bucket, s.hash, s.value, s.pi, s.slot)
                };
                mem.visit(table.header_addr(bucket), AggTable::header_len());
                mem.busy(cost::HEADER_CHECK + bk);
                let key_tuple = input.page(pi).tuple(slot);
                let key = key_bytes_of(input.schema(), key_tuple);
                let mut grown = 0usize;
                match table.begin_upsert(bucket, hash, key, me, &mut grown) {
                    UpsertStep::UpdatedInline | UpsertStep::InsertedInline => {
                        mem.write(table.header_addr(bucket), AggTable::header_len());
                        mem.busy(cost::CELL_WRITE);
                        table.apply_pending(bucket, value);
                        slots[me as usize].state = AggState::Done;
                    }
                    UpsertStep::TouchEntry(idx) => {
                        if grown > 0 {
                            let (addr, len) = table.array_span(bucket).expect("array");
                            mem.visit(addr, len.min(grown));
                            mem.busy(cost::copy_cost(grown));
                        }
                        let (addr, len) = table.array_span(bucket).expect("array");
                        mem.prefetch(addr, len);
                        slots[me as usize].state = AggState::Touch(idx);
                    }
                    UpsertStep::Busy(owner) => {
                        mem.other(cost::BRANCH_MISS);
                        mem.busy(cost::SWP_EXTRA);
                        let mut cur = owner;
                        while slots[cur as usize].next_waiting != NIL {
                            cur = slots[cur as usize].next_waiting;
                        }
                        slots[cur as usize].next_waiting = me;
                        slots[me as usize].state = AggState::Parked;
                    }
                }
            }
        }
        // Stage 2 for element `it - 2D`.
        if it >= 2 * d {
            let e = it - 2 * d;
            if total.is_none_or(|t| e < t) {
                let me = e & mask;
                mem.busy(bk);
                if let AggState::Touch(idx) = slots[me].state {
                    let bucket = slots[me].bucket;
                    let (addr, len) = table.array_span(bucket).expect("array");
                    mem.visit(addr, len);
                    mem.busy(cost::CELL_CHECK * table.overflow_len(bucket).max(1) as u64);
                    mem.write(table.entry_addr(idx), AggTable::entry_len());
                    mem.busy(cost::CELL_WRITE);
                    table.finish_overflow_upsert(bucket, idx, slots[me].value);
                    slots[me].state = AggState::Done;
                    // Drain this bucket's waiting queue (warm lines).
                    let mut w = slots[me].next_waiting;
                    slots[me].next_waiting = NIL;
                    while w != NIL {
                        let next = slots[w as usize].next_waiting;
                        slots[w as usize].next_waiting = NIL;
                        debug_assert_eq!(slots[w as usize].state, AggState::Parked);
                        let (pi, slot) = (slots[w as usize].pi, slots[w as usize].slot);
                        upsert_one(mem, table, input, pi, slot, extract);
                        slots[w as usize].state = AggState::Done;
                        w = next;
                    }
                }
            }
        }
        if let Some(t) = total {
            if t == 0 || it >= t - 1 + 2 * d {
                break;
            }
        }
        it += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phj_memsim::{NativeModel, SimEngine};
    use phj_storage::{RelationBuilder, Schema};
    use std::collections::HashMap;

    fn rel(keys: &[u32]) -> Relation {
        let schema = Schema::key_payload(16);
        let mut b = RelationBuilder::new(schema);
        let mut t = [0u8; 16];
        for (i, &k) in keys.iter().enumerate() {
            t[..4].copy_from_slice(&k.to_le_bytes());
            t[4..12].copy_from_slice(&(i as u64).to_le_bytes());
            b.push(&t);
        }
        b.finish()
    }

    fn extract(t: &[u8]) -> i64 {
        u64::from_le_bytes(t[4..12].try_into().unwrap()) as i64
    }

    fn reference(keys: &[u32]) -> HashMap<u32, (u64, i64)> {
        let mut m = HashMap::new();
        for (i, &k) in keys.iter().enumerate() {
            let e = m.entry(k).or_insert((0u64, 0i64));
            e.0 += 1;
            e.1 += i as i64;
        }
        m
    }

    fn check(table: &AggTable, want: &HashMap<u32, (u64, i64)>) {
        assert_eq!(table.num_groups(), want.len());
        for (&key, &(count, sum)) in want {
            let kb = key.to_le_bytes();
            let e = table.lookup(hash_key(&kb), &kb).expect("group exists");
            assert_eq!(e.count, count, "key {key}");
            assert_eq!(e.sum, sum, "key {key}");
        }
    }

    fn schemes() -> Vec<AggScheme> {
        vec![
            AggScheme::Baseline,
            AggScheme::Simple,
            AggScheme::Group { g: 2 },
            AggScheme::Group { g: 16 },
            AggScheme::Swp { d: 1 },
            AggScheme::Swp { d: 4 },
        ]
    }

    #[test]
    fn all_schemes_match_reference() {
        let keys: Vec<u32> = (0..3000u32).map(|i| i % 257).collect();
        let input = rel(&keys);
        let want = reference(&keys);
        for scheme in schemes() {
            let mut mem = NativeModel;
            let table = aggregate(&mut mem, scheme, &input, 301, extract);
            check(&table, &want);
        }
    }

    #[test]
    fn single_hot_key_forces_conflicts() {
        let keys = vec![42u32; 500];
        let input = rel(&keys);
        let want = reference(&keys);
        for scheme in schemes() {
            let mut mem = NativeModel;
            let table = aggregate(&mut mem, scheme, &input, 7, extract);
            check(&table, &want);
        }
    }

    #[test]
    fn distinct_keys_only_inserts() {
        let keys: Vec<u32> = (0..1000u32).collect();
        let input = rel(&keys);
        let want = reference(&keys);
        for scheme in schemes() {
            let mut mem = NativeModel;
            let table = aggregate(&mut mem, scheme, &input, 1009, extract);
            check(&table, &want);
        }
    }

    #[test]
    fn empty_input() {
        let input = rel(&[]);
        let mut mem = NativeModel;
        let table = aggregate(&mut mem, AggScheme::Group { g: 8 }, &input, 16, extract);
        assert_eq!(table.num_groups(), 0);
    }

    #[test]
    fn staged_schemes_beat_baseline_in_sim() {
        // Many distinct keys over a large table: every upsert misses.
        let keys: Vec<u32> = (0..40_000u32).map(|i| i.wrapping_mul(2654435761)).collect();
        let input = rel(&keys);
        let time = |scheme| {
            let mut mem = SimEngine::paper();
            let t = aggregate(&mut mem, scheme, &input, 40_009, extract);
            assert!(t.num_groups() > 0);
            mem.breakdown().total()
        };
        let base = time(AggScheme::Baseline);
        let grp = time(AggScheme::Group { g: 16 });
        let swp = time(AggScheme::Swp { d: 2 });
        assert!(grp * 3 < base * 2, "group {grp} vs baseline {base}");
        assert!(swp * 3 < base * 2, "swp {swp} vs baseline {base}");
    }
}
