//! The aggregation hash table: Figure-2 structure with group entries.
//!
//! Same bucket anatomy as the join's [`crate::table::HashTable`] — an
//! inline first entry in the header, overflow entries in a growable
//! arena-backed array — but the cells are **group entries** carrying the
//! grouping key (inline, ≤ 8 bytes) and the running COUNT/SUM
//! accumulators, and the insert protocol is an **upsert**: stage 1 only
//! examines the header (and guarantees capacity so stage 2's addresses
//! are prefetchable); the match-or-append resolution happens in stage 2
//! when the entry array is actually visited.

/// Maximum inline group-key length in bytes.
pub const MAX_KEY: usize = 8;

/// Sentinel for "no overflow array".
const NO_ARRAY: u32 = u32::MAX;
/// Sentinel for "bucket not busy".
const NOT_BUSY: u32 = 0;

/// One group's entry: key, hash-code filter, and accumulators. 32 bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(C)]
pub struct AggEntry {
    /// Hash code of the group key.
    pub hash: u32,
    /// Length of the key bytes.
    pub key_len: u8,
    key: [u8; MAX_KEY],
    pad: [u8; 3],
    /// COUNT(*) of the group.
    pub count: u64,
    /// SUM(expr) of the group.
    pub sum: i64,
}

impl AggEntry {
    fn new(hash: u32, key: &[u8]) -> Self {
        assert!(key.len() <= MAX_KEY, "group keys longer than 8 bytes unsupported");
        let mut k = [0u8; MAX_KEY];
        k[..key.len()].copy_from_slice(key);
        AggEntry { hash, key_len: key.len() as u8, key: k, pad: [0; 3], count: 0, sum: 0 }
    }

    /// The group's key bytes.
    pub fn key(&self) -> &[u8] {
        &self.key[..self.key_len as usize]
    }

    #[inline]
    fn matches(&self, hash: u32, key: &[u8]) -> bool {
        self.hash == hash && self.key() == key
    }

    #[inline]
    fn accumulate(&mut self, value: i64) {
        self.count += 1;
        self.sum += value;
    }
}

const EMPTY_ENTRY: AggEntry = AggEntry {
    hash: 0,
    key_len: 0,
    key: [0; MAX_KEY],
    pad: [0; 3],
    count: 0,
    sum: 0,
};

#[derive(Debug, Clone, Copy)]
#[repr(C)]
struct AggHeader {
    inline: AggEntry,
    count: u32,
    busy: u32,
    array: u32,
    cap: u32,
}

const EMPTY_HEADER: AggHeader = AggHeader {
    inline: EMPTY_ENTRY,
    count: 0,
    busy: NOT_BUSY,
    array: NO_ARRAY,
    cap: 0,
};

/// Outcome of stage-1 header examination for an upsert.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UpsertStep {
    /// The inline entry matched; accumulate via
    /// [`AggTable::apply_pending`].
    UpdatedInline,
    /// The bucket was empty; a fresh inline entry was created —
    /// accumulate via [`AggTable::apply_pending`].
    InsertedInline,
    /// Scan the overflow array in stage 2 and call
    /// [`AggTable::finish_overflow_upsert`]; if no entry matches, the new
    /// group lands at this (pre-reserved, prefetchable) arena index.
    TouchEntry(u32),
    /// Another in-flight upsert owns this bucket.
    Busy(u32),
}

/// Hash table of group entries.
pub struct AggTable {
    buckets: Vec<AggHeader>,
    arena: Vec<AggEntry>,
    groups: usize,
    initial_cap: u32,
}

impl AggTable {
    /// A table with `num_buckets` buckets, reserving arena space for about
    /// `expected_groups` groups.
    pub fn new(num_buckets: usize, expected_groups: usize) -> Self {
        assert!(num_buckets > 0);
        let arena = Vec::with_capacity(expected_groups.saturating_mul(4).max(64));
        AggTable {
            buckets: vec![EMPTY_HEADER; num_buckets],
            arena,
            groups: 0,
            initial_cap: 2,
        }
    }

    /// Number of distinct groups.
    pub fn num_groups(&self) -> usize {
        self.groups
    }

    /// Bucket number for a hash code.
    #[inline]
    pub fn bucket_of(&self, hash: u32) -> usize {
        crate::hash::bucket_of(hash, self.buckets.len())
    }

    /// Address of bucket `b`'s header (prefetch hook).
    #[inline]
    pub fn header_addr(&self, b: usize) -> usize {
        self.buckets.as_ptr() as usize + b * std::mem::size_of::<AggHeader>()
    }

    /// Header size in bytes.
    pub fn header_len() -> usize {
        std::mem::size_of::<AggHeader>()
    }

    /// Entry size in bytes.
    pub fn entry_len() -> usize {
        std::mem::size_of::<AggEntry>()
    }

    /// Address of arena entry `idx` (prefetch hook).
    #[inline]
    pub fn entry_addr(&self, idx: u32) -> usize {
        self.arena.as_ptr() as usize + idx as usize * std::mem::size_of::<AggEntry>()
    }

    /// Address span of the bucket-header array (region attribution).
    pub fn headers_span(&self) -> (usize, usize) {
        (self.buckets.as_ptr() as usize, self.buckets.len() * std::mem::size_of::<AggHeader>())
    }

    /// Address span of the entry arena's full reservation (region
    /// attribution). The arena never outgrows its reservation
    /// ([`Self::assert_quiescent`] checks), so the span stays valid.
    pub fn arena_span(&self) -> (usize, usize) {
        (self.arena.as_ptr() as usize, self.arena.capacity() * std::mem::size_of::<AggEntry>())
    }

    /// Overflow-array span of bucket `b` (address, bytes), if any entries
    /// or reserved capacity exist.
    pub fn array_span(&self, b: usize) -> Option<(usize, usize)> {
        let h = &self.buckets[b];
        if h.array == NO_ARRAY {
            return None;
        }
        let n = (h.count.max(1) - 1).max(1) as usize;
        Some((self.entry_addr(h.array), n * std::mem::size_of::<AggEntry>()))
    }

    /// Number of overflow entries in bucket `b`.
    pub fn overflow_len(&self, b: usize) -> usize {
        (self.buckets[b].count.max(1) - 1) as usize
    }

    /// Stage 1: examine the header. Sets the busy word when the upsert
    /// must continue into the overflow array (released by
    /// [`Self::finish_overflow_upsert`]). Growth copy bytes are reported
    /// via `grown`.
    pub fn begin_upsert(
        &mut self,
        b: usize,
        hash: u32,
        key: &[u8],
        owner: u32,
        grown: &mut usize,
    ) -> UpsertStep {
        let hdr = self.buckets[b];
        if hdr.busy != NOT_BUSY {
            return UpsertStep::Busy(hdr.busy - 1);
        }
        if hdr.count == 0 {
            let h = &mut self.buckets[b];
            h.inline = AggEntry::new(hash, key);
            h.count = 1;
            self.groups += 1;
            return UpsertStep::InsertedInline;
        }
        if hdr.inline.matches(hash, key) {
            return UpsertStep::UpdatedInline;
        }
        // Continue into the overflow array; guarantee capacity for a
        // possible append so stage 2's addresses are fixed now.
        let over = (hdr.count - 1) as usize;
        let (mut array, mut cap) = (hdr.array, hdr.cap);
        if array == NO_ARRAY {
            cap = self.initial_cap;
            array = self.alloc(cap as usize);
        } else if over as u32 == cap {
            let new_cap = cap * 2;
            let new = self.alloc(new_cap as usize);
            for i in 0..cap {
                self.arena[(new + i) as usize] = self.arena[(array + i) as usize];
            }
            *grown += cap as usize * std::mem::size_of::<AggEntry>();
            array = new;
            cap = new_cap;
        }
        let h = &mut self.buckets[b];
        h.busy = owner + 1;
        h.array = array;
        h.cap = cap;
        // Stash the pending (hash, key) in the reserved slot itself —
        // stage 2 needs them and there may be one in-flight upsert per
        // bucket. The slot is beyond `count`, so lookups never see it;
        // the accumulators stay zero until the upsert commits. (In the
        // C engine this state lives in the per-element state array.)
        let idx = array + over as u32;
        self.arena[idx as usize] = AggEntry::new(hash, key);
        UpsertStep::TouchEntry(idx)
    }

    /// Accumulate into the inline entry after `UpdatedInline` /
    /// `InsertedInline`.
    pub fn apply_pending(&mut self, b: usize, value: i64) {
        let h = &mut self.buckets[b];
        debug_assert!(h.count >= 1);
        h.inline.accumulate(value);
    }

    /// Stage 2: scan the overflow array for the pending `(hash, key)`
    /// stashed at `idx` by [`Self::begin_upsert`]; accumulate into the
    /// matching entry, or commit the new group at `idx`. Releases the
    /// busy word.
    pub fn finish_overflow_upsert(&mut self, b: usize, idx: u32, value: i64) {
        self.finish_overflow_acc(b, idx, 1, value)
    }

    /// [`Self::finish_overflow_upsert`] generalized to fold in a whole
    /// group's accumulators at once (table merging).
    fn finish_overflow_acc(&mut self, b: usize, idx: u32, count: u64, sum: i64) {
        let (array, over) = {
            let h = &self.buckets[b];
            debug_assert_ne!(h.busy, NOT_BUSY, "finish without begin");
            debug_assert_eq!(h.array + (h.count - 1), idx, "stale reservation");
            (h.array, (h.count - 1) as usize)
        };
        let pending = self.arena[idx as usize];
        for i in 0..over {
            let e = &mut self.arena[(array + i as u32) as usize];
            if e.matches(pending.hash, pending.key()) {
                e.count += count;
                e.sum += sum;
                let h = &mut self.buckets[b];
                h.busy = NOT_BUSY;
                return;
            }
        }
        let e = &mut self.arena[idx as usize];
        e.count += count;
        e.sum += sum;
        let h = &mut self.buckets[b];
        h.count += 1;
        h.busy = NOT_BUSY;
        self.groups += 1;
    }

    /// Fold every group of `other` into this table. No memory model is
    /// charged: merging per-worker tables happens at the parallel
    /// barrier, off the simulated (and measured) per-tuple path. The
    /// result equals aggregating the concatenated inputs sequentially —
    /// COUNT and SUM are commutative and associative.
    pub fn merge_from(&mut self, other: &AggTable) {
        for e in other.iter() {
            let b = self.bucket_of(e.hash);
            let mut grown = 0usize;
            match self.begin_upsert(b, e.hash, e.key(), 0, &mut grown) {
                UpsertStep::UpdatedInline => {
                    let h = &mut self.buckets[b];
                    h.inline.count += e.count;
                    h.inline.sum += e.sum;
                }
                UpsertStep::InsertedInline => {
                    let h = &mut self.buckets[b];
                    // The fresh inline entry starts zeroed; install the
                    // merged group's accumulators directly.
                    h.inline.count = e.count;
                    h.inline.sum = e.sum;
                }
                UpsertStep::TouchEntry(idx) => {
                    self.finish_overflow_acc(b, idx, e.count, e.sum)
                }
                UpsertStep::Busy(_) => unreachable!("merge is single-threaded"),
            }
        }
    }

    /// Look up a group by hash and key.
    pub fn lookup(&self, hash: u32, key: &[u8]) -> Option<&AggEntry> {
        let h = &self.buckets[self.bucket_of(hash)];
        if h.count == 0 {
            return None;
        }
        if h.inline.matches(hash, key) {
            return Some(&h.inline);
        }
        if h.array == NO_ARRAY {
            return None;
        }
        self.arena[h.array as usize..(h.array + h.count - 1) as usize]
            .iter()
            .find(|e| e.matches(hash, key))
    }

    /// Iterate all group entries.
    pub fn iter(&self) -> impl Iterator<Item = &AggEntry> + '_ {
        self.buckets.iter().flat_map(move |h| {
            let inline = (h.count > 0).then_some(&h.inline);
            let over = if h.array == NO_ARRAY || h.count <= 1 {
                &[][..]
            } else {
                &self.arena[h.array as usize..(h.array + h.count - 1) as usize]
            };
            inline.into_iter().chain(over.iter())
        })
    }

    /// Assert every busy word is released.
    pub fn assert_quiescent(&self) {
        for (b, h) in self.buckets.iter().enumerate() {
            assert_eq!(h.busy, NOT_BUSY, "bucket {b} left busy");
        }
    }

    fn alloc(&mut self, n: usize) -> u32 {
        let off = self.arena.len();
        debug_assert!(
            off + n <= self.arena.capacity(),
            "agg arena reservation exceeded"
        );
        self.arena.resize(off + n, EMPTY_ENTRY);
        off as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entry_and_header_sizes() {
        assert_eq!(std::mem::size_of::<AggEntry>(), 32);
        assert_eq!(std::mem::size_of::<AggHeader>(), 48);
    }

    #[test]
    fn inline_upsert_cycle() {
        let mut t = AggTable::new(4, 8);
        let b = t.bucket_of(9);
        let mut grown = 0;
        assert_eq!(t.begin_upsert(b, 9, b"k", 0, &mut grown), UpsertStep::InsertedInline);
        t.apply_pending(b, 5);
        assert_eq!(t.begin_upsert(b, 9, b"k", 0, &mut grown), UpsertStep::UpdatedInline);
        t.apply_pending(b, 7);
        let e = t.lookup(9, b"k").unwrap();
        assert_eq!((e.count, e.sum), (2, 12));
        assert_eq!(t.num_groups(), 1);
        t.assert_quiescent();
    }

    #[test]
    fn overflow_upsert_finds_and_appends() {
        let mut t = AggTable::new(1, 16);
        let mut grown = 0;
        // First key inline.
        assert_eq!(t.begin_upsert(0, 1, b"a", 0, &mut grown), UpsertStep::InsertedInline);
        t.apply_pending(0, 10);
        // Second key goes to overflow (append path).
        let step = t.begin_upsert(0, 2, b"b", 3, &mut grown);
        let idx = match step {
            UpsertStep::TouchEntry(i) => i,
            other => panic!("{other:?}"),
        };
        // Busy while in flight.
        assert_eq!(t.begin_upsert(0, 3, b"c", 9, &mut grown), UpsertStep::Busy(3));
        t.finish_overflow_upsert(0, idx, 20);
        assert_eq!(t.num_groups(), 2);
        // Update path through the overflow array.
        let step = t.begin_upsert(0, 2, b"b", 0, &mut grown);
        let idx = match step {
            UpsertStep::TouchEntry(i) => i,
            other => panic!("{other:?}"),
        };
        t.finish_overflow_upsert(0, idx, 22);
        let e = t.lookup(2, b"b").unwrap();
        assert_eq!((e.count, e.sum), (2, 42));
        assert_eq!(t.num_groups(), 2, "update did not add a group");
        t.assert_quiescent();
    }

    #[test]
    fn key_bytes_disambiguate_hash_collisions() {
        let mut t = AggTable::new(1, 8);
        let mut grown = 0;
        assert_eq!(t.begin_upsert(0, 7, b"x", 0, &mut grown), UpsertStep::InsertedInline);
        t.apply_pending(0, 1);
        // Same hash, different key: a distinct group.
        let idx = match t.begin_upsert(0, 7, b"y", 0, &mut grown) {
            UpsertStep::TouchEntry(i) => i,
            other => panic!("{other:?}"),
        };
        t.finish_overflow_upsert(0, idx, 2);
        assert_eq!(t.num_groups(), 2);
        assert_eq!(t.lookup(7, b"x").unwrap().sum, 1);
        assert_eq!(t.lookup(7, b"y").unwrap().sum, 2);
    }

    #[test]
    fn merge_from_equals_sequential() {
        let upsert = |t: &mut AggTable, k: u32, v: i64| {
            let key = k.to_le_bytes();
            let b = t.bucket_of(k);
            let mut grown = 0;
            match t.begin_upsert(b, k, &key, 0, &mut grown) {
                UpsertStep::InsertedInline | UpsertStep::UpdatedInline => t.apply_pending(b, v),
                UpsertStep::TouchEntry(idx) => t.finish_overflow_upsert(b, idx, v),
                UpsertStep::Busy(_) => unreachable!(),
            }
        };
        // Sequential reference over 40 upserts of 13 keys.
        let mut seq = AggTable::new(3, 64);
        let mut a = AggTable::new(3, 64);
        let mut b = AggTable::new(3, 64);
        for i in 0u32..40 {
            let (k, v) = (i % 13, i as i64);
            upsert(&mut seq, k, v);
            upsert(if i % 2 == 0 { &mut a } else { &mut b }, k, v);
        }
        let mut merged = AggTable::new(3, 64);
        merged.merge_from(&a);
        merged.merge_from(&b);
        assert_eq!(merged.num_groups(), seq.num_groups());
        for e in seq.iter() {
            let m = merged.lookup(e.hash, e.key()).expect("group present");
            assert_eq!((m.count, m.sum), (e.count, e.sum));
        }
        merged.assert_quiescent();
    }

    #[test]
    fn iter_visits_every_group() {
        let mut t = AggTable::new(3, 32);
        let mut grown = 0;
        for k in 0u32..20 {
            let key = k.to_le_bytes();
            let b = t.bucket_of(k);
            match t.begin_upsert(b, k, &key, 0, &mut grown) {
                UpsertStep::InsertedInline | UpsertStep::UpdatedInline => {
                    t.apply_pending(b, k as i64)
                }
                UpsertStep::TouchEntry(idx) => t.finish_overflow_upsert(b, idx, k as i64),
                UpsertStep::Busy(_) => unreachable!(),
            }
        }
        assert_eq!(t.iter().count(), 20);
        let total: i64 = t.iter().map(|e| e.sum).sum();
        assert_eq!(total, (0..20).sum::<i64>());
    }
}
