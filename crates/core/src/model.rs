//! Analytic models: the paper's Theorem 1 and Theorem 2.
//!
//! Given the per-stage costs `C_0..C_k`, the full miss latency `T`, and the
//! pipelined additional-miss latency `T_next`, these predict the minimal
//! group size `G` (group prefetching, §4.2) and prefetch distance `D`
//! (software-pipelined prefetching, §5.1) that fully hide all cache miss
//! latencies. The experiment harness cross-validates them against the
//! simulated parameter sweeps of Fig 12/16 — the predicted knee must fall
//! where the simulated curves flatten.

/// Theorem 1 prediction for group prefetching.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GroupPrediction {
    /// Minimal group size satisfying both inequalities.
    pub g: u64,
    /// Whether the *first* reference of each group can be hidden at all:
    /// false iff `C_0 = 0` (§5.4: "group prefetching achieves this only
    /// when code 0 is not empty").
    pub first_miss_hidden: bool,
}

/// Minimal `G` such that `(G-1)·C_0 ≥ T` and
/// `(G-1)·max{C_i, T_next} ≥ T` for `i = 1..k` (Theorem 1).
///
/// `costs` is `[C_0, C_1, ..., C_k]` with `k ≥ 1`.
///
/// ```
/// use phj::cost::probe_stage_costs;
/// use phj::model::min_group_size;
/// // Table-2 memory system, 100 B tuples: the binding constraint is
/// // (G-1)·T_next ≥ T → G = 16.
/// let g = min_group_size(150, 10, &probe_stage_costs(true, 200));
/// assert_eq!(g.g, 16);
/// assert!(g.first_miss_hidden);
/// ```
///
/// # Panics
/// Panics if `costs.len() < 2` or `t_next == 0`.
pub fn min_group_size(t: u64, t_next: u64, costs: &[u64]) -> GroupPrediction {
    assert!(costs.len() >= 2, "need C_0 and at least one C_i");
    assert!(t_next > 0, "T_next must be positive");
    let c0 = costs[0];
    let first_miss_hidden = c0 > 0;
    let mut need = 0u64;
    if first_miss_hidden {
        need = need.max(t.div_ceil(c0));
    }
    for &c in &costs[1..] {
        need = need.max(t.div_ceil(c.max(t_next)));
    }
    GroupPrediction { g: need + 1, first_miss_hidden }
}

/// Minimal `D` such that
/// `D·(max{C_0 + C_k, T_next} + Σ_{i=1}^{k-1} max{C_i, T_next}) ≥ T`
/// (Theorem 2). `costs` is `[C_0, ..., C_k]`.
///
/// Software pipelining can always hide all latencies (the denominator is
/// ≥ `T_next` > 0), hence a plain `u64`.
///
/// # Panics
/// Panics if `costs.len() < 2` or `t_next == 0`.
pub fn min_prefetch_distance(t: u64, t_next: u64, costs: &[u64]) -> u64 {
    assert!(costs.len() >= 2, "need C_0 and at least one C_i");
    assert!(t_next > 0, "T_next must be positive");
    let k = costs.len() - 1;
    let mut per_iter = (costs[0] + costs[k]).max(t_next);
    for &c in &costs[1..k] {
        per_iter += c.max(t_next);
    }
    t.div_ceil(per_iter).max(1)
}

/// The number of state slots the software pipeline needs: a power of two
/// of at least `k·D + 1` (§5.3: "we ensure the array size is at least
/// kD + 1" and "choose the array size to be a power of 2").
pub fn swp_state_slots(k: usize, d: usize) -> usize {
    (k * d + 1).next_power_of_two()
}

/// The per-iteration latency-hiding capacity of the software pipeline —
/// Theorem 2's denominator,
/// `max{C_0 + C_k, T_next} + Σ_{i=1}^{k-1} max{C_i, T_next}`.
///
/// # Panics
/// Panics if `costs.len() < 2` or `t_next == 0`.
pub fn swp_per_iteration(t_next: u64, costs: &[u64]) -> u64 {
    assert!(costs.len() >= 2, "need C_0 and at least one C_i");
    assert!(t_next > 0, "T_next must be positive");
    let k = costs.len() - 1;
    let mut per_iter = (costs[0] + costs[k]).max(t_next);
    for &c in &costs[1..k] {
        per_iter += c.max(t_next);
    }
    per_iter
}

/// First-order prediction of the fraction of miss latency a *group*
/// prefetching loop hides at group size `g`: per Theorem 1, stage `i`'s
/// miss overlaps `(G-1)·C_0` (for `i = 0`) or `(G-1)·max{C_i, T_next}`
/// cycles of other elements' work, so each stage hides
/// `min(1, (G-1)·coeff_i / T)` of its own `T`, and the loop hides the
/// unweighted mean across stages (each stage suffers about one miss per
/// element). Exactly 1.0 whenever `g ≥` [`min_group_size`]'s prediction.
///
/// # Panics
/// Panics if `costs.len() < 2` or `t_next == 0`.
pub fn group_hidden_fraction(g: u64, t: u64, t_next: u64, costs: &[u64]) -> f64 {
    assert!(costs.len() >= 2, "need C_0 and at least one C_i");
    assert!(t_next > 0, "T_next must be positive");
    if t == 0 {
        return 1.0;
    }
    let overlap = g.saturating_sub(1);
    let mut sum = 0.0;
    for (i, &c) in costs.iter().enumerate() {
        let coeff = if i == 0 { c } else { c.max(t_next) };
        sum += ((overlap * coeff) as f64 / t as f64).min(1.0);
    }
    sum / costs.len() as f64
}

/// First-order prediction of the fraction of miss latency a
/// *software-pipelined* loop hides at prefetch distance `d`: Theorem 2
/// gives `D·per_iter` cycles of overlap per miss
/// ([`swp_per_iteration`]), so the hidden fraction is
/// `min(1, D·per_iter / T)` — exactly 1.0 whenever `d ≥`
/// [`min_prefetch_distance`]'s prediction.
///
/// # Panics
/// Panics if `costs.len() < 2` or `t_next == 0`.
pub fn swp_hidden_fraction(d: u64, t: u64, t_next: u64, costs: &[u64]) -> f64 {
    if t == 0 {
        return 1.0;
    }
    let per_iter = swp_per_iteration(t_next, costs);
    ((d * per_iter) as f64 / t as f64).min(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost;

    #[test]
    fn theorem1_paper_regime() {
        // T = 150, T_next = 10, probe stages with small middle costs:
        // the binding constraint is (G-1)*10 >= 150 → G = 16.
        let costs = cost::probe_stage_costs(true, 200);
        let p = min_group_size(150, 10, &costs);
        assert!(p.first_miss_hidden);
        assert_eq!(p.g, 16);
    }

    #[test]
    fn theorem1_scales_with_latency() {
        // Raising T to 1000 (Fig 12 top curves) pushes the optimum right.
        let costs = cost::probe_stage_costs(true, 200);
        let p150 = min_group_size(150, 10, &costs);
        let p1000 = min_group_size(1000, 66, &costs);
        assert!(p1000.g > p150.g);
    }

    #[test]
    fn theorem1_empty_code0() {
        let p = min_group_size(150, 10, &[0, 8, 8]);
        assert!(!p.first_miss_hidden);
        assert_eq!(p.g, 16); // other inequalities still bound G
    }

    #[test]
    fn theorem1_large_c0_binds_on_middle_stages() {
        // Huge C_0 → only the middle stages matter.
        let p = min_group_size(150, 10, &[1000, 10, 10]);
        assert_eq!(p.g, 16);
    }

    #[test]
    fn theorem2_paper_regime_gives_d1() {
        // 100 B tuples → 200 B output: C_0 + C_3 dominates an iteration
        // and exceeds T = 150, so D = 1, matching §7.3 ("G = 19 and D = 1
        // for probing" at the paper's costs).
        let costs = cost::probe_stage_costs(true, 200);
        assert_eq!(min_prefetch_distance(150, 10, &costs), 1);
    }

    #[test]
    fn theorem2_scales_with_latency() {
        let costs = cost::probe_stage_costs(true, 200);
        let d1000 = min_prefetch_distance(1000, 66, &costs);
        assert!(d1000 > 1);
    }

    #[test]
    fn theorem2_thin_stages_need_distance() {
        // All stages below T_next: per-iteration hiding is k·T_next.
        let d = min_prefetch_distance(150, 10, &[2, 2, 2, 2]);
        // per_iter = max(2+2,10) + max(2,10) + max(2,10) = 30 → D = 5.
        assert_eq!(d, 5);
    }

    #[test]
    fn hidden_fractions_saturate_at_theorem_predictions() {
        let costs = cost::probe_stage_costs(true, 200);
        let g_min = min_group_size(150, 10, &costs).g;
        let d_min = min_prefetch_distance(150, 10, &costs);
        // At (or past) the theorem-predicted parameter, everything hides.
        assert_eq!(group_hidden_fraction(g_min, 150, 10, &costs), 1.0);
        assert_eq!(group_hidden_fraction(g_min + 8, 150, 10, &costs), 1.0);
        assert_eq!(swp_hidden_fraction(d_min, 150, 10, &costs), 1.0);
        // Below it, coverage is partial and monotone in the parameter.
        let f2 = group_hidden_fraction(2, 150, 10, &costs);
        let f8 = group_hidden_fraction(8, 150, 10, &costs);
        assert!(0.0 < f2 && f2 < f8 && f8 < 1.0, "{f2} {f8}");
        // G = 1 means no other elements to overlap with: only stages whose
        // own cost covers T could hide, and none do here.
        assert_eq!(group_hidden_fraction(1, 150, 10, &costs), 0.0);
        // Thin-stage SWP: per_iter = 30 (see theorem2_thin_stages_need_distance).
        assert_eq!(swp_per_iteration(10, &[2, 2, 2, 2]), 30);
        assert!((swp_hidden_fraction(1, 150, 10, &[2, 2, 2, 2]) - 0.2).abs() < 1e-12);
        // Zero-latency memory: trivially all hidden.
        assert_eq!(group_hidden_fraction(4, 0, 10, &costs), 1.0);
        assert_eq!(swp_hidden_fraction(1, 0, 10, &costs), 1.0);
    }

    #[test]
    fn swp_state_sizing() {
        assert_eq!(swp_state_slots(3, 1), 4);
        assert_eq!(swp_state_slots(3, 2), 8);
        assert_eq!(swp_state_slots(1, 1), 2);
        assert_eq!(swp_state_slots(3, 5), 16);
    }
}
